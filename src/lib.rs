//! # backdroid-suite
//!
//! Umbrella crate for the BackDroid reproduction workspace. It re-exports
//! the member crates so examples and downstream experiments can depend on
//! a single package, and it hosts the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! The interesting code lives in the member crates:
//!
//! * [`backdroid_ir`] — the typed IR (program analysis space)
//! * [`backdroid_dex`] — DEX encoding + dexdump-style text (search space)
//! * [`backdroid_manifest`] — components, entry points, lifecycle tables
//! * [`backdroid_search`] — the on-the-fly bytecode search engine with
//!   selectable backends (linear grep oracle vs inverted index)
//! * [`backdroid_obs`] — zero-dependency observability: the atomic
//!   metrics registry (counters, gauges, log2 histograms) and the
//!   per-request span tracer every serving layer publishes into
//! * [`backdroid_appgen`] — deterministic app/corpus generation
//! * [`backdroid_core`] — BackDroid itself
//! * [`backdroid_wholeapp`] — the Amandroid/FlowDroid-style comparators
//! * [`backdroid_service`] — the serving layer: byte-budgeted LRU app
//!   store with single-flight loading, query front end, JSONL protocol
//!
//! ```
//! use backdroid_suite::prelude::*;
//!
//! let app = AppSpec::named("com.suite.demo")
//!     .with_scenario(Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, true))
//!     .generate();
//! let report = Backdroid::new().analyze(&app.program, &app.manifest);
//! assert_eq!(report.vulnerable_sinks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use backdroid_appgen;
pub use backdroid_core;
pub use backdroid_dex;
pub use backdroid_ir;
pub use backdroid_manifest;
pub use backdroid_obs;
pub use backdroid_search;
pub use backdroid_service;
pub use backdroid_wholeapp;

/// One-stop imports for experiments and examples.
pub mod prelude {
    pub use backdroid_appgen::{AndroidApp, AppSpec, Mechanism, Scenario, SinkKind};
    pub use backdroid_core::{
        Backdroid, BackdroidOptions, BackendChoice, DataflowValue, DetectorRegistry, DetectorSpec,
        SinkRegistry, Verdict, VerdictRule,
    };
    pub use backdroid_ir::{
        ClassBuilder, ClassName, FieldSig, InvokeExpr, MethodBuilder, MethodSig, Program, Type,
        Value,
    };
    pub use backdroid_manifest::{Component, ComponentKind, Manifest};
    pub use backdroid_service::{Service, ServiceConfig};
    pub use backdroid_wholeapp::{AmandroidConfig, CgAlgorithm};
}
