//! Integration tests for the corpus/dataset generators: Table I shape,
//! benchmark-set statistics, and end-to-end determinism.

use backdroid_appgen::benchset::{
    bench_app, bench_sizes_bytes, profile_of, profiles_for, BenchsetConfig, Profile, LAYOUT_144,
};
use backdroid_appgen::dataset::{summarize_mb, year_sizes_bytes, PAPER_TABLE1};

#[test]
fn table1_shape_doubles_twice_over_five_years() {
    // The paper's observation: sizes roughly double 2014→2016 and again
    // 2016→2018.
    let avg_of = |idx: usize| summarize_mb(&year_sizes_bytes(PAPER_TABLE1[idx], 1001)).0;
    let y2014 = avg_of(0);
    let y2016 = avg_of(2);
    let y2018 = avg_of(4);
    assert!(
        y2016 / y2014 > 1.4,
        "2014→2016 growth: {y2014:.1} → {y2016:.1}"
    );
    assert!(
        y2018 / y2016 > 1.7,
        "2016→2018 growth: {y2016:.1} → {y2018:.1}"
    );
}

#[test]
fn benchset_sizes_match_section_via() {
    let sizes = bench_sizes_bytes(144);
    let (avg, median) = summarize_mb(&sizes);
    // §VI-A: average 41.5 MB, median 36.2 MB, min 2.9, max 104.9.
    assert!((avg - 41.5).abs() < 3.0);
    assert!((median - 36.2).abs() < 2.0);
    let min = *sizes.iter().min().unwrap() as f64 / 1_048_576.0;
    let max = *sizes.iter().max().unwrap() as f64 / 1_048_576.0;
    assert!((min - 2.9).abs() < 0.01);
    assert!((max - 104.9).abs() < 0.01);
}

#[test]
fn full_layout_reproduces_timeout_share() {
    let profiles = profiles_for(144);
    let timeouts = profiles
        .iter()
        .filter(|p| matches!(p, Profile::TimeoutVictim | Profile::TimeoutNoVuln))
        .count();
    assert_eq!(timeouts, 50, "50/144 ≈ 35% timeout population");
    // Layout totals must cover the whole set.
    assert_eq!(LAYOUT_144.iter().map(|(_, n)| n).sum::<usize>(), 144);
}

#[test]
fn bench_app_generation_is_deterministic_and_independent() {
    let cfg = BenchsetConfig::small();
    let a = bench_app(3, cfg);
    let b = bench_app(3, cfg);
    assert_eq!(a.app.name, b.app.name);
    assert_eq!(a.app.dump(), b.app.dump());
    assert_eq!(a.profile, b.profile);
    assert_eq!(profile_of(3, cfg.count), a.profile);
}

#[test]
fn timeout_profiles_have_much_more_code() {
    let cfg = BenchsetConfig::small();
    let mut timeout_stmts = Vec::new();
    let mut normal_stmts = Vec::new();
    for i in 0..cfg.count {
        match profile_of(i, cfg.count) {
            Profile::TimeoutVictim | Profile::TimeoutNoVuln => {
                timeout_stmts.push(bench_app(i, cfg).app.program.stmt_count())
            }
            Profile::Normal => normal_stmts.push(bench_app(i, cfg).app.program.stmt_count()),
            _ => {}
        }
    }
    let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
    assert!(
        avg(&timeout_stmts) > 3.0 * avg(&normal_stmts),
        "timeout apps must be much larger: {} vs {}",
        avg(&timeout_stmts),
        avg(&normal_stmts)
    );
}

#[test]
fn every_bench_app_has_consistent_ground_truth() {
    let cfg = BenchsetConfig::small();
    for i in 0..cfg.count {
        let ba = bench_app(i, cfg);
        for gt in &ba.app.ground_truth {
            // Vulnerable implies insecure AND reachable by definition.
            if gt.vulnerable() {
                assert!(gt.insecure_param && gt.reachable);
            }
        }
        match ba.profile {
            Profile::Normal | Profile::TimeoutNoVuln | Profile::AmandroidFp => {
                assert_eq!(ba.app.true_vulnerabilities(), 0, "{:?}", ba.profile)
            }
            _ => assert!(ba.app.true_vulnerabilities() >= 1, "{:?}", ba.profile),
        }
    }
}
