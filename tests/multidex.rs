//! Multidex handling: the paper's preprocessing merges multiple dex files
//! into one plaintext before searching (§III step 1). These tests force a
//! multidex split and verify the search and the full pipeline still work
//! across the merged dump.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, DetectorRegistry};
use backdroid_dex::{dump_image, DexImage};
use backdroid_ir::{MethodSig, Type};
use backdroid_search::{BytecodeText, SearchCmd, SearchEngine};

fn multidex_app() -> (backdroid_appgen::AndroidApp, DexImage) {
    let app = AppSpec::named("com.md.app")
        .with_scenario(Scenario::new(
            Mechanism::PrivateChain,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(40, 5, 6)
        .generate();
    // A tiny method-ref limit forces many dex files.
    let image = DexImage::encode_with_limit(&app.program, 64);
    (app, image)
}

#[test]
fn split_produces_multiple_files_covering_all_classes() {
    let (app, image) = multidex_app();
    assert!(image.files().len() > 2, "got {} files", image.files().len());
    let total: usize = image.files().iter().map(|f| f.class_defs().len()).sum();
    assert_eq!(total, app.program.class_count());
    // Every file respects the limit (single-class files may exceed it
    // only if one class alone carries more refs).
    for f in image.files() {
        assert!(
            f.method_ref_count() <= 64 || f.class_defs().len() == 1,
            "file with {} classes has {} refs",
            f.class_defs().len(),
            f.method_ref_count()
        );
    }
}

#[test]
fn merged_dump_contains_all_dex_headers() {
    let (_, image) = multidex_app();
    let dump = dump_image(&image);
    assert!(dump.contains("Opened 'classes.dex'"));
    assert!(dump.contains("Opened 'classes2.dex'"));
}

#[test]
fn search_spans_dex_boundaries() {
    let (app, image) = multidex_app();
    let dump = dump_image(&image);
    let engine = SearchEngine::new(BytecodeText::index(&dump));
    // The sink API is invoked in a class that may land in any dex file;
    // the merged-text search must still find it.
    let cipher = MethodSig::new(
        "javax.crypto.Cipher",
        "getInstance",
        vec![Type::string()],
        Type::object("javax.crypto.Cipher"),
    );
    let hits = engine.run(&SearchCmd::InvokeOf(cipher));
    assert!(!hits.is_empty());
    // Filler cross-class calls also resolve across files.
    let spans = engine.text().spans().len();
    assert_eq!(spans, app.program.method_count(), "all methods indexed");
}

#[test]
fn full_pipeline_on_multidex_dump() {
    let (app, image) = multidex_app();
    let dump = dump_image(&image);
    let artifacts =
        backdroid_core::AppArtifacts::from_dump(app.program.clone(), app.manifest.clone(), &dump);
    let report = Backdroid::new().analyze_artifacts(&artifacts);
    assert_eq!(
        report.vulnerable_sinks().len(),
        1,
        "{:#?}",
        report.sink_reports
    );
    let _ = DetectorRegistry::paper();
}
