//! Integration tests for the §VII extension modules: reflection-resolved
//! edges, privacy-leak detection, per-app SSG merging, and the extended
//! sink registry.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{
    default_leak_sinks, default_sources, detect_leaks, locate_sinks, slice_sink, AppArtifacts,
    AppSsg, Backdroid, DetectorRegistry, SlicerConfig,
};
use backdroid_ir::{
    ClassBuilder, ClassName, Const, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};

/// A sink reachable ONLY through reflection must still be proven
/// reachable via the synthesized reflective caller edges.
#[test]
fn reflective_sink_path_is_reachable() {
    let mut p = Program::new();
    let worker = ClassName::new("com.x.CryptoWorker");
    let mut do_work = MethodBuilder::public(&worker, "doWork", vec![], Type::Void);
    let mode = do_work.assign_const(Const::str("AES/ECB/PKCS5Padding"));
    do_work.invoke(InvokeExpr::call_static(
        MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        ),
        vec![Value::Local(mode)],
    ));
    let mut ctor = MethodBuilder::constructor(&worker, vec![]);
    ctor.ret_void();
    p.add_class(
        ClassBuilder::new(worker.as_str())
            .method(do_work.build())
            .method(ctor.build())
            .build(),
    );
    // onCreate invokes doWork ONLY via reflection.
    let act = ClassName::new("com.x.Main");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let cname = oc.assign_const(Const::str("com.x.CryptoWorker"));
    let cls = oc.invoke_assign(InvokeExpr::call_static(
        MethodSig::new(
            "java.lang.Class",
            "forName",
            vec![Type::string()],
            Type::object("java.lang.Class"),
        ),
        vec![Value::Local(cname)],
    ));
    let mname = oc.assign_const(Const::str("doWork"));
    let method = oc.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new(
            "java.lang.Class",
            "getMethod",
            vec![Type::string()],
            Type::object("java.lang.reflect.Method"),
        ),
        cls,
        vec![Value::Local(mname)],
    ));
    let obj = oc.new_object(worker.as_str(), vec![], vec![]);
    oc.invoke(InvokeExpr::call_virtual(
        MethodSig::new(
            "java.lang.reflect.Method",
            "invoke",
            vec![Type::object("java.lang.Object")],
            Type::object("java.lang.Object"),
        ),
        method,
        vec![Value::Local(obj)],
    ));
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let mut man = Manifest::new("com.x");
    man.register(Component::new(ComponentKind::Activity, act.as_str()));

    let report = Backdroid::new().analyze(&p, &man);
    assert_eq!(
        report.vulnerable_sinks().len(),
        1,
        "reflection-only path detected: {:#?}",
        report.sink_reports
    );
}

/// Per-app SSG: merging the slices of an app whose sinks share a utility
/// method deduplicates the shared units.
#[test]
fn per_app_ssg_merges_shared_slices() {
    let app = AppSpec::named("com.x.appssg")
        .with_scenario(Scenario::new(
            Mechanism::SharedUtility,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(6, 3, 4)
        .generate();
    let registry = DetectorRegistry::paper().sink_registry();
    let artifacts = AppArtifacts::new(app.program.clone(), app.manifest.clone());
    let mut ctx = artifacts.task();
    let sites = locate_sinks(&mut ctx, &registry, false);
    assert!(sites.len() >= 2, "shared-utility emits two sink calls");
    let mut ssgs = Vec::new();
    let mut total_units = 0usize;
    for site in &sites {
        let spec = &registry.sinks()[site.spec_idx];
        let r = slice_sink(
            &mut ctx,
            SlicerConfig::default(),
            &site.method,
            site.stmt_idx,
            spec,
        );
        total_units += r.ssg.units().len();
        ssgs.push(r.ssg);
    }
    let merged = AppSsg::merge(ssgs.iter());
    assert_eq!(merged.sinks().len(), sites.len());
    assert!(
        merged.units().len() < total_units,
        "shared units deduplicated: {} < {total_units}",
        merged.units().len()
    );
    assert!(AppSsg::dedup_savings(total_units, &merged) > 0.0);
    // Every edge endpoint valid.
    for &(f, t, _) in merged.edges() {
        assert!(f < merged.units().len() && t < merged.units().len());
    }
}

/// The extended sink registry finds and judges an open TCP port.
#[test]
fn extended_registry_flags_open_port() {
    use backdroid_core::BackdroidOptions;
    let mut p = Program::new();
    let act = ClassName::new("com.x.Server");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    oc.new_object(
        "java.net.ServerSocket",
        vec![Type::Int],
        vec![Value::int(8089)],
    );
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let mut man = Manifest::new("com.x");
    man.register(Component::new(ComponentKind::Activity, act.as_str()));
    let tool = Backdroid::with_options(BackdroidOptions {
        detectors: DetectorRegistry::extended(),
        ..BackdroidOptions::default()
    });
    let report = tool.analyze(&p, &man);
    let vulns = report.vulnerable_sinks();
    assert_eq!(vulns.len(), 1, "{:#?}", report.sink_reports);
    assert_eq!(vulns[0].sink_id, "socket.server");
}

/// Leak detection composes with generated apps: an app with a normal sink
/// scenario plus a hand-wired leak reports both kinds of findings.
#[test]
fn leaks_and_sinks_coexist() {
    let mut app = AppSpec::named("com.x.both")
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(5, 3, 4)
        .generate();
    // Wire an IMEI→log leak into a new registered activity.
    let act = ClassName::new("com.x.both.LeakActivity");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let tm = oc.local(Type::object("android.telephony.TelephonyManager"));
    let imei = oc.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new(
            "android.telephony.TelephonyManager",
            "getDeviceId",
            vec![],
            Type::string(),
        ),
        tm,
        vec![],
    ));
    oc.invoke(InvokeExpr::call_static(
        MethodSig::new(
            "android.util.Log",
            "d",
            vec![Type::string(), Type::string()],
            Type::Int,
        ),
        vec![Value::str("t"), Value::Local(imei)],
    ));
    app.program.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    app.manifest
        .register(Component::new(ComponentKind::Activity, act.as_str()));

    let report = Backdroid::new().analyze(&app.program, &app.manifest);
    assert_eq!(report.vulnerable_sinks().len(), 1);
    let artifacts = AppArtifacts::new(app.program.clone(), app.manifest.clone());
    let mut ctx = artifacts.task();
    let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink_id, "leak.log");
}
