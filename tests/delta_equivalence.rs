//! The incremental-analysis invariant: a delta run over an app update
//! chain is **byte-identical** — on the wire-rendered response surface —
//! to a from-scratch analysis of the same version, on both search
//! backends.
//!
//! Three layers:
//!
//! * a proptest walking fuzzed `mutate_version` chains (v1 → v2 → … →
//!   vN, arbitrary seeds, so body-only, structural, and mixed updates
//!   all occur) comparing every delta report against a freshly built
//!   from-scratch image;
//! * a proptest proving the content-addressed chunk store reconstructs
//!   every version of a chain exactly (`apply_delta` over the prior
//!   image + the delta's chunks ≡ the mutated program);
//! * deterministic damage tests: truncated or garbage chunks are
//!   detected (checksum/decode failure) and surface as an error the
//!   caller answers with a full reparse — never silently served.

use std::sync::atomic::{AtomicUsize, Ordering};

use backdroid_appgen::{mutate_version, AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{
    apply_delta, AppArtifacts, AppReport, Backdroid, BackdroidOptions, BackendChoice,
    ChunkManifest, ChunkStore,
};
use backdroid_service::proto::render_analysis;
use backdroid_service::{AppAnalysis, Fetch};
use proptest::prelude::*;

/// A small app with real sink scenarios, so verdicts exist to reuse.
fn base_app(extra_scenario: bool) -> backdroid_appgen::AndroidApp {
    let mut spec = AppSpec::named("com.delta.app")
        .with_seed(3)
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(6, 4, 5);
    if extra_scenario {
        spec = spec.with_scenario(Scenario::new(
            Mechanism::CallbackOnClick,
            SinkKind::SslVerifier,
            false,
        ));
    }
    spec.generate()
}

/// The exact bytes the serving layer would emit for this report — the
/// surface CI replay-diffs, and therefore the equivalence that matters.
fn wire(report: AppReport) -> String {
    let a = AppAnalysis {
        app_id: "app".into(),
        app_name: "com.delta.app".into(),
        report,
        fetch: Fetch::Hit,
    };
    render_analysis(1, "analyze", &a)
}

/// Walks `seeds` as an update chain under one backend, asserting at
/// every version that the delta report (verdict reuse engaged wherever
/// the planner allows) renders to the same bytes as a from-scratch
/// analysis of a freshly built image.
fn check_chain(app: &backdroid_appgen::AndroidApp, seeds: &[u64], backend: BackendChoice) {
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        ..BackdroidOptions::default()
    });
    let mut program = app.program.clone();
    let mut old = AppArtifacts::with_backend(program.clone(), app.manifest.clone(), backend);
    let (_, mut base) = tool.analyze_artifacts_traced(&old);
    for &seed in seeds {
        let (next, _) = mutate_version(&program, seed);
        let new = AppArtifacts::with_backend(next.clone(), app.manifest.clone(), backend);
        let (delta_report, new_base, stats) = tool.analyze_delta(&old, Some(&base), &new);
        let scratch = AppArtifacts::with_backend(next.clone(), app.manifest.clone(), backend);
        let fresh = tool.analyze_artifacts(&scratch);
        assert_eq!(
            delta_report.sink_reports, fresh.sink_reports,
            "delta verdicts diverged (backend {backend:?}, seed {seed})"
        );
        assert_eq!(
            wire(delta_report),
            wire(fresh),
            "wire bytes diverged (backend {backend:?}, seed {seed}, \
             full_fallback={})",
            stats.full_fallback
        );
        program = next;
        old = new;
        base = new_base;
    }
}

/// A scratch directory unique per call (no tempfile crate in the
/// vendored stack); the caller removes it.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "backdroid-delta-eq-{tag}-{}-{n}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fuzzed chains: delta ≡ from-scratch at every version, both
    /// backends, any update mix.
    #[test]
    fn delta_matches_from_scratch_over_fuzzed_chains(
        extra in any::<bool>(),
        seeds in prop::collection::vec(any::<u64>(), 1..4),
    ) {
        let app = base_app(extra);
        check_chain(&app, &seeds, BackendChoice::LinearScan);
        check_chain(&app, &seeds, BackendChoice::Indexed);
    }

    /// The chunk store reconstructs every version of a fuzzed chain
    /// exactly: unchanged classes cloned from the prior image,
    /// changed/added ones decoded from their content-addressed chunks.
    #[test]
    fn chunks_reconstruct_every_version(seeds in prop::collection::vec(any::<u64>(), 1..5)) {
        let app = base_app(false);
        let dir = scratch_dir("roundtrip");
        let store = ChunkStore::open(&dir).unwrap();
        let mut prior = app.program.clone();
        let mut prior_manifest = ChunkManifest::of_program(&prior);
        store.put_program(&prior).unwrap();
        for &seed in &seeds {
            let (next, _) = mutate_version(&prior, seed);
            let next_manifest = ChunkManifest::of_program(&next);
            store.put_program(&next).unwrap();
            let rebuilt = apply_delta(&prior, &prior_manifest, &next_manifest, &store).unwrap();
            prop_assert_eq!(&rebuilt, &next, "chunk round-trip diverged at seed {}", seed);
            prior = next;
            prior_manifest = next_manifest;
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Identity update: a base captured on the same image replays without a
/// full fallback and yields the same bytes.
#[test]
fn identity_delta_reuses_and_matches() {
    let app = base_app(true);
    let backend = BackendChoice::default();
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        ..BackdroidOptions::default()
    });
    let old = AppArtifacts::with_backend(app.program.clone(), app.manifest.clone(), backend);
    let (_, base) = tool.analyze_artifacts_traced(&old);
    let new = AppArtifacts::with_backend(app.program.clone(), app.manifest.clone(), backend);
    let (report, _, stats) = tool.analyze_delta(&old, Some(&base), &new);
    assert!(!stats.full_fallback);
    assert!(stats.sinks_reused > 0, "identity updates replay verdicts");
    let scratch = AppArtifacts::with_backend(app.program.clone(), app.manifest.clone(), backend);
    assert_eq!(wire(report), wire(tool.analyze_artifacts(&scratch)));
}

/// Damaged chunks — truncated to zero bytes or overwritten with
/// same-length garbage — fail checksum/decode validation, so
/// `apply_delta` errors instead of serving a corrupt class, and the
/// caller's full-reparse fallback still produces correct bytes.
#[test]
fn damaged_chunks_are_detected_not_served() {
    let app = base_app(false);
    let dir = scratch_dir("damage");
    let store = ChunkStore::open(&dir).unwrap();
    let v1 = app.program.clone();
    let m1 = ChunkManifest::of_program(&v1);
    store.put_program(&v1).unwrap();
    let (v2, _) = mutate_version(&v1, 42);
    let m2 = ChunkManifest::of_program(&v2);
    store.put_program(&v2).unwrap();
    assert_eq!(apply_delta(&v1, &m1, &m2, &store).unwrap(), v2);

    // Truncate every stored chunk.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    assert!(!entries.is_empty(), "the store persisted chunks");
    for path in &entries {
        std::fs::write(path, b"").unwrap();
    }
    apply_delta(&v1, &m1, &m2, &store).expect_err("truncated chunks must not decode");

    // Same-length garbage: caught by the wide checksum, not just length.
    for path in &entries {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let junk = vec![0xA5u8; len.max(16) as usize];
        std::fs::write(path, junk).unwrap();
    }
    apply_delta(&v1, &m1, &m2, &store).expect_err("garbage chunks must not decode");
    std::fs::remove_dir_all(&dir).ok();
}
