//! The symbol-interned search core's two load-bearing equivalences:
//!
//! * **Wire round-trip** — a [`SymbolTable`] serialized and decoded
//!   preserves every (id, string) pair, over arbitrary token sets.
//! * **Interned == string-keyed** — the interned, flattened posting
//!   lists of [`SearchIndex`] agree token-for-token, line-for-line with
//!   a plain string-keyed reference tokenization over fuzzed benchset
//!   apps, so swapping the key representation cannot have moved a single
//!   posting.
//!
//! Plus the lazy sectioned restore contract: a snapshot-restored app
//! that only answers manifest-level questions (store accounting,
//! unknown-detector errors) never materializes the text arena or the
//! posting lists.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::fixtures::{fixture_count, snapshot_fixture};
use backdroid_core::{AppArtifacts, BackendChoice};
use backdroid_dex::{dump_image, DexImage};
use backdroid_search::{string_keyed_postings, BytecodeText, SearchIndex, SymbolTable};
use backdroid_service::{Service, ServiceConfig, ServiceError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any set of distinct strings survives the symbol-table wire
    /// round-trip with ids and strings intact.
    #[test]
    fn symbol_table_wire_round_trip(
        raw in prop::collection::vec("[a-zA-Z0-9/;.$()<>]{0,24}", 0..40),
    ) {
        let tokens: std::collections::BTreeSet<String> = raw.into_iter().collect();
        let mut table = SymbolTable::new();
        for t in &tokens {
            table.intern(&[t]);
        }
        let mut w = backdroid_ir::wire::WireWriter::new();
        table.write_wire(&mut w);
        let bytes = w.into_bytes();
        prop_assert_eq!(SymbolTable::validate_wire(&bytes), Ok(tokens.len()));
        let back =
            SymbolTable::read_wire(&mut backdroid_ir::wire::WireReader::new(&bytes)).unwrap();
        prop_assert_eq!(back.len(), table.len());
        for (sym, s) in table.iter() {
            prop_assert_eq!(back.resolve(sym), s);
            prop_assert_eq!(back.lookup(&[s]), Some(sym));
        }
    }

    /// Fuzzed benchset apps: the interned index and a string-keyed
    /// reference tokenization produce identical postings.
    #[test]
    fn interned_postings_match_string_keyed_reference(
        idx in 0usize..6,
        count in 1usize..6,
        permille in 20u32..60,
    ) {
        let cfg = BenchsetConfig::sized(count.max(idx + 1), permille as f64 / 1000.0);
        let ba = bench_app(idx.min(cfg.count - 1), cfg);
        let dump = dump_image(&DexImage::encode(&ba.app.program));
        let text = BytecodeText::index(&dump);
        let index = text.search_index();
        let reference = string_keyed_postings(text.lines());
        let interned: std::collections::BTreeMap<String, Vec<u32>> = index
            .iter_postings()
            .map(|(tok, lines)| (tok.to_string(), lines.to_vec()))
            .collect();
        prop_assert_eq!(interned, reference);
    }
}

/// The fixture corpus, exhaustively: every token the reference
/// tokenization finds probes back to the same posting list through the
/// interned table.
#[test]
fn every_fixture_probes_identically_through_the_intern_table() {
    for i in 0..fixture_count() {
        let app = snapshot_fixture(i);
        let dump = dump_image(&DexImage::encode(&app.program));
        let text = BytecodeText::index(&dump);
        let index: &SearchIndex = text.search_index();
        let reference = string_keyed_postings(text.lines());
        assert_eq!(index.token_count(), reference.len(), "fixture {i}");
        for (tok, lines) in &reference {
            let via_iter = index
                .iter_postings()
                .find(|(t, _)| t == tok)
                .map(|(_, l)| l.to_vec());
            assert_eq!(
                via_iter.as_deref(),
                Some(lines.as_slice()),
                "fixture {i}: {tok}"
            );
        }
    }
}

/// A disk-warm restore that only answers manifest-level requests —
/// store accounting via `stats` and an unknown-detector error — must
/// never materialize the text arena or the posting lists. The text only
/// decodes when an analysis actually searches it.
#[test]
fn manifest_only_requests_never_materialize_the_text_section() {
    let app = snapshot_fixture(0);
    let artifacts = AppArtifacts::new(app.program, app.manifest);
    let bytes = artifacts.to_snapshot();

    // Direct restore: header facts are served from the section
    // directory alone.
    let restored = AppArtifacts::from_snapshot(&bytes, BackendChoice::default()).unwrap();
    let text = restored.engine().text();
    assert!(!restored.is_program_materialized());
    assert!(!text.is_body_materialized());
    assert!(!text.is_index_materialized());
    assert!(restored.estimated_bytes() > 0);
    assert_eq!(restored.estimated_bytes(), artifacts.estimated_bytes());
    assert_eq!(text.line_count(), artifacts.engine().text().line_count());
    assert!(
        !restored.is_program_materialized()
            && !text.is_body_materialized()
            && !text.is_index_materialized(),
        "store accounting must not force the lazy sections"
    );

    // Through the service: a snapshot-dir-backed store restores the
    // image lazily; `stats` and an unknown-detector request leave the
    // sections parked.
    let dir = std::env::temp_dir().join(format!("backdroid-lazy-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bench = BenchsetConfig::sized(2, 0.04);
    let cfg = ServiceConfig {
        budget_bytes: u64::MAX,
        snapshot_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    // First service populates the snapshot dir.
    Service::over_benchset(bench, cfg.clone())
        .analyze_app("0")
        .unwrap();
    // Second service restores from disk.
    let service = Service::over_benchset(bench, cfg);
    assert!(matches!(
        service.query_detectors("0", &["nope"]),
        Err(ServiceError::UnknownDetector(_))
    ));
    // The unknown-detector error fails before any image is fetched, and
    // the stats snapshot reads only counters — neither touches text.
    let _ = service.stats();
    let (image, _) = service.store().get("0").unwrap();
    let text = image.engine().text();
    assert!(
        !image.is_program_materialized()
            && !text.is_body_materialized()
            && !text.is_index_materialized(),
        "disk-warm restore stayed lazy until a real analysis"
    );
    // A real analysis materializes on demand — and matches the golden
    // direct run.
    let analysis = service.analyze_app("0").unwrap();
    assert!(image.engine().text().is_index_materialized());
    let golden = Service::over_benchset(
        bench,
        ServiceConfig {
            budget_bytes: 0,
            ..ServiceConfig::default()
        },
    )
    .analyze_app("0")
    .unwrap();
    assert_eq!(analysis.report.sink_reports, golden.report.sink_reports);
    let _ = std::fs::remove_dir_all(&dir);
}
