//! Serving-layer contracts, tier-1 enforced:
//!
//! 1. the app store's eviction respects the byte budget and strict LRU
//!    order;
//! 2. single-flight loading builds a cold app exactly once under a
//!    fuzzed concurrent burst;
//! 3. service responses are **byte-identical** to direct
//!    `analyze_artifacts` runs — for both search backends, warm or
//!    cold, through the shared protocol renderer the `backdroid-serve`
//!    binary uses on the wire.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{AppArtifacts, Backdroid, BackdroidOptions, BackendChoice, DetectorRegistry};
use backdroid_service::proto;
use backdroid_service::{AppAnalysis, AppStore, Fetch, Service, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A loader over small distinct apps. Ids of equal length produce
/// equal-sized images (the id feeds the generated class names, so its
/// length shows up in the dump) — the eviction test relies on that.
fn uniform_loader() -> impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static {
    |id: &str| {
        let app = AppSpec::named(format!("com.eq.{id}"))
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(5, 3, 4)
            .generate();
        Ok(AppArtifacts::new(app.program, app.manifest))
    }
}

#[test]
fn eviction_respects_budget_and_lru_order() {
    let image_bytes = uniform_loader()("z").unwrap().estimated_bytes();
    // Room for exactly three images.
    let budget = image_bytes * 3 + image_bytes / 2;
    let store = AppStore::new(budget, uniform_loader());

    for id in ["a", "b", "c"] {
        assert_eq!(store.get(id).unwrap().1, Fetch::Miss);
    }
    assert_eq!(store.stats().evictions, 0, "three images fit");
    assert_eq!(store.lru_order(), ["a", "b", "c"]);

    // Touch `a`: it becomes most recent, `b` is now the LRU victim.
    assert_eq!(store.get("a").unwrap().1, Fetch::Hit);
    assert_eq!(store.lru_order(), ["b", "c", "a"]);
    assert_eq!(store.get("d").unwrap().1, Fetch::Miss);
    assert_eq!(store.lru_order(), ["c", "a", "d"]);
    assert!(!store.contains("b"), "b was least recently used");

    // Keep loading: eviction follows LRU order exactly, and at every
    // observation point the store is within budget.
    for id in ["e", "f", "g"] {
        let _ = store.get(id).unwrap();
        assert!(store.resident_bytes() <= budget);
        assert_eq!(store.resident_apps(), 3);
    }
    assert_eq!(store.lru_order(), ["e", "f", "g"]);
    let stats = store.stats();
    assert_eq!(stats.evictions, 4);
    assert_eq!(stats.bytes_evicted, image_bytes * 4);
    assert!(stats.peak_resident_bytes <= budget);
}

#[test]
fn single_flight_loads_each_app_exactly_once_under_fuzzed_bursts() {
    for seed in 0..4u64 {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let inner = uniform_loader();
        let store = Arc::new(AppStore::new(u64::MAX, move |id: &str| {
            c.fetch_add(1, Ordering::SeqCst);
            // Widen the race window so bursts genuinely overlap.
            std::thread::sleep(std::time::Duration::from_millis(5));
            inner(id)
        }));
        let apps = ["w", "x", "y"];
        let threads = 8;
        let gets_per_thread = 6;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    // Deterministic per-thread pseudo-random app order.
                    let mut state = seed * 1_000_003 + t as u64 * 7919 + 1;
                    for _ in 0..gets_per_thread {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let id = apps[(state >> 33) as usize % apps.len()];
                        let (artifacts, _) = store.get(id).unwrap();
                        assert!(artifacts.program().method_count() > 0);
                    }
                });
            }
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            apps.len(),
            "seed {seed}: every app must load exactly once"
        );
        let stats = store.stats();
        assert_eq!(stats.loads, apps.len() as u64);
        assert_eq!(stats.misses, apps.len() as u64);
        assert_eq!(
            stats.hits + stats.misses + stats.coalesced,
            (threads * gets_per_thread) as u64
        );
    }
}

/// Renders the direct (store-free) analysis of benchset app `i` with the
/// given backend and registry, through the same protocol renderer the
/// service responses use.
fn direct_response(
    id: u64,
    op: &str,
    i: usize,
    cfg: BenchsetConfig,
    backend: BackendChoice,
    detectors: DetectorRegistry,
) -> String {
    let ba = bench_app(i, cfg);
    let artifacts = AppArtifacts::with_backend(ba.app.program, ba.app.manifest, backend);
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        detectors,
        ..BackdroidOptions::default()
    });
    let report = tool.analyze_artifacts(&artifacts);
    let analysis = AppAnalysis {
        app_id: i.to_string(),
        app_name: artifacts.manifest().package().to_string(),
        report,
        fetch: Fetch::Miss,
    };
    proto::render_analysis(id, op, &analysis)
}

#[test]
fn service_responses_match_direct_analysis_byte_for_byte_on_both_backends() {
    let cfg = BenchsetConfig::sized(5, 0.04);
    for backend in [BackendChoice::LinearScan, BackendChoice::Indexed] {
        let service = Service::over_benchset(
            cfg,
            ServiceConfig {
                budget_bytes: u64::MAX,
                backend,
                ..ServiceConfig::default()
            },
        );
        let full = DetectorRegistry::paper();
        for i in 0..cfg.count {
            let id = i as u64;
            let served = service.analyze_app(&i.to_string()).unwrap();
            let served_json = proto::render_analysis(id, "analyze", &served);
            assert_eq!(
                served_json,
                direct_response(id, "analyze", i, cfg, backend, full.clone()),
                "backend {backend:?}, app {i}: cold service response must equal direct analysis"
            );
            // Warm repeat: resident image, byte-identical response.
            let warm = service.analyze_app(&i.to_string()).unwrap();
            assert_eq!(warm.fetch, Fetch::Hit);
            assert_eq!(proto::render_analysis(id, "analyze", &warm), served_json);
        }
        // Detector queries against warm images match direct runs with a
        // restricted registry.
        for id in ["crypto", "ssl"] {
            let filtered = full.select(&[id]).unwrap();
            let served = service.query_detectors("2", &[id]).unwrap();
            assert_eq!(
                proto::render_analysis(9, "query", &served),
                direct_response(9, "query", 2, cfg, backend, filtered),
                "backend {backend:?}, detector {id:?}"
            );
        }
    }
}

#[test]
fn linear_and_indexed_backends_serve_identical_responses() {
    let cfg = BenchsetConfig::sized(4, 0.04);
    let serve_all = |backend: BackendChoice| -> Vec<String> {
        let service = Service::over_benchset(
            cfg,
            ServiceConfig {
                budget_bytes: u64::MAX,
                backend,
                ..ServiceConfig::default()
            },
        );
        (0..cfg.count)
            .map(|i| {
                let a = service.analyze_app(&i.to_string()).unwrap();
                proto::render_analysis(i as u64, "analyze", &a)
            })
            .collect()
    };
    assert_eq!(
        serve_all(BackendChoice::LinearScan),
        serve_all(BackendChoice::Indexed),
        "responses must never depend on the search backend"
    );
}
