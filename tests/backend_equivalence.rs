//! The indexed search backend's contract: **hit-for-hit identical** to
//! the `LinearScan` oracle for every `SearchCmd` variant over generated
//! apps, while touching strictly less of the dump.
//!
//! Two layers of enforcement:
//!
//! * a proptest driving arbitrary scenario apps through a command
//!   battery derived from the app's own program (every method, class,
//!   field, and string literal it defines, plus misses);
//! * a deterministic sweep over the full small benchset running the
//!   complete BackDroid pipeline under both backends.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{AppArtifacts, Backdroid, BackdroidOptions, BackendChoice};
use backdroid_search::{BytecodeText, SearchCmd, SearchEngine};
use proptest::prelude::*;

/// Every command the app's own program can pose: invokes and name-calls
/// for each method, allocation/const-class for each class, accesses for
/// each field, const-string for each literal in the dump — plus a miss
/// of each kind.
fn command_battery(app: &backdroid_appgen::AndroidApp, dump: &str) -> Vec<SearchCmd> {
    let mut cmds = Vec::new();
    for class in app.program.classes() {
        cmds.push(SearchCmd::NewInstanceOf(class.name().clone()));
        cmds.push(SearchCmd::ConstClass(class.name().clone()));
        for method in class.methods() {
            cmds.push(SearchCmd::InvokeOf(method.sig().clone()));
            cmds.push(SearchCmd::MethodNameCall(method.sig().name().to_string()));
        }
        for field in class.fields() {
            cmds.push(SearchCmd::FieldAccess(field.sig().clone()));
            cmds.push(SearchCmd::StaticFieldAccess(field.sig().clone()));
        }
    }
    // String literals straight from the dump's const-string lines.
    for line in dump.lines() {
        if !line.contains("const-string") {
            continue;
        }
        if let Some(open) = line.find('"') {
            if let Some(close) = line.rfind('"') {
                if close > open {
                    cmds.push(SearchCmd::ConstString(line[open + 1..close].to_string()));
                }
            }
        }
    }
    // Guaranteed misses of every kind.
    cmds.push(SearchCmd::InvokeOf(backdroid_ir::MethodSig::new(
        "com.absent.Nothing",
        "nowhere",
        vec![],
        backdroid_ir::Type::Void,
    )));
    cmds.push(SearchCmd::NewInstanceOf(backdroid_ir::ClassName::new(
        "com.absent.Nothing",
    )));
    cmds.push(SearchCmd::ConstString("no such literal anywhere".into()));
    cmds.push(SearchCmd::MethodNameCall("nowhere".into()));
    cmds
}

/// Runs the battery under both backends and asserts identical hits plus
/// a strict work advantage for the index.
fn assert_backends_equivalent(app: &backdroid_appgen::AndroidApp) {
    let dump = app.dump();
    let linear = SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::LinearScan);
    let indexed = SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::Indexed);
    for cmd in command_battery(app, &dump) {
        let l = linear.run(&cmd);
        let x = indexed.run(&cmd);
        assert_eq!(l, x, "hit divergence on {}", cmd.canonical());
    }
    // The class-level "invoked by" search must agree too.
    for class in app.program.classes() {
        assert_eq!(
            linear.classes_using(class.name()),
            indexed.classes_using(class.name()),
            "classes_using divergence on {}",
            class.name()
        );
    }
    let (ls, xs) = (linear.stats(), indexed.stats());
    assert_eq!(ls.commands, xs.commands);
    assert_eq!(ls.hits, xs.hits);
    assert_eq!(
        ls.lines_scanned, xs.lines_scanned,
        "linear-model accounting must be backend-invariant"
    );
    assert_eq!(ls.postings_touched, 0);
    assert!(
        xs.postings_touched < xs.lines_scanned,
        "index must touch strictly less than the grep: {} vs {}",
        xs.postings_touched,
        xs.lines_scanned
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary scenario apps: both backends answer the full command
    /// battery identically.
    #[test]
    fn indexed_equals_linear_on_generated_apps(
        seed in 0u64..1000,
        mech_idx in 0usize..14,
        sink_is_ssl in any::<bool>(),
        insecure in any::<bool>(),
        filler in 3usize..12,
    ) {
        let mech = [
            Mechanism::DirectEntry,
            Mechanism::PrivateChain,
            Mechanism::StaticChain,
            Mechanism::ChildClass,
            Mechanism::SuperClassPoly,
            Mechanism::InterfaceRunnable,
            Mechanism::CallbackOnClick,
            Mechanism::AsyncTask,
            Mechanism::ClinitReachable,
            Mechanism::ClinitOffPath,
            Mechanism::IccExplicit,
            Mechanism::IccImplicit,
            Mechanism::LifecycleChain,
            Mechanism::DeadCode,
        ][mech_idx];
        let sink = if sink_is_ssl { SinkKind::SslVerifier } else { SinkKind::Cipher };
        let app = AppSpec::named("com.eq.prop")
            .with_seed(seed)
            .with_scenario(Scenario::new(mech, sink, insecure))
            .with_filler(filler, 3, 4)
            .generate();
        assert_backends_equivalent(&app);
    }
}

/// The acceptance check: over the full (small-scale) generated benchset,
/// the complete pipeline under `Indexed` returns results identical to
/// `LinearScan` while doing strictly less scan work on every app larger
/// than the smallest scenario tier.
#[test]
fn full_benchset_pipeline_is_identical_and_cheaper() {
    let cfg = BenchsetConfig::small();
    let smallest_dump = (0..cfg.count)
        .map(|i| bench_app(i, cfg).app.dump().lines().count())
        .min()
        .expect("non-empty benchset");
    for i in 0..cfg.count {
        let ba = bench_app(i, cfg);
        let run = |backend: BackendChoice| {
            let artifacts = AppArtifacts::with_backend(
                ba.app.program.clone(),
                ba.app.manifest.clone(),
                backend,
            );
            let report = Backdroid::with_options(BackdroidOptions {
                backend,
                ..BackdroidOptions::default()
            })
            .analyze_artifacts(&artifacts);
            let stats = report.cache_stats;
            (report, stats)
        };
        let (lin_report, lin_stats) = run(BackendChoice::LinearScan);
        let (idx_report, idx_stats) = run(BackendChoice::Indexed);

        // Hit-for-hit identical pipeline results.
        assert_eq!(
            lin_report.sink_reports.len(),
            idx_report.sink_reports.len(),
            "{}: sink-site divergence",
            ba.app.name
        );
        for (l, x) in lin_report.sink_reports.iter().zip(&idx_report.sink_reports) {
            assert_eq!(l.site_method, x.site_method, "{}", ba.app.name);
            assert_eq!(l.stmt_idx, x.stmt_idx, "{}", ba.app.name);
            assert_eq!(l.reachable, x.reachable, "{}", ba.app.name);
            assert_eq!(l.entries, x.entries, "{}", ba.app.name);
            assert_eq!(l.param_values, x.param_values, "{}", ba.app.name);
            assert_eq!(l.verdict.is_vulnerable(), x.verdict.is_vulnerable());
        }
        assert_eq!(
            lin_report.vulnerable_sinks().len(),
            idx_report.vulnerable_sinks().len()
        );
        assert_eq!(lin_stats.commands, idx_stats.commands);
        assert_eq!(lin_stats.hits, idx_stats.hits);
        assert_eq!(lin_stats.lines_scanned, idx_stats.lines_scanned);

        // Strictly less scan work above the smallest tier.
        let dump_lines = ba.app.dump().lines().count();
        if dump_lines > smallest_dump && idx_stats.lines_scanned > 0 {
            assert!(
                idx_stats.postings_touched < idx_stats.lines_scanned,
                "{}: indexed work {} must undercut linear work {}",
                ba.app.name,
                idx_stats.postings_touched,
                idx_stats.lines_scanned
            );
        }
    }
}
