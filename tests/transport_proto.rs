//! Frame-codec contracts for the socket transport, tier-1 enforced:
//!
//! * encoding/decoding round-trips arbitrary payloads, alone and
//!   concatenated into a stream;
//! * decoding is **total** — truncated, oversized, and garbage inputs
//!   produce `NeedMore` or a typed error, never a panic and never a
//!   phantom frame;
//! * [`FrameReader`] reassembles frames across arbitrary chunk splits
//!   and distinguishes clean EOF (frame boundary) from mid-frame EOF.

use backdroid_service::transport::{
    decode_frame, encode_frame, FrameDecode, FrameError, FrameReader, MAX_FRAME_BYTES,
};
use proptest::prelude::*;

/// Feeds `stream` to a [`FrameReader`] through a reader that yields at
/// most `chunk` bytes per `read` call, collecting every decoded frame.
fn read_all_chunked(stream: &[u8], chunk: usize) -> std::io::Result<Vec<Vec<u8>>> {
    struct Chunked<'a> {
        data: &'a [u8],
        chunk: usize,
    }
    impl std::io::Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(self.data.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }
    let mut reader = FrameReader::new(Chunked {
        data: stream,
        chunk: chunk.max(1),
    });
    let mut frames = Vec::new();
    while let Some(frame) = reader.read_frame()? {
        frames.push(frame);
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity, and the decoder reports exactly
    /// the encoded length as consumed.
    #[test]
    fn frames_round_trip(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let encoded = encode_frame(&payload);
        match decode_frame(&encoded, MAX_FRAME_BYTES) {
            Ok(FrameDecode::Frame { payload: got, consumed }) => {
                prop_assert_eq!(got, payload);
                prop_assert_eq!(consumed, encoded.len());
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    /// A concatenated stream of frames decodes back to the same payload
    /// sequence, whatever chunk size the wire delivers.
    #[test]
    fn streams_reassemble_across_any_chunking(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        chunk in 1usize..48,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let frames = read_all_chunked(&stream, chunk).expect("valid stream");
        prop_assert_eq!(frames, payloads);
    }

    /// Every proper prefix of a valid frame is incomplete — `NeedMore`,
    /// never an error and never a shorter phantom frame.
    #[test]
    fn truncation_is_need_more(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_seed in any::<u64>(),
    ) {
        let encoded = encode_frame(&payload);
        let cut = (cut_seed % encoded.len() as u64) as usize; // 0..len: a proper prefix
        match decode_frame(&encoded[..cut], MAX_FRAME_BYTES) {
            Ok(FrameDecode::NeedMore) => {}
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
        }
    }

    /// Decoding arbitrary garbage is total: it returns a frame, asks for
    /// more, or rejects with a typed error — and a returned frame can
    /// only happen when the bytes really start with a valid encoding.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match decode_frame(&bytes, MAX_FRAME_BYTES) {
            Ok(FrameDecode::Frame { payload, consumed }) => {
                prop_assert_eq!(&encode_frame(&payload), &bytes[..consumed]);
            }
            Ok(FrameDecode::NeedMore) | Err(_) => {}
        }
    }

    /// A frame whose declared length exceeds the cap is rejected before
    /// any allocation, with the offending length in the error.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1u64..1_000_000) {
        let max = 4096u64;
        let mut bytes = encode_frame(&[]);
        bytes.truncate(1); // keep only the magic
        // LEB128-encode an over-cap length by hand.
        let mut len = max + extra;
        loop {
            let b = (len & 0x7f) as u8;
            len >>= 7;
            if len == 0 { bytes.push(b); break; }
            bytes.push(b | 0x80);
        }
        match decode_frame(&bytes, max) {
            Err(FrameError::TooLarge { len, max: m }) => {
                prop_assert_eq!(len, max + extra);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "expected TooLarge, got {:?}", other),
        }
    }
}

#[test]
fn wrong_magic_and_malformed_varints_are_typed_errors() {
    // A JSONL client speaking to the framed port: first byte is '{'.
    assert!(matches!(
        decode_frame(b"{\"id\":0}", MAX_FRAME_BYTES),
        Err(FrameError::BadMagic(b'{'))
    ));
    // A varint that never terminates within the 10-byte u64 limit.
    let mut runaway = vec![0xBD];
    runaway.extend_from_slice(&[0x80; 11]);
    assert!(matches!(
        decode_frame(&runaway, MAX_FRAME_BYTES),
        Err(FrameError::BadLength)
    ));
}

#[test]
fn frame_reader_reports_mid_frame_eof_as_error() {
    let encoded = encode_frame(b"cut short");
    let truncated = &encoded[..encoded.len() - 3];
    let mut reader = FrameReader::new(truncated);
    let err = reader.read_frame().expect_err("mid-frame EOF must error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    // Clean EOF at a frame boundary is a normal end of stream.
    let mut reader = FrameReader::new(&encoded[..]);
    assert_eq!(
        reader.read_frame().unwrap().as_deref(),
        Some(&b"cut short"[..])
    );
    assert!(reader.read_frame().unwrap().is_none());
}
