//! Fault injection on the sharded serving layer, tier-1 enforced: kill
//! a shard **mid-burst** while requests for its apps are queued and in
//! flight, and prove the pool
//!
//! * re-routes the stranded queue and later traffic to surviving shards
//!   (no request is lost, none is answered twice),
//! * keeps every response byte-identical to the no-fault direct golden,
//! * drains cleanly, and
//! * brings a restarted shard back **disk-warm**: its fresh `AppStore`
//!   serves first-touch loads from the shared snapshot directory
//!   instead of cold-parsing.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_core::BackendChoice;
use backdroid_service::proto::{self, workload_request_line};
use backdroid_service::shard::execute_request;
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::sync::{Arc, Mutex};

/// A scratch directory removed on drop (no tempfile crate vendored).
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "backdroid-shard-fault-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn analyze_line(id: u64, app: usize) -> String {
    format!("{{\"id\":{id},\"op\":\"analyze\",\"app\":\"{app}\"}}")
}

/// The test trace: one warm-up analyze per app (so every app is
/// snapshotted before the fault, whichever shard serves it), then a
/// bursty Zipf workload.
fn burst_trace(bench: BenchsetConfig) -> Vec<String> {
    let mut lines: Vec<String> = (0..bench.count)
        .map(|app| analyze_line(app as u64, app))
        .collect();
    let trace = workload::generate(WorkloadConfig {
        apps: bench.count,
        requests: 40,
        seed: 23,
        burst_permille: 400,
        ..WorkloadConfig::default()
    });
    lines.extend(
        trace
            .iter()
            .enumerate()
            .map(|(i, r)| workload_request_line(100 + i as u64, r)),
    );
    lines
}

/// A responder recording each response into its seq's slot exactly once.
fn slot_responder(slots: &Arc<Mutex<Vec<Option<Option<String>>>>>) -> Responder {
    let slots = Arc::clone(slots);
    Arc::new(move |seq, response| {
        let mut slots = slots.lock().expect("slots poisoned");
        assert!(
            slots[seq as usize].is_none(),
            "seq {seq} answered more than once"
        );
        slots[seq as usize] = Some(response);
    })
}

#[test]
fn killing_a_shard_mid_burst_loses_nothing_and_restarts_disk_warm() {
    let scratch = ScratchDir::new("mid-burst");
    let bench = BenchsetConfig::sized(5, 0.04);
    let backend = BackendChoice::Indexed;
    let lines = burst_trace(bench);

    // No-fault golden from a single direct service (store-independent:
    // responses are pure functions of app + requested sinks).
    let direct = Service::over_benchset(
        bench,
        ServiceConfig {
            budget_bytes: u64::MAX,
            backend,
            ..ServiceConfig::default()
        },
    );
    let direct_response = |line: &str| -> String {
        let req = proto::parse_request(line).expect("trace lines parse");
        execute_request(&direct, &req).expect("trace ops all produce output")
    };
    let golden: Vec<String> = lines.iter().map(|l| direct_response(l)).collect();

    let snapshot_dir = scratch.0.clone();
    let pool = ShardPool::new(
        ShardPoolConfig {
            shards: 3,
            workers_per_shard: 1,
            queue_capacity: 4,
            ..ShardPoolConfig::default()
        },
        move |_| {
            Service::over_benchset(
                bench,
                ServiceConfig {
                    budget_bytes: u64::MAX,
                    backend,
                    snapshot_dir: Some(snapshot_dir.clone()),
                    ..ServiceConfig::default()
                },
            )
        },
    );
    let victim = pool.route("0"); // the shard owning app "0"

    // Slots: the trace, one post-kill reroute probe, one analyze per app
    // after the restart.
    let probe_seq = lines.len();
    let tail_base = probe_seq + 1;
    let slots: Arc<Mutex<Vec<Option<Option<String>>>>> =
        Arc::new(Mutex::new(vec![None; tail_base + bench.count]));
    let responder = slot_responder(&slots);

    // Submit the first half from a background thread while the main
    // thread kills the victim — the kill lands mid-burst, with requests
    // queued and in flight (queue_capacity 4 guarantees backlog).
    let mid = lines.len() / 2;
    std::thread::scope(|scope| {
        let pool = &pool;
        let responder = responder.clone();
        let first_half = &lines[..mid];
        scope.spawn(move || {
            for (seq, line) in first_half.iter().enumerate() {
                pool.submit_line(seq as u64, line, &responder);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(3));
        assert!(pool.kill_shard(victim), "first kill succeeds");
        assert!(!pool.kill_shard(victim), "second kill is a no-op");
    });

    // The pool keeps serving with one shard down; traffic for the dead
    // shard's apps re-routes to survivors.
    for (seq, line) in lines.iter().enumerate().skip(mid) {
        pool.submit_line(seq as u64, line, &responder);
    }
    // Guaranteed reroute witness: app "0" belongs to the dead victim.
    pool.submit_line(probe_seq as u64, &analyze_line(400, 0), &responder);
    pool.drain();
    assert!(
        pool.pool_stats().rerouted >= 1,
        "requests for the dead shard's apps must be rerouted"
    );
    assert_eq!(pool.pool_stats().alive, 2);

    // Restart: the shard must come back alive — and because its fresh
    // store shares the snapshot directory, its first-touch loads are
    // disk-warm restores, not cold parses.
    assert!(pool.restart_shard(victim), "restart revives the shard");
    assert!(
        !pool.restart_shard(victim),
        "restarting a live shard is a no-op"
    );
    let fresh = pool
        .shard_stats(victim)
        .expect("restarted shard reports stats");
    assert_eq!(fresh.store.loads, 0, "fresh store starts empty");

    let tail: Vec<String> = (0..bench.count)
        .map(|app| analyze_line(500 + app as u64, app))
        .collect();
    for (k, line) in tail.iter().enumerate() {
        pool.submit_line((tail_base + k) as u64, line, &responder);
    }
    pool.drain();

    let after = pool
        .shard_stats(victim)
        .expect("restarted shard reports stats");
    assert!(
        after.store.disk_hits > 0,
        "restarted shard must load from the shared snapshot tier, got {after:?}"
    );
    assert_eq!(
        after.store.disk_misses, 0,
        "every app the victim re-loads was snapshotted before the kill"
    );

    // Exactly-once, byte-identical: every trace seq holds the golden
    // response; probe and post-restart tail match direct analyses.
    let slots = slots.lock().expect("slots poisoned");
    let answer = |seq: usize| -> &String {
        slots[seq]
            .as_ref()
            .unwrap_or_else(|| panic!("seq {seq} lost"))
            .as_ref()
            .unwrap_or_else(|| panic!("seq {seq} answered without output"))
    };
    for (seq, golden_line) in golden.iter().enumerate() {
        assert_eq!(
            answer(seq),
            golden_line,
            "seq {seq} diverged across the kill"
        );
    }
    assert_eq!(answer(probe_seq), &direct_response(&analyze_line(400, 0)));
    for (k, line) in tail.iter().enumerate() {
        assert_eq!(
            answer(tail_base + k),
            &direct_response(line),
            "post-restart response diverged"
        );
    }
    drop(slots);

    let stats = pool.pool_stats();
    assert_eq!(stats.kills, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.alive, 3);
    assert_eq!(stats.no_shard_errors, 0, "two shards always survived");
    pool.shutdown();
}

#[test]
fn killing_every_shard_yields_deterministic_errors_not_hangs() {
    let bench = BenchsetConfig::sized(3, 0.04);
    let pool = ShardPool::new(
        ShardPoolConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 4,
            ..ShardPoolConfig::default()
        },
        move |_| Service::over_benchset(bench, ServiceConfig::default()),
    );
    assert!(pool.kill_shard(0));
    assert!(pool.kill_shard(1));

    let got: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
    let responder: Responder = {
        let got = Arc::clone(&got);
        Arc::new(move |_, response| got.lock().expect("got poisoned").push(response))
    };
    pool.submit_line(0, "{\"id\":7,\"op\":\"analyze\",\"app\":\"1\"}", &responder);
    pool.drain();
    assert_eq!(
        got.lock().expect("got poisoned").as_slice(),
        [Some(
            "{\"id\":7,\"error\":\"no shard available\"}".to_string()
        )],
        "a fully-dead pool must answer, deterministically, not hang"
    );
    assert_eq!(pool.pool_stats().no_shard_errors, 1);
    pool.shutdown();
}
