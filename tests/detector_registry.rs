//! PR-7 migration contract: the data-driven [`DetectorRegistry`] path
//! must be **verdict-for-verdict identical** to the legacy hardcoded
//! `judge_*` dispatch for every pre-existing sink id — over fuzzed
//! recovered values, and end-to-end on both search backends. Unknown
//! ids, by contrast, must now fail typed instead of silently returning
//! `Undetermined`.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::detect::{
    judge_cipher, judge_local_socket, judge_server_socket, judge_sms, judge_verifier,
};
use backdroid_core::{
    Backdroid, BackdroidOptions, BackendChoice, DataflowValue, DetectorError, DetectorRegistry,
    Verdict,
};
use backdroid_ir::{ClassName, FieldSig, Type};
use proptest::prelude::*;

/// A legacy verdict oracle: one of the pre-registry `judge_*` functions.
type LegacyJudge = fn(&[DataflowValue]) -> Verdict;

/// The pre-existing sink ids and their legacy judge functions — the
/// oracles the registry path must reproduce exactly.
const LEGACY_SINKS: &[(&str, LegacyJudge)] = &[
    ("crypto.cipher", judge_cipher),
    ("ssl.verifier.factory", judge_verifier),
    ("ssl.verifier.connection", judge_verifier),
    ("sms.send", judge_sms),
    ("socket.server", judge_server_socket),
    ("socket.local", judge_local_socket),
];

/// Platform-constant names that exercise both the flagged and the
/// cleared arms of the SSL rule, plus arbitrary others.
fn const_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ALLOW_ALL_HOSTNAME_VERIFIER".to_string()),
        Just("STRICT_HOSTNAME_VERIFIER".to_string()),
        "[A-Z][A-Z_]{0,20}",
    ]
}

/// Class names biased toward the verifier fragments the SSL rule keys
/// on (`AllowAll`, `Strict`, …) so the Obj arm is actually covered.
fn obj_class() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("org.apache.http.conn.ssl.AllowAllHostnameVerifier".to_string()),
        Just("com.x.NullHostnameVerifier".to_string()),
        Just("org.apache.http.conn.ssl.StrictHostnameVerifier".to_string()),
        Just("org.apache.http.conn.ssl.BrowserCompatHostnameVerifier".to_string()),
        "[a-z]{1,6}\\.[A-Z][a-zA-Z0-9]{0,10}",
    ]
}

/// Strings biased toward shapes the rules dispatch on: cipher
/// transformations, short codes, socket names, and arbitrary noise.
fn value_str() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("AES/ECB/PKCS5Padding".to_string()),
        Just("AES/GCM/NoPadding".to_string()),
        Just("des".to_string()),
        Just("RSA".to_string()),
        Just("+4733".to_string()),
        Just("12345678901".to_string()),
        "[0-9]{1,8}",
        "[ -~]{0,24}",
    ]
}

/// One fuzzed recovered value covering every [`DataflowValue`] variant.
fn dataflow_value() -> impl Strategy<Value = DataflowValue> {
    prop_oneof![
        any::<i64>().prop_map(DataflowValue::Int),
        (0i64..100_000).prop_map(DataflowValue::Int),
        value_str().prop_map(DataflowValue::Str),
        obj_class().prop_map(|c| DataflowValue::Class(ClassName::new(c))),
        Just(DataflowValue::Null),
        const_name().prop_map(|n| {
            DataflowValue::PlatformConst(FieldSig::new(
                "org.apache.http.conn.ssl.SSLSocketFactory",
                n,
                Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
            ))
        }),
        (obj_class(), 0usize..64).prop_map(|(c, site)| DataflowValue::Obj {
            class: ClassName::new(c),
            site,
        }),
        (0usize..64).prop_map(|site| DataflowValue::Arr { site }),
        value_str().prop_map(DataflowValue::Expr),
        Just(DataflowValue::Unknown),
    ]
}

proptest! {
    /// Satellite 2: for every pre-existing sink id, the registry's
    /// data-driven rule and the legacy `judge_*` oracle agree on every
    /// fuzzed value vector — including the empty one.
    #[test]
    fn registry_judges_match_legacy_dispatch(
        values in prop::collection::vec(dataflow_value(), 0..4)
    ) {
        let registry = DetectorRegistry::extended();
        for (sink_id, oracle) in LEGACY_SINKS {
            let via_registry = registry
                .judge(sink_id, &values)
                .expect("pre-existing sink id is registered");
            prop_assert_eq!(
                via_registry,
                oracle(&values),
                "sink {} diverged on {:?}",
                sink_id,
                values
            );
        }
    }

    /// Satellite 1: unknown ids are typed errors on the registry path —
    /// never a silent `Undetermined` — regardless of the values.
    #[test]
    fn unknown_sink_ids_fail_typed(values in prop::collection::vec(dataflow_value(), 0..4)) {
        let registry = DetectorRegistry::extended();
        prop_assert_eq!(
            registry.judge("no.such.sink", &values),
            Err(DetectorError::UnknownSink("no.such.sink".into()))
        );
    }
}

/// End-to-end leg: the registry-backed engine produces identical
/// reports on both search backends, for every sink kind the generator
/// can emit — the two paper classes and the three new ones — in both
/// insecure and secure variants.
#[test]
fn registry_path_is_backend_invariant_end_to_end() {
    let kinds = [
        SinkKind::Cipher,
        SinkKind::SslVerifier,
        SinkKind::WebViewJsInterface,
        SinkKind::PrngSeed,
        SinkKind::ExecCommand,
    ];
    for kind in kinds {
        for insecure in [true, false] {
            let app = AppSpec::named(format!("com.reg.{kind:?}{insecure}").to_lowercase())
                .with_scenario(Scenario::new(Mechanism::PrivateChain, kind, insecure))
                .with_filler(6, 3, 4)
                .generate();
            let run = |backend: BackendChoice| {
                Backdroid::with_options(BackdroidOptions {
                    backend,
                    detectors: DetectorRegistry::full(),
                    ..BackdroidOptions::default()
                })
                .analyze(&app.program, &app.manifest)
            };
            let linear = run(BackendChoice::LinearScan);
            let indexed = run(BackendChoice::Indexed);
            assert_eq!(
                linear.sink_reports, indexed.sink_reports,
                "{kind:?} insecure={insecure}: reports must not depend on the backend"
            );
        }
    }
}
