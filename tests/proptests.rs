//! Property-based tests over the core data structures and invariants.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{locate_sinks, slice_sink, AppArtifacts, DetectorRegistry, SlicerConfig};
use backdroid_dex::{dump_image, method_ref_string, parse_method_ref, DexImage};
use backdroid_ir::{
    BinOp, ClassBuilder, ClassName, Const, InvokeExpr, MethodBuilder, MethodSig, Program, Type,
    Value,
};
use backdroid_search::{BytecodeText, SearchCmd, SearchEngine};
use proptest::prelude::*;

/// Strategy for simple Java identifiers.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

/// Strategy for class names with 1–4 package segments and optional inner
/// class suffix.
fn class_name() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(ident(), 1..4),
        "[A-Z][a-zA-Z0-9]{0,6}",
        prop::option::of(0u8..3),
    )
        .prop_map(|(pkgs, cls, inner)| {
            let mut name = pkgs.join(".");
            if !name.is_empty() {
                name.push('.');
            }
            name.push_str(&cls);
            if let Some(k) = inner {
                name.push_str(&format!("${k}"));
            }
            name
        })
}

/// Strategy for simple types.
fn simple_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Long),
        Just(Type::Boolean),
        Just(Type::Double),
        Just(Type::string()),
        class_name().prop_map(Type::object),
        Just(Type::array(Type::Byte)),
    ]
}

fn method_sig() -> impl Strategy<Value = MethodSig> {
    (
        class_name(),
        ident(),
        prop::collection::vec(simple_type(), 0..4),
        prop_oneof![Just(Type::Void), simple_type()],
    )
        .prop_map(|(c, n, p, r)| MethodSig::new(c, n, p, r))
}

proptest! {
    /// Descriptor encoding/decoding round-trips for arbitrary types.
    #[test]
    fn type_descriptor_round_trip(t in simple_type()) {
        let desc = t.descriptor();
        prop_assert_eq!(Type::from_descriptor(&desc), Some(t));
    }

    /// Soot-format method signatures parse back to themselves.
    #[test]
    fn method_sig_display_round_trip(m in method_sig()) {
        let rendered = m.to_string();
        prop_assert_eq!(MethodSig::parse(&rendered), Some(m));
    }

    /// The dexdump bytecode reference form is a bijection on signatures:
    /// the IR ⇄ bytecode format translation of paper §IV-A never loses
    /// information.
    #[test]
    fn bytecode_ref_round_trip(m in method_sig()) {
        let r = method_ref_string(&m);
        prop_assert_eq!(parse_method_ref(&r), Some(m));
    }

    /// Search soundness over generated programs: every virtual invoke in
    /// the IR is findable in the dump by its translated signature, and the
    /// hit maps back to the true containing method.
    #[test]
    fn every_invoke_is_searchable(
        n_callers in 1usize..6,
        callee_class in class_name(),
        callee_name in ident(),
    ) {
        let callee = MethodSig::new(callee_class.clone(), &callee_name, vec![], Type::Void);
        let mut program = Program::new();
        let mut cm = MethodBuilder::public(&ClassName::new(callee_class.clone()), &callee_name, vec![], Type::Void);
        cm.ret_void();
        let mut ctor = MethodBuilder::constructor(&ClassName::new(callee_class.clone()), vec![]);
        ctor.ret_void();
        program.add_class(
            ClassBuilder::new(callee_class.as_str())
                .method(cm.build())
                .method(ctor.build())
                .build(),
        );
        let mut expected = Vec::new();
        for i in 0..n_callers {
            let caller_class = ClassName::new(format!("com.gen.caller.C{i}"));
            let mut mb = MethodBuilder::public(&caller_class, "go", vec![], Type::Void);
            let obj = mb.new_object(callee_class.as_str(), vec![], vec![]);
            mb.invoke(InvokeExpr::call_virtual(callee.clone(), obj, vec![]));
            program.add_class(ClassBuilder::new(caller_class.as_str()).method(mb.build()).build());
            expected.push(format!("<{caller_class}: void go()>"));
        }
        let dump = dump_image(&DexImage::encode(&program));
        let engine = SearchEngine::new(BytecodeText::index(&dump));
        let hits = engine.run(&SearchCmd::InvokeOf(callee));
        let mut found: Vec<String> = hits.iter().map(|h| h.method.to_string()).collect();
        found.sort();
        expected.sort();
        prop_assert_eq!(found, expected);
    }

    /// Constant folding agrees with a direct interpreter on random
    /// integer expressions.
    #[test]
    fn binop_folding_matches_interpreter(a in -1000i64..1000, b in -1000i64..1000) {
        use backdroid_core::{fold_binop, DataflowValue};
        for (op, reference) in [
            (BinOp::Add, a.wrapping_add(b)),
            (BinOp::Sub, a.wrapping_sub(b)),
            (BinOp::Mul, a.wrapping_mul(b)),
            (BinOp::And, a & b),
            (BinOp::Or, a | b),
            (BinOp::Xor, a ^ b),
        ] {
            prop_assert_eq!(
                fold_binop(op, &DataflowValue::Int(a), &DataflowValue::Int(b)),
                DataflowValue::Int(reference)
            );
        }
        if b != 0 {
            prop_assert_eq!(
                fold_binop(BinOp::Div, &DataflowValue::Int(a), &DataflowValue::Int(b)),
                DataflowValue::Int(a.wrapping_div(b))
            );
        }
    }

    /// Forward propagation recovers a randomly assembled transformation
    /// string built via string concatenation through a private chain.
    #[test]
    fn string_concat_chain_is_recovered(
        algo in prop_oneof![Just("AES"), Just("DES"), Just("RSA")],
        mode in prop_oneof![Just("ECB"), Just("CBC"), Just("GCM")],
    ) {
        let expected = format!("{algo}/{mode}/PKCS5Padding");
        let act = ClassName::new("com.pt.Main");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let a = on_create.assign_const(Const::str(format!("{algo}/")));
        let b = on_create.assign_const(Const::str(format!("{mode}/PKCS5Padding")));
        let joined = on_create.binop(
            BinOp::Add,
            Value::Local(a),
            Value::Local(b),
            Type::string(),
        );
        on_create.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::Local(joined)],
        ));
        let mut program = Program::new();
        program.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut manifest = backdroid_manifest::Manifest::new("com.pt");
        manifest.register(backdroid_manifest::Component::new(
            backdroid_manifest::ComponentKind::Activity,
            act.as_str(),
        ));
        let report = backdroid_core::Backdroid::new().analyze(&program, &manifest);
        prop_assert_eq!(report.sink_reports.len(), 1);
        prop_assert_eq!(
            report.sink_reports[0].param_values[0].as_str(),
            Some(expected.as_str())
        );
        let should_flag = mode == "ECB";
        prop_assert_eq!(report.sink_reports[0].verdict.is_vulnerable(), should_flag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SSG structural invariants hold for arbitrary scenario mixes: edges
    /// connect existing units, the sink unit is recorded, entries imply
    /// reachability.
    #[test]
    fn ssg_invariants_hold(
        seed in 0u64..500,
        mech_idx in 0usize..14,
        insecure in any::<bool>(),
    ) {
        let mech = [
            Mechanism::DirectEntry,
            Mechanism::PrivateChain,
            Mechanism::StaticChain,
            Mechanism::ChildClass,
            Mechanism::SuperClassPoly,
            Mechanism::InterfaceRunnable,
            Mechanism::CallbackOnClick,
            Mechanism::AsyncTask,
            Mechanism::ClinitReachable,
            Mechanism::ClinitOffPath,
            Mechanism::IccExplicit,
            Mechanism::IccImplicit,
            Mechanism::LifecycleChain,
            Mechanism::DeadCode,
        ][mech_idx];
        let app = AppSpec::named("com.pt.ssg")
            .with_seed(seed)
            .with_scenario(Scenario::new(mech, SinkKind::Cipher, insecure))
            .with_filler(4, 3, 4)
            .generate();
        let registry = DetectorRegistry::paper().sink_registry();
        let artifacts = AppArtifacts::new(app.program.clone(), app.manifest.clone());
        let mut ctx = artifacts.task();
        let sites = locate_sinks(&mut ctx, &registry, false);
        prop_assert!(!sites.is_empty(), "{mech:?}: sink must be locatable");
        for site in sites {
            let spec = &registry.sinks()[site.spec_idx];
            let result = slice_sink(
                &mut ctx,
                SlicerConfig::default(),
                &site.method,
                site.stmt_idx,
                spec,
            );
            let ssg = &result.ssg;
            prop_assert!(ssg.sink_unit().is_some());
            for &(from, to, _) in ssg.edges() {
                prop_assert!(from < ssg.units().len());
                prop_assert!(to < ssg.units().len());
            }
            for &u in ssg.static_track() {
                prop_assert!(u < ssg.units().len());
            }
            if result.reachable {
                prop_assert!(ssg.is_entry_reachable());
            }
            // unit index is consistent
            for unit in ssg.units() {
                prop_assert_eq!(ssg.unit_id(&unit.method, unit.stmt_idx), Some(unit.id));
            }
        }
    }

    /// Generator size monotonicity: more filler ⇒ more code and bytes.
    #[test]
    fn generator_size_monotonic(base in 3usize..12) {
        let small = AppSpec::named("com.pt.sz").with_filler(base, 3, 4).generate();
        let large = AppSpec::named("com.pt.sz").with_filler(base * 3, 3, 4).generate();
        prop_assert!(large.program.class_count() > small.program.class_count());
        prop_assert!(large.apk_size_bytes() > small.apk_size_bytes());
    }
}
