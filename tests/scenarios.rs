//! End-to-end detection tests: BackDroid against every generated scenario
//! mechanism, checked against ground truth.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, BackdroidOptions};

fn run_backdroid(app: &backdroid_appgen::AndroidApp) -> backdroid_core::AppReport {
    Backdroid::new().analyze(&app.program, &app.manifest)
}

fn app_with(mechanism: Mechanism, sink: SinkKind, insecure: bool) -> backdroid_appgen::AndroidApp {
    AppSpec::named(format!("com.it.{mechanism:?}").to_lowercase())
        .with_scenario(Scenario::new(mechanism, sink, insecure))
        .with_filler(6, 4, 5)
        .generate()
}

/// Mechanisms BackDroid's default configuration must fully detect.
const DETECTABLE: &[Mechanism] = &[
    Mechanism::DirectEntry,
    Mechanism::PrivateChain,
    Mechanism::StaticChain,
    Mechanism::ChildClass,
    Mechanism::SuperClassPoly,
    Mechanism::InterfaceRunnable,
    Mechanism::CallbackOnClick,
    Mechanism::AsyncTask,
    Mechanism::ClinitReachable,
    Mechanism::ClinitOffPath,
    Mechanism::IccExplicit,
    Mechanism::IccImplicit,
    Mechanism::LifecycleChain,
    Mechanism::SharedUtility,
    Mechanism::SkippedLibrary,
];

#[test]
fn detects_insecure_cipher_across_all_reachable_mechanisms() {
    for &m in DETECTABLE {
        let app = app_with(m, SinkKind::Cipher, true);
        let report = run_backdroid(&app);
        assert_eq!(
            report.vulnerable_sinks().len(),
            1,
            "{m:?}: expected exactly one vulnerable sink; reports: {:#?}",
            report.sink_reports
        );
    }
}

#[test]
fn detects_insecure_ssl_verifier_across_key_mechanisms() {
    for &m in &[
        Mechanism::DirectEntry,
        Mechanism::StaticChain,
        Mechanism::SuperClassPoly,
        Mechanism::ClinitOffPath,
        Mechanism::LifecycleChain,
    ] {
        let app = app_with(m, SinkKind::SslVerifier, true);
        let report = run_backdroid(&app);
        assert_eq!(
            report.vulnerable_sinks().len(),
            1,
            "{m:?}: {:#?}",
            report.sink_reports
        );
    }
}

#[test]
fn secure_variants_are_not_flagged() {
    for &m in DETECTABLE {
        let app = app_with(m, SinkKind::Cipher, false);
        let report = run_backdroid(&app);
        assert_eq!(
            report.vulnerable_sinks().len(),
            0,
            "{m:?} secure variant must not be flagged: {:#?}",
            report.sink_reports
        );
    }
}

#[test]
fn dead_code_sink_is_unreachable() {
    let app = app_with(Mechanism::DeadCode, SinkKind::Cipher, true);
    let report = run_backdroid(&app);
    assert_eq!(report.vulnerable_sinks().len(), 0);
    // The sink is located but proven unreachable.
    let dead = report
        .sink_reports
        .iter()
        .find(|r| r.site_method.class().as_str().contains("UnusedHelper"))
        .expect("dead sink located");
    assert!(!dead.reachable);
}

#[test]
fn unregistered_component_is_not_a_false_positive() {
    // The paper's §VI-C Amandroid FPs: BackDroid must NOT flag flows from
    // components missing in the manifest.
    let app = app_with(
        Mechanism::UnregisteredComponent,
        SinkKind::SslVerifier,
        true,
    );
    let report = run_backdroid(&app);
    assert_eq!(
        report.vulnerable_sinks().len(),
        0,
        "{:#?}",
        report.sink_reports
    );
}

#[test]
fn subclassed_sink_is_missed_by_default_and_found_with_fix() {
    // The paper's two BackDroid FNs (com.gta.nslm2 / com.wb.goog.mkx).
    let app = app_with(
        Mechanism::IndirectSubclassedSink,
        SinkKind::SslVerifier,
        true,
    );
    let default_report = run_backdroid(&app);
    assert_eq!(
        default_report.vulnerable_sinks().len(),
        0,
        "default config reproduces the FN"
    );
    let fixed = Backdroid::with_options(BackdroidOptions {
        hierarchy_initial_search: true,
        ..BackdroidOptions::default()
    });
    let fixed_report = fixed.analyze(&app.program, &app.manifest);
    assert_eq!(
        fixed_report.vulnerable_sinks().len(),
        1,
        "hierarchy-aware initial search restores the detection: {:#?}",
        fixed_report.sink_reports
    );
}

#[test]
fn recovered_parameter_values_are_concrete() {
    let app = app_with(Mechanism::PrivateChain, SinkKind::Cipher, true);
    let report = run_backdroid(&app);
    let vuln = &report.vulnerable_sinks()[0];
    assert_eq!(
        vuln.param_values[0].as_str(),
        Some("AES/ECB/PKCS5Padding"),
        "forward propagation must recover the literal through the chain"
    );
}

#[test]
fn entries_are_reported() {
    let app = app_with(Mechanism::PrivateChain, SinkKind::Cipher, true);
    let report = run_backdroid(&app);
    let vuln = &report.vulnerable_sinks()[0];
    assert!(
        vuln.entries.iter().any(|e| e.name() == "onCreate"),
        "entry points recorded: {:?}",
        vuln.entries
    );
}

#[test]
fn analysis_is_deterministic() {
    let app = app_with(Mechanism::InterfaceRunnable, SinkKind::Cipher, true);
    let a = run_backdroid(&app);
    let b = run_backdroid(&app);
    assert_eq!(a.sink_reports.len(), b.sink_reports.len());
    for (x, y) in a.sink_reports.iter().zip(&b.sink_reports) {
        assert_eq!(x.reachable, y.reachable);
        assert_eq!(x.verdict, y.verdict);
        assert_eq!(
            format!("{:?}", x.param_values),
            format!("{:?}", y.param_values)
        );
    }
}

#[test]
fn multiple_scenarios_in_one_app() {
    let app = AppSpec::named("com.it.multi")
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::Cipher,
            true,
        ))
        .with_scenario(Scenario::new(
            Mechanism::StaticChain,
            SinkKind::SslVerifier,
            true,
        ))
        .with_scenario(Scenario::new(
            Mechanism::PrivateChain,
            SinkKind::Cipher,
            false,
        ))
        .with_scenario(Scenario::new(Mechanism::DeadCode, SinkKind::Cipher, true))
        .with_filler(10, 4, 5)
        .generate();
    let report = run_backdroid(&app);
    assert_eq!(
        report.vulnerable_sinks().len(),
        2,
        "{:#?}",
        report.sink_reports
    );
    assert!(report.sink_reports.len() >= 4, "all sinks located");
}
