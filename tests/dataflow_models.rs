//! End-to-end tests for the forward analysis's Java/Android API models
//! (§V-B: "we mimic arithmetic operations and model Android/Java APIs").

use backdroid_core::Backdroid;
use backdroid_ir::{
    ClassBuilder, ClassName, Const, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};

fn cipher_sig() -> MethodSig {
    MethodSig::new(
        "javax.crypto.Cipher",
        "getInstance",
        vec![Type::string()],
        Type::object("javax.crypto.Cipher"),
    )
}

fn analyze(program: Program, act: &str) -> backdroid_core::AppReport {
    let mut manifest = Manifest::new("com.m");
    manifest.register(Component::new(ComponentKind::Activity, act));
    Backdroid::new().analyze(&program, &manifest)
}

/// StringBuilder construction of the transformation string:
/// `new StringBuilder("AES").append("/ECB").append("/PKCS5Padding").toString()`.
#[test]
fn stringbuilder_chain_is_modeled() {
    let act = ClassName::new("com.m.Main");
    let sb_ty = Type::object("java.lang.StringBuilder");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let sb = oc.new_object(
        "java.lang.StringBuilder",
        vec![Type::string()],
        vec![Value::str("AES")],
    );
    for part in ["/ECB", "/PKCS5Padding"] {
        oc.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "java.lang.StringBuilder",
                "append",
                vec![Type::string()],
                sb_ty.clone(),
            ),
            sb,
            vec![Value::str(part)],
        ));
    }
    let mode = oc.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new(
            "java.lang.StringBuilder",
            "toString",
            vec![],
            Type::string(),
        ),
        sb,
        vec![],
    ));
    oc.invoke(InvokeExpr::call_static(
        cipher_sig(),
        vec![Value::Local(mode)],
    ));
    let mut p = Program::new();
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let report = analyze(p, "com.m.Main");
    assert_eq!(report.sink_reports.len(), 1);
    let r = &report.sink_reports[0];
    assert_eq!(
        r.param_values[0].as_str(),
        Some("AES/ECB/PKCS5Padding"),
        "{:?}",
        r.param_values
    );
    assert!(r.verdict.is_vulnerable());
}

/// `String.valueOf` + `String.concat` models.
#[test]
fn string_valueof_and_concat_are_modeled() {
    let act = ClassName::new("com.m.Main");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let a = oc.invoke_assign(InvokeExpr::call_static(
        MethodSig::new(
            "java.lang.String",
            "valueOf",
            vec![Type::object("java.lang.Object")],
            Type::string(),
        ),
        vec![Value::str("AES/GCM")],
    ));
    let full = oc.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new(
            "java.lang.String",
            "concat",
            vec![Type::string()],
            Type::string(),
        ),
        a,
        vec![Value::str("/NoPadding")],
    ));
    oc.invoke(InvokeExpr::call_static(
        cipher_sig(),
        vec![Value::Local(full)],
    ));
    let mut p = Program::new();
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let report = analyze(p, "com.m.Main");
    let r = &report.sink_reports[0];
    assert_eq!(r.param_values[0].as_str(), Some("AES/GCM/NoPadding"));
    assert!(!r.verdict.is_vulnerable(), "GCM is safe");
}

/// `toLowerCase`/`toUpperCase` string models.
#[test]
fn case_conversions_are_modeled() {
    let act = ClassName::new("com.m.Main");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let lower = oc.assign_const(Const::str("aes/ecb/pkcs5padding"));
    let upper = oc.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new("java.lang.String", "toUpperCase", vec![], Type::string()),
        lower,
        vec![],
    ));
    oc.invoke(InvokeExpr::call_static(
        cipher_sig(),
        vec![Value::Local(upper)],
    ));
    let mut p = Program::new();
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let report = analyze(p, "com.m.Main");
    let r = &report.sink_reports[0];
    assert_eq!(r.param_values[0].as_str(), Some("AES/ECB/PKCS5PADDING"));
    assert!(r.verdict.is_vulnerable());
}

/// `Integer.parseInt` on a constant string folds to an int.
#[test]
fn parse_int_is_modeled() {
    use backdroid_core::{locate_sinks, slice_sink, DetectorRegistry, SlicerConfig};
    // ServerSocket(int) sink from the extended registry.
    let act = ClassName::new("com.m.Main");
    let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let s = oc.assign_const(Const::str("8089"));
    let port = oc.invoke_assign(InvokeExpr::call_static(
        MethodSig::new(
            "java.lang.Integer",
            "parseInt",
            vec![Type::string()],
            Type::Int,
        ),
        vec![Value::Local(s)],
    ));
    oc.new_object(
        "java.net.ServerSocket",
        vec![Type::Int],
        vec![Value::Local(port)],
    );
    let mut p = Program::new();
    p.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(oc.build())
            .build(),
    );
    let mut manifest = Manifest::new("com.m");
    manifest.register(Component::new(ComponentKind::Activity, "com.m.Main"));
    let registry = DetectorRegistry::extended().sink_registry();
    let artifacts = backdroid_core::AppArtifacts::new(p.clone(), manifest.clone());
    let mut ctx = artifacts.task();
    let sites = locate_sinks(&mut ctx, &registry, false);
    let site = sites
        .iter()
        .find(|s| registry.sinks()[s.spec_idx].id == "socket.server")
        .expect("ServerSocket ctor located");
    let spec = &registry.sinks()[site.spec_idx];
    let result = slice_sink(
        &mut ctx,
        SlicerConfig::default(),
        &site.method,
        site.stmt_idx,
        spec,
    );
    assert!(result.reachable);
    let mut fwd = backdroid_core::ForwardAnalysis::new(&p);
    let values = fwd.run(&result.ssg, spec);
    assert_eq!(
        values[0],
        backdroid_core::DataflowValue::Int(8089),
        "parseInt folds the constant port (the Fig 6 shape)"
    );
}

/// The sink-call cache: two sinks in the same unreachable method — the
/// second is skipped (§IV-F).
#[test]
fn sink_cache_skips_second_call_in_unreachable_method() {
    let cls = ClassName::new("com.m.Dead");
    let mut m = MethodBuilder::public(&cls, "never", vec![], Type::Void);
    for mode in ["AES/ECB/PKCS5Padding", "AES/GCM/NoPadding"] {
        let v = m.assign_const(Const::str(mode));
        m.invoke(InvokeExpr::call_static(cipher_sig(), vec![Value::Local(v)]));
    }
    let mut p = Program::new();
    p.add_class(ClassBuilder::new(cls.as_str()).method(m.build()).build());
    let report = analyze(p, "com.m.MainDoesNotExist");
    assert_eq!(report.sink_cache.located, 2);
    assert_eq!(report.sink_cache.skipped, 1, "second call cached away");
    assert!((report.sink_cache.rate() - 0.5).abs() < 1e-9);
    assert_eq!(report.sink_reports.len(), 1, "only the first analyzed");
}
