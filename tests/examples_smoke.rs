//! Smoke test: every file in `examples/` must keep compiling **and
//! running**, so the README quickstart (and the other walkthroughs,
//! including their search-backend wiring) can never silently rot.
//!
//! Shells out to the same `cargo` that is running the test suite: one
//! build of all example targets, then one run per discovered example.
//! Cargo auto-discovers `examples/*.rs`, so a newly added example is
//! covered with no registration step.

use std::path::Path;
use std::process::Command;

fn example_names() -> Vec<String> {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let examples_dir = Path::new(manifest_dir).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .collect();
    names.sort();
    names
}

#[test]
fn all_examples_compile_and_run() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let names = example_names();
    assert!(
        !names.is_empty(),
        "examples/ contains no .rs files — the quickstart is gone"
    );
    assert!(
        names.len() >= 9,
        "expected the nine shipped walkthroughs, found only {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "sharded_serve"),
        "the sharded-serving walkthrough must stay shipped: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "parallel_session"),
        "the shared-session walkthrough must stay shipped: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "snapshot_roundtrip"),
        "the persistence walkthrough must stay shipped: {names:?}"
    );

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .args(["build", "--examples"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed for {} example(s):\n{}",
        names.len(),
        String::from_utf8_lossy(&output.stderr)
    );

    for name in &names {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo run --example {name}: {e}"));
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{name}` printed nothing — walkthrough output expected"
        );
    }
}
