//! Smoke test: every file in `examples/` must keep compiling, so the
//! README quickstart (and the other walkthroughs) can never silently rot.
//!
//! Shells out to the same `cargo` that is running the test suite and
//! builds all example targets. Cargo auto-discovers `examples/*.rs`, so a
//! newly added example is covered with no registration step.

use std::path::Path;
use std::process::Command;

#[test]
fn all_examples_compile() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let examples_dir = Path::new(manifest_dir).join("examples");
    let sources: Vec<_> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    assert!(
        !sources.is_empty(),
        "examples/ contains no .rs files — the quickstart is gone"
    );

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["build", "--examples"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed for {} example(s):\n{}",
        sources.len(),
        String::from_utf8_lossy(&output.stderr)
    );
}
