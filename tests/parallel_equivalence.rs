//! The intra-app sink-task scheduler's determinism contract: for any
//! `intra_threads` width and either search backend, `Backdroid` must
//! produce **identical** `SinkReport` sequences, verdicts, cache
//! statistics (`lines_scanned` / `postings_touched` included), sink-cache
//! skip counts, and loop statistics as the sequential run.
//!
//! Two layers of enforcement, mirroring `backend_equivalence.rs`:
//!
//! * a proptest driving arbitrary scenario apps through sequential vs
//!   parallel runs at a fuzzed thread count, under both backends;
//! * a deterministic sweep over the full small benchset at
//!   `intra_threads = 4`.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{AppArtifacts, AppReport, Backdroid, BackdroidOptions, BackendChoice};
use proptest::prelude::*;

fn run(
    app: &backdroid_appgen::AndroidApp,
    backend: BackendChoice,
    intra_threads: usize,
) -> AppReport {
    // Fresh artifacts per run so the cache statistics cover exactly one
    // analysis.
    let artifacts = AppArtifacts::with_backend(app.program.clone(), app.manifest.clone(), backend);
    Backdroid::with_options(BackdroidOptions {
        backend,
        intra_threads,
        ..BackdroidOptions::default()
    })
    .analyze_artifacts(&artifacts)
}

/// Sequential vs parallel: everything but wall-clock must be equal.
fn assert_width_invariant(app: &backdroid_appgen::AndroidApp, threads: usize) {
    for backend in [BackendChoice::LinearScan, BackendChoice::Indexed] {
        let seq = run(app, backend, 1);
        let par = run(app, backend, threads);
        assert_eq!(
            seq.sink_reports, par.sink_reports,
            "{}/{:?}: report sequence diverged at {threads} threads",
            app.name, backend
        );
        assert_eq!(
            seq.vulnerable_sinks().len(),
            par.vulnerable_sinks().len(),
            "{}/{:?}: verdict count diverged",
            app.name,
            backend
        );
        assert_eq!(
            seq.cache_stats, par.cache_stats,
            "{}/{:?}: cache statistics (commands/hits/lines_scanned/postings_touched) diverged",
            app.name, backend
        );
        assert_eq!(
            seq.sink_cache, par.sink_cache,
            "{}/{:?}: §IV-F skip accounting diverged",
            app.name, backend
        );
        assert_eq!(
            seq.loop_stats, par.loop_stats,
            "{}/{:?}: loop statistics diverged",
            app.name, backend
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary scenario apps at a fuzzed scheduler width: sequential
    /// and parallel runs are indistinguishable under both backends.
    #[test]
    fn intra_parallel_equals_sequential_on_generated_apps(
        seed in 0u64..500,
        mech_idx in 0usize..14,
        sink_is_ssl in any::<bool>(),
        insecure in any::<bool>(),
        threads in 2usize..9,
    ) {
        let mech = [
            Mechanism::DirectEntry,
            Mechanism::PrivateChain,
            Mechanism::StaticChain,
            Mechanism::ChildClass,
            Mechanism::SuperClassPoly,
            Mechanism::InterfaceRunnable,
            Mechanism::CallbackOnClick,
            Mechanism::AsyncTask,
            Mechanism::ClinitReachable,
            Mechanism::ClinitOffPath,
            Mechanism::IccExplicit,
            Mechanism::IccImplicit,
            Mechanism::LifecycleChain,
            Mechanism::DeadCode,
        ][mech_idx];
        let sink = if sink_is_ssl { SinkKind::SslVerifier } else { SinkKind::Cipher };
        // Two scenarios so the scheduler has at least two method groups
        // to spread across workers.
        let app = AppSpec::named("com.par.prop")
            .with_seed(seed)
            .with_scenarios(vec![
                Scenario::new(mech, sink, insecure),
                Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, !insecure),
            ])
            .with_filler(6, 3, 4)
            .generate();
        assert_width_invariant(&app, threads);
    }
}

/// The acceptance sweep: the full small benchset at `intra_threads = 4`,
/// both backends — multi-sink apps, timeout-profile apps, dead code,
/// shared utilities, the lot.
#[test]
fn benchset_reports_are_width_invariant() {
    let cfg = BenchsetConfig::small();
    for i in 0..cfg.count {
        let ba = bench_app(i, cfg);
        assert_width_invariant(&ba.app, 4);
    }
}
