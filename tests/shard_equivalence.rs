//! Sharded-serving equivalence, tier-1 enforced: a [`ShardPool`] must be
//! an *invisible* scaling layer. For every shard count (1, 2, 8), both
//! search backends, and fuzzed submission interleavings, the response
//! stream is **byte-identical** to the direct single-service replay the
//! `backdroid-serve --direct` CI golden is built from — routing,
//! queueing, and per-shard stores never leak into response bytes.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_core::BackendChoice;
use backdroid_service::proto::{self, workload_request_line};
use backdroid_service::shard::execute_request;
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::sync::{Arc, Mutex};

fn small_trace() -> (BenchsetConfig, Vec<String>) {
    let bench = BenchsetConfig::sized(5, 0.04);
    let trace = workload::generate(WorkloadConfig {
        apps: bench.count,
        requests: 36,
        seed: 11,
        ..WorkloadConfig::default()
    });
    let lines: Vec<String> = trace
        .iter()
        .enumerate()
        .map(|(i, r)| workload_request_line(i as u64, r))
        .collect();
    (bench, lines)
}

fn service_config(backend: BackendChoice) -> ServiceConfig {
    ServiceConfig {
        budget_bytes: u64::MAX,
        backend,
        ..ServiceConfig::default()
    }
}

/// The golden: every line answered by one direct service, in order —
/// exactly what `backdroid-serve --direct` replays in CI.
fn direct_golden(bench: BenchsetConfig, backend: BackendChoice, lines: &[String]) -> Vec<String> {
    let service = Service::over_benchset(bench, service_config(backend));
    lines
        .iter()
        .map(|line| {
            let req = proto::parse_request(line).expect("trace lines parse");
            execute_request(&service, &req).expect("trace ops all produce output")
        })
        .collect()
}

/// Replays the lines through a pool of `shards`, submitted from
/// `submitters` threads in interleaved chunks, and returns the responses
/// in sequence order.
fn sharded_replay(
    bench: BenchsetConfig,
    backend: BackendChoice,
    lines: &[String],
    shards: usize,
    submitters: usize,
) -> Vec<String> {
    let pool = ShardPool::new(
        ShardPoolConfig {
            shards,
            workers_per_shard: 2,
            queue_capacity: 8,
            ..ShardPoolConfig::default()
        },
        move |_| Service::over_benchset(bench, service_config(backend)),
    );
    let slots: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(vec![None; lines.len()]));
    let responder: Responder = {
        let slots = Arc::clone(&slots);
        Arc::new(move |seq, response| {
            let mut slots = slots.lock().expect("slots poisoned");
            assert!(
                slots[seq as usize].is_none(),
                "seq {seq} answered more than once"
            );
            slots[seq as usize] = Some(response.expect("trace ops all produce output"));
        })
    };
    // Fuzzed interleaving: submitter t sends seqs t, t+n, t+2n, … — the
    // pool sees requests out of order, arbitrarily overlapped.
    std::thread::scope(|scope| {
        for t in 0..submitters {
            let pool = &pool;
            let responder = responder.clone();
            scope.spawn(move || {
                for (seq, line) in lines.iter().enumerate().skip(t).step_by(submitters) {
                    pool.submit_line(seq as u64, line, &responder);
                }
            });
        }
    });
    pool.drain();
    let answers: Vec<String> = slots
        .lock()
        .expect("slots poisoned")
        .iter()
        .map(|s| s.clone().expect("every seq answered"))
        .collect();
    pool.shutdown();
    answers
}

#[test]
fn sharded_replay_is_byte_identical_to_direct_for_every_topology() {
    let (bench, lines) = small_trace();
    for backend in [BackendChoice::LinearScan, BackendChoice::Indexed] {
        let golden = direct_golden(bench, backend, &lines);
        assert_eq!(golden.len(), lines.len());
        for shards in [1usize, 2, 8] {
            for submitters in [1usize, 3] {
                let sharded = sharded_replay(bench, backend, &lines, shards, submitters);
                assert_eq!(
                    sharded, golden,
                    "backend {backend:?}, {shards} shard(s), {submitters} submitter(s): \
                     responses must not depend on topology or interleaving"
                );
            }
        }
    }
}

#[test]
fn stats_and_admin_lines_splice_cleanly_into_traces() {
    // The CI kill-one-shard leg splices admin ops into a replayed trace;
    // they must not disturb the data-plane byte stream: admin ops answer
    // nothing and `stats` is excluded from goldens.
    let (bench, lines) = small_trace();
    let backend = BackendChoice::Indexed;
    let golden = direct_golden(bench, backend, &lines);

    let pool = ShardPool::new(
        ShardPoolConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 8,
            ..ShardPoolConfig::default()
        },
        move |_| Service::over_benchset(bench, service_config(backend)),
    );
    let data: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let responder: Responder = {
        let data = Arc::clone(&data);
        Arc::new(move |seq, response| {
            if let Some(line) = response {
                data.lock().expect("data poisoned").push((seq, line));
            }
        })
    };
    let mut seq = 0u64;
    for (i, line) in lines.iter().enumerate() {
        if i == 10 {
            // Admin splice: kill shard 0, then bring it back.
            pool.submit_line(
                seq,
                "{\"id\":900,\"op\":\"kill_shard\",\"shard\":0}",
                &responder,
            );
            seq += 1;
            pool.submit_line(
                seq,
                "{\"id\":901,\"op\":\"restart_shard\",\"shard\":0}",
                &responder,
            );
            seq += 1;
        }
        pool.submit_line(seq, line, &responder);
        seq += 1;
    }
    pool.drain();
    let mut data = data.lock().expect("data poisoned").clone();
    data.sort_by_key(|(seq, _)| *seq);
    let answers: Vec<String> = data.into_iter().map(|(_, line)| line).collect();
    assert_eq!(
        answers, golden,
        "admin ops must be invisible in the data-plane stream"
    );
    assert!(pool.pool_stats().kills >= 1);
    pool.shutdown();
}
