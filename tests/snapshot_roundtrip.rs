//! Snapshot persistence invariants, end to end:
//!
//! * **Exactness** — `from_snapshot(to_snapshot(a))` preserves analysis
//!   output byte-for-byte (proptest over fuzzed benchset apps and the
//!   deterministic fixture corpus), and re-snapshotting the restored
//!   image reproduces the original bytes.
//! * **Totality** — truncated, corrupted, and version-bumped snapshots
//!   are rejected with the right error, never a panic.
//! * **Two-tier service** — a `Service` with a `--snapshot-dir`-style
//!   disk tier renders byte-identical responses across cold-parse,
//!   disk-warm, and memory-warm serving, which is the contract the CI
//!   `snapshot-smoke` job enforces on the real binary.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::fixtures::{fixture_count, snapshot_fixture};
use backdroid_core::{
    AppArtifacts, Backdroid, BackdroidOptions, BackendChoice, SnapshotError, SNAPSHOT_MAGIC,
};
use backdroid_service::{proto, Service, ServiceConfig};
use proptest::prelude::*;

/// A scratch directory removed on drop (no tempfile crate vendored).
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "backdroid-snapshot-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn roundtrip_exactly(artifacts: &AppArtifacts, backend: BackendChoice, label: &str) {
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        ..BackdroidOptions::default()
    });
    let bytes = artifacts.to_snapshot();
    assert_eq!(bytes, artifacts.to_snapshot(), "{label}: deterministic");
    let restored = AppArtifacts::from_snapshot(&bytes, backend)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    assert_eq!(
        restored.to_snapshot(),
        bytes,
        "{label}: re-snapshot byte-identical"
    );
    assert_eq!(
        restored.estimated_bytes(),
        artifacts.estimated_bytes(),
        "{label}: store accounting unchanged by the disk round-trip"
    );
    let fresh = tool.analyze_artifacts(artifacts);
    let after = tool.analyze_artifacts(&restored);
    assert_eq!(
        fresh.sink_reports, after.sink_reports,
        "{label}: analysis output must survive the round-trip byte-for-byte"
    );
    assert_eq!(fresh.sink_cache.located, after.sink_cache.located);
    assert_eq!(fresh.sink_cache.skipped, after.sink_cache.skipped);
}

#[test]
fn every_fixture_roundtrips_on_both_backends() {
    for i in 0..fixture_count() {
        let app = snapshot_fixture(i);
        let artifacts =
            AppArtifacts::with_backend(app.program, app.manifest, BackendChoice::Indexed);
        roundtrip_exactly(&artifacts, BackendChoice::Indexed, &format!("fixture {i}"));
        // The same snapshot must serve the linear oracle identically.
        let bytes = artifacts.to_snapshot();
        let linear = AppArtifacts::from_snapshot(&bytes, BackendChoice::LinearScan).unwrap();
        let tool_l = Backdroid::with_options(BackdroidOptions {
            backend: BackendChoice::LinearScan,
            ..BackdroidOptions::default()
        });
        let tool_i = Backdroid::with_options(BackdroidOptions::default());
        assert_eq!(
            tool_i.analyze_artifacts(&artifacts).sink_reports,
            tool_l.analyze_artifacts(&linear).sink_reports,
            "fixture {i}: one snapshot, both backends, same reports"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed benchset apps: any (index, count, code-permille) cell of the
    /// corpus grid round-trips with byte-identical analysis output.
    #[test]
    fn fuzzed_benchset_apps_roundtrip(
        idx in 0usize..6,
        count in 1usize..6,
        permille in 20u32..60,
    ) {
        let cfg = BenchsetConfig::sized(count.max(idx + 1), permille as f64 / 1000.0);
        let ba = bench_app(idx.min(cfg.count - 1), cfg);
        let artifacts = AppArtifacts::new(ba.app.program, ba.app.manifest);
        roundtrip_exactly(
            &artifacts,
            BackendChoice::default(),
            &format!("bench app {idx} of {count} @{permille}‰"),
        );
    }
}

#[test]
fn truncated_corrupt_and_version_bumped_snapshots_are_rejected() {
    let app = snapshot_fixture(1);
    let artifacts = AppArtifacts::new(app.program, app.manifest);
    let bytes = artifacts.to_snapshot();
    assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);

    // Every strict prefix is rejected (never a panic, never an image).
    for cut in 0..bytes.len() {
        assert!(
            AppArtifacts::from_snapshot(&bytes[..cut], BackendChoice::default()).is_err(),
            "prefix of {cut}/{} bytes restored",
            bytes.len()
        );
    }

    // Single-byte corruption anywhere is rejected: header bytes hit the
    // magic/version/length checks, payload and trailer bytes the
    // checksum. (Sampled stride keeps the test fast.)
    for i in (0..bytes.len()).step_by(13) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        assert!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).is_err(),
            "flip at byte {i} restored"
        );
    }

    // A version bump is specifically a VersionMismatch, so operators can
    // tell stale formats from bit rot.
    let mut bumped = bytes.clone();
    bumped[8] = bumped[8].wrapping_add(1);
    assert!(matches!(
        AppArtifacts::from_snapshot(&bumped, BackendChoice::default()),
        Err(SnapshotError::VersionMismatch { .. })
    ));
}

/// Drives one trace through a service three times — cold (empty snapshot
/// dir), disk-warm (same dir again, fresh process state), memory-warm
/// (same service again) — and demands byte-identical rendered responses.
#[test]
fn service_responses_are_identical_across_all_three_tiers() {
    let scratch = ScratchDir::new("tiers");
    let bench = BenchsetConfig::sized(4, 0.04);
    let cfg = ServiceConfig {
        budget_bytes: u64::MAX,
        snapshot_dir: Some(scratch.0.clone()),
        ..ServiceConfig::default()
    };
    let trace: Vec<&str> = vec!["0", "2", "1", "2", "0"];

    let render = |service: &Service| -> Vec<String> {
        trace
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let a = service.analyze_app(id).expect("benchset app loads");
                proto::render_analysis(i as u64, "analyze", &a)
            })
            .collect()
    };

    // Tier 1: cold parses, snapshots written.
    let cold_service = Service::over_benchset(bench, cfg.clone());
    let cold = render(&cold_service);
    let s = cold_service.stats().store;
    assert_eq!(s.disk_hits, 0, "empty dir: nothing to restore");
    assert_eq!(s.disk_writes, 3, "one single-flight write per distinct app");
    assert!(s.disk_bytes_written > 0);

    // Tier 2: a fresh service over the populated directory — every
    // first-touch load is a snapshot restore, zero re-parses.
    let disk_service = Service::over_benchset(bench, cfg.clone());
    let disk = render(&disk_service);
    let s = disk_service.stats().store;
    assert_eq!(s.disk_hits, 3, "all first-touch loads restored from disk");
    assert_eq!(s.misses, 0, "no app was re-parsed");

    // Tier 3: the same resident service again — memory hits only.
    let memory = render(&disk_service);
    let s = disk_service.stats().store;
    assert_eq!(s.loads, 3, "nothing new was produced");

    assert_eq!(cold, disk, "cold-parse vs disk-warm responses");
    assert_eq!(cold, memory, "cold-parse vs memory-warm responses");
}

/// Corrupting a snapshot behind the service's back must degrade to a
/// reparse — identical responses, one invalidation counted.
#[test]
fn service_survives_snapshot_corruption_with_identical_output() {
    let scratch = ScratchDir::new("corrupt");
    let bench = BenchsetConfig::sized(3, 0.04);
    let cfg = ServiceConfig {
        budget_bytes: u64::MAX,
        snapshot_dir: Some(scratch.0.clone()),
        ..ServiceConfig::default()
    };
    let golden = Service::over_benchset(bench, cfg.clone());
    let a = golden.analyze_app("1").unwrap();
    let golden_line = proto::render_analysis(0, "analyze", &a);

    // Corrupt the snapshot the first service just wrote.
    let tier = golden.store().disk_tier().expect("disk tier configured");
    let path = tier.path_for("1");
    let mut bytes = std::fs::read(&path).expect("snapshot written on first load");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let recovering = Service::over_benchset(bench, cfg);
    let b = recovering.analyze_app("1").unwrap();
    assert_eq!(
        proto::render_analysis(0, "analyze", &b),
        golden_line,
        "reparse fallback must not change the response"
    );
    let s = recovering.stats().store;
    assert_eq!(s.disk_invalidations, 1);
    assert_eq!(s.misses, 1, "the corrupt snapshot forced one reparse");
    assert_eq!(s.disk_writes, 1, "and the snapshot was re-written");
    // The re-written snapshot is valid again.
    let again = Service::over_benchset(
        bench,
        ServiceConfig {
            budget_bytes: u64::MAX,
            snapshot_dir: Some(scratch.0.clone()),
            ..ServiceConfig::default()
        },
    );
    again.analyze_app("1").unwrap();
    assert_eq!(again.stats().store.disk_hits, 1);
}
