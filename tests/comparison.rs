//! Cross-tool integration tests: BackDroid vs the whole-app baseline on
//! shared apps, reproducing the §VI-C agreement/disagreement matrix.

use backdroid_appgen::{AppSpec, BaselineBlindSpot, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, DetectorRegistry};
use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig, Outcome};

fn baseline_cfg() -> AmandroidConfig {
    AmandroidConfig {
        error_injection: false,
        ..AmandroidConfig::default()
    }
}

fn run_both(app: &backdroid_appgen::AndroidApp) -> (usize, usize) {
    let bd = Backdroid::new().analyze(&app.program, &app.manifest);
    let registry = DetectorRegistry::paper();
    let am = analyze(
        &app.name,
        &app.program,
        &app.manifest,
        &registry,
        &baseline_cfg(),
    );
    let am_vulns = am.report().map(|r| r.vulnerable().len()).unwrap_or(0);
    (bd.vulnerable_sinks().len(), am_vulns)
}

#[test]
fn both_tools_agree_on_plain_mechanisms() {
    for mech in [
        Mechanism::DirectEntry,
        Mechanism::PrivateChain,
        Mechanism::StaticChain,
        Mechanism::ChildClass,
        Mechanism::SuperClassPoly,
        Mechanism::ClinitOffPath,
    ] {
        let app = AppSpec::named(format!("com.cmp.{mech:?}").to_lowercase())
            .with_scenario(Scenario::new(mech, SinkKind::Cipher, true))
            .with_filler(6, 3, 4)
            .generate();
        let (bd, am) = run_both(&app);
        assert_eq!(bd, 1, "{mech:?}: BackDroid");
        assert_eq!(am, 1, "{mech:?}: baseline");
    }
}

#[test]
fn baseline_blind_spots_match_ground_truth_labels() {
    for mech in [
        Mechanism::InterfaceRunnable,
        Mechanism::AsyncTask,
        Mechanism::CallbackOnClick,
        Mechanism::SkippedLibrary,
    ] {
        let app = AppSpec::named(format!("com.cmp.blind.{mech:?}").to_lowercase())
            .with_scenario(Scenario::new(mech, SinkKind::Cipher, true))
            .with_filler(6, 3, 4)
            .generate();
        let gt = &app.ground_truth[0];
        assert!(
            matches!(
                gt.baseline_blind_spot,
                Some(BaselineBlindSpot::AsyncCallback | BaselineBlindSpot::SkippedLibrary)
            ),
            "{mech:?} labeled as blind spot"
        );
        let (bd, am) = run_both(&app);
        assert_eq!(bd, 1, "{mech:?}: BackDroid finds it");
        assert_eq!(am, 0, "{mech:?}: baseline misses it");
    }
}

#[test]
fn fp_asymmetry_on_unregistered_components() {
    let app = AppSpec::named("com.cmp.fp")
        .with_scenario(Scenario::new(
            Mechanism::UnregisteredComponent,
            SinkKind::SslVerifier,
            true,
        ))
        .with_filler(6, 3, 4)
        .generate();
    let (bd, am) = run_both(&app);
    assert_eq!(bd, 0, "BackDroid avoids the FP");
    assert_eq!(am, 1, "the sloppy baseline reports the FP");
    assert_eq!(app.true_vulnerabilities(), 0, "ground truth: no vuln");
}

#[test]
fn fn_asymmetry_on_subclassed_sinks() {
    let app = AppSpec::named("com.cmp.fn")
        .with_scenario(Scenario::new(
            Mechanism::IndirectSubclassedSink,
            SinkKind::SslVerifier,
            true,
        ))
        .with_filler(6, 3, 4)
        .generate();
    let (bd, am) = run_both(&app);
    assert_eq!(bd, 0, "BackDroid's default search misses the wrapper");
    assert_eq!(am, 1, "the whole-app view catches it");
    assert_eq!(app.true_vulnerabilities(), 1);
}

#[test]
fn timeout_asymmetry_on_large_apps() {
    let app = AppSpec::named("com.cmp.big")
        .with_scenario(Scenario::new(
            Mechanism::StaticChain,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(80, 6, 8)
        .generate();
    // Tight budget: the whole-app tool times out, BackDroid does not care.
    let cfg = AmandroidConfig {
        budget_units: 2_000,
        ..baseline_cfg()
    };
    let registry = DetectorRegistry::paper();
    let am = analyze(&app.name, &app.program, &app.manifest, &registry, &cfg);
    assert!(matches!(am, Outcome::TimedOut { .. }));
    let bd = Backdroid::new().analyze(&app.program, &app.manifest);
    assert_eq!(bd.vulnerable_sinks().len(), 1);
}

#[test]
fn robust_baseline_closes_the_async_gap() {
    let app = AppSpec::named("com.cmp.robust")
        .with_scenario(Scenario::new(Mechanism::AsyncTask, SinkKind::Cipher, true))
        .with_filler(6, 3, 4)
        .generate();
    let registry = DetectorRegistry::paper();
    let robust = AmandroidConfig {
        robust_async: true,
        ..baseline_cfg()
    };
    let out = analyze(&app.name, &app.program, &app.manifest, &registry, &robust);
    assert_eq!(out.report().unwrap().vulnerable().len(), 1);
}

#[test]
fn error_injection_hashes_agree_across_crates() {
    // appgen picks names for the baseline's deterministic error injection;
    // both crates must hash identically.
    for name in ["com.a.b", "x", "com.bench.app074.v12"] {
        assert_eq!(
            backdroid_appgen::benchset::fnv1a(name),
            backdroid_wholeapp::amandroid::fnv1a(name)
        );
    }
    assert_eq!(
        backdroid_appgen::benchset::ERROR_MODULUS,
        backdroid_wholeapp::amandroid::ERROR_MODULUS
    );
}

#[test]
fn backdroid_work_scales_with_sinks_not_app_size() {
    // Fig 9's premise: same code size, more sinks ⇒ more BackDroid work;
    // same sinks, much more code ⇒ bounded growth (one extra scan pass is
    // linear in dump size, not in analysis complexity).
    let few_sinks = AppSpec::named("com.cmp.sinks2")
        .with_scenarios(
            (0..2).map(|_| Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, false)),
        )
        .with_filler(30, 4, 6)
        .generate();
    let many_sinks = AppSpec::named("com.cmp.sinks12")
        .with_scenarios(
            (0..12).map(|_| Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, false)),
        )
        .with_filler(30, 4, 6)
        .generate();
    let run = |app: &backdroid_appgen::AndroidApp| {
        Backdroid::new()
            .analyze(&app.program, &app.manifest)
            .cache_stats
            .lines_scanned
    };
    let few = run(&few_sinks);
    let many = run(&many_sinks);
    assert!(
        many > few,
        "more sinks must cost more search work: {few} vs {many}"
    );
}
