//! Observability-layer invariants, tier-1 enforced.
//!
//! Three families of checks:
//!
//! * **Histogram bucket math** (property-based): the log2 histogram
//!   must preserve exact counts and sums, place every value inside its
//!   bucket's bounds, keep quantile upper bounds monotone, and merge
//!   (`absorb`) exactly — the arithmetic every latency tier and the
//!   `queue_wait_p99_buckets` baseline band lean on.
//! * **Span-tree well-formedness**: every trace recorded by a
//!   [`ShardPool`] run has exactly one root named `request`, parents
//!   that exist and precede their children, and monotone timestamps.
//! * **Normalized-trace determinism**: the normalized JSONL export
//!   (what `backdroid-serve --trace-out --trace-norm` writes) is
//!   byte-identical across two replays of the same workload *and*
//!   across shard counts — the span skeleton is a pure function of
//!   the workload, never of scheduling or topology.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_obs::{bucket_of, bucket_upper_bound, Histogram, SpanRecord};
use backdroid_service::proto::workload_request_line;
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Histogram bucket math (property-based)
// ---------------------------------------------------------------------

proptest! {
    /// Recording never loses or invents samples: bucket totals, the
    /// count, and the exact sum all agree with the raw input.
    #[test]
    fn histogram_preserves_count_and_sum(
        values in prop::collection::vec(0u64..1_000_000_000, 0..200)
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        if !values.is_empty() {
            let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
            prop_assert!((s.mean() - exact).abs() < 1e-6);
        }
    }

    /// Every value lands strictly inside its bucket's half-open range:
    /// above the previous bucket's upper bound, at or below its own.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let k = bucket_of(v);
        prop_assert!(v <= bucket_upper_bound(k));
        if k > 0 {
            prop_assert!(v > bucket_upper_bound(k - 1));
        }
    }

    /// Quantile upper bounds are monotone in q and never exceed the
    /// bucket ceiling of the true maximum.
    #[test]
    fn quantile_uppers_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..(1u64 << 40), 1..200)
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_upper(0.50);
        let p90 = s.quantile_upper(0.90);
        let p99 = s.quantile_upper(0.99);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        let max = *values.iter().max().unwrap();
        prop_assert!(p99 <= bucket_upper_bound(bucket_of(max)));
        let min = *values.iter().min().unwrap();
        prop_assert!(p50 >= min);
    }

    /// `absorb` merges two histograms exactly: bucketwise counts, the
    /// total count, and the exact sum all add.
    #[test]
    fn absorb_merges_exactly(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let ha = Histogram::default();
        for &v in &a {
            ha.record(v);
        }
        let hb = Histogram::default();
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.snapshot();
        merged.absorb(&hb.snapshot());
        let hall = Histogram::default();
        for &v in a.iter().chain(b.iter()) {
            hall.record(v);
        }
        let expect = hall.snapshot();
        prop_assert_eq!(merged.count, expect.count);
        prop_assert_eq!(merged.sum, expect.sum);
        prop_assert_eq!(merged.buckets, expect.buckets);
    }
}

// ---------------------------------------------------------------------
// Span traces from a real pool run
// ---------------------------------------------------------------------

/// Replay the seeded workload through a traced pool and hand back the
/// normalized export plus the raw spans.
fn traced_replay(shards: usize) -> (String, Vec<SpanRecord>) {
    let bench = BenchsetConfig::sized(5, 0.04);
    let trace = workload::generate(WorkloadConfig {
        apps: bench.count,
        requests: 30,
        seed: 11,
        ..WorkloadConfig::default()
    });
    let pool = ShardPool::new(
        ShardPoolConfig {
            shards,
            workers_per_shard: 2,
            queue_capacity: 64,
            trace_capacity: 4096,
        },
        move |_| {
            Service::over_benchset(
                bench,
                ServiceConfig {
                    budget_bytes: u64::MAX,
                    ..ServiceConfig::default()
                },
            )
        },
    );
    let responder: Responder = Arc::new(|_, _| {});
    for (seq, req) in trace.iter().enumerate() {
        pool.submit_line(
            seq as u64,
            &workload_request_line(seq as u64, req),
            &responder,
        );
    }
    pool.drain();
    let tracer = Arc::clone(pool.tracer().expect("trace_capacity > 0 builds a tracer"));
    pool.shutdown();
    assert_eq!(tracer.dropped(), 0, "ring must not wrap in this test");
    (tracer.export_normalized_jsonl(), tracer.spans())
}

/// Every recorded trace is a well-formed tree: one `request` root,
/// parents that exist and precede their children, known span names,
/// and monotone timestamps on every closed span.
#[test]
fn span_trees_are_well_formed() {
    let known: HashSet<&str> = [
        "request", "queue", "exec", "emit", "fetch", "locate", "slice", "verdict", "search",
        "item", "deadline",
    ]
    .into_iter()
    .collect();
    let (_, spans) = traced_replay(4);
    assert!(!spans.is_empty(), "the replay must record spans");
    let mut by_trace: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    for (trace_id, spans) in &by_trace {
        let ids: HashSet<u32> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(
            ids.len(),
            spans.len(),
            "trace {trace_id}: duplicate span ids"
        );
        let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "trace {trace_id}: exactly one root");
        assert_eq!(roots[0].name, "request");
        for s in spans {
            assert!(known.contains(s.name.as_str()), "unknown span {:?}", s.name);
            if let Some(p) = s.parent {
                assert!(ids.contains(&p), "trace {trace_id}: dangling parent {p}");
                assert!(p < s.span_id, "trace {trace_id}: parent opened after child");
            }
            assert!(
                s.end_ns >= s.start_ns,
                "trace {trace_id}: span {:?} closed before it opened",
                s.name
            );
        }
    }
}

/// The normalized export is byte-identical across two replays of the
/// same workload and across 1 vs 4 shards — span skeletons depend on
/// the workload alone, so CI can diff `--trace-out --trace-norm` files.
#[test]
fn normalized_trace_is_byte_identical_across_replays_and_shard_counts() {
    let (one_a, _) = traced_replay(1);
    let (one_b, _) = traced_replay(1);
    let (four, _) = traced_replay(4);
    assert!(!one_a.is_empty());
    assert_eq!(one_a, one_b, "same workload, same shards: must not drift");
    assert_eq!(
        one_a, four,
        "shard count must not leak into normalized traces"
    );
}
