//! A tour of the observability layer: drive a small serving session,
//! then read the same [`backdroid_obs::MetricsRegistry`] three ways —
//! typed lookups, the deterministic JSON renderer (what the wire-level
//! `metrics` op returns), and the Prometheus text exposition.
//!
//! Every layer of the serving stack publishes into one registry per
//! service: the store's tier counters and residency gauges, the
//! request/phase latency histograms, and (sharded) the pool's queue
//! waits. Histograms are log2-bucketed with exact sums, so means are
//! exact and p50/p90/p99 come from bucket upper bounds.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_service::{Service, ServiceConfig};

fn main() {
    let service = Service::over_benchset(
        BenchsetConfig::sized(6, 0.05),
        ServiceConfig {
            budget_bytes: 64 * 1024 * 1024,
            ..ServiceConfig::default()
        },
    );

    // A little traffic so the histograms have something to say: two
    // cold loads, a warm re-analysis, and a per-detector query.
    for id in ["0", "1", "0"] {
        service.analyze_app(id).expect("analysis");
    }
    service.query_detectors("1", &["crypto"]).expect("query");

    let snap = service.metrics().snapshot();

    // 1. Typed lookups: counters and gauges by name, histograms with
    //    exact means and bucketed quantiles.
    println!("== typed lookups ==");
    println!(
        "requests={} hits={} misses={} resident_bytes={}",
        snap.value("service_requests_total"),
        snap.value("store_hits_total"),
        snap.value("store_misses_total"),
        snap.value("store_resident_bytes"),
    );
    if let Some(h) = snap.histogram("request_miss_us") {
        println!(
            "cold loads: n={} mean={:.0} us p99<={} us",
            h.count,
            h.mean(),
            h.quantile_upper(0.99)
        );
    }
    if let Some(h) = snap.histogram("request_hit_us") {
        println!(
            "warm hits:  n={} mean={:.0} us p99<={} us",
            h.count,
            h.mean(),
            h.quantile_upper(0.99)
        );
    }

    // 2. The JSON renderer — deterministic (sorted names, nonzero
    //    buckets only), exactly what `{"id":1,"op":"metrics"}` returns
    //    over the JSONL or framed-socket transports.
    println!("\n== render_json ==");
    println!("{}", snap.render_json());

    // 3. Prometheus text exposition: `# TYPE` lines, cumulative
    //    `_bucket{le=...}` series, `_sum`/`_count` — scrapeable as-is.
    println!("\n== render_prometheus ==");
    print!("{}", snap.render_prometheus());
}
