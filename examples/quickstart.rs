//! Quickstart: build a tiny Android app in the IR, run BackDroid on it,
//! and print the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use backdroid_core::{Backdroid, BackdroidOptions, BackendChoice};
use backdroid_ir::{
    ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};

fn main() {
    // 1. Build an app: a registered activity whose onCreate() creates an
    //    AES cipher in ECB mode — the classic crypto misuse.
    let activity = ClassName::new("com.example.quickstart.MainActivity");
    let mut on_create = MethodBuilder::public(&activity, "onCreate", vec![], Type::Void);
    let mode = on_create.assign_const(backdroid_ir::Const::str("AES/ECB/PKCS5Padding"));
    on_create.invoke(InvokeExpr::call_static(
        MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        ),
        vec![Value::Local(mode)],
    ));

    let mut program = Program::new();
    program.add_class(
        ClassBuilder::new(activity.as_str())
            .extends("android.app.Activity")
            .method(on_create.build())
            .build(),
    );

    let mut manifest = Manifest::new("com.example.quickstart");
    manifest.register(Component::new(ComponentKind::Activity, activity.as_str()));

    // 2. Run BackDroid (no parameter tuning needed — §VI-A). The search
    //    backend is selectable: `Indexed` (the default) answers each
    //    search from posting lists, `LinearScan` greps the whole dump
    //    like the paper's tool — both return identical hits.
    let report = Backdroid::with_options(BackdroidOptions {
        backend: BackendChoice::Indexed,
        ..BackdroidOptions::default()
    })
    .analyze(&program, &manifest);

    // 3. Inspect the results.
    println!("analysis time: {:?}", report.analysis_time);
    println!("sink calls analyzed: {}", report.sinks_analyzed());
    println!(
        "search work: {} grep-equivalent lines (linear model), {} postings touched (indexed)",
        report.cache_stats.lines_scanned, report.cache_stats.postings_touched
    );
    for sink in &report.sink_reports {
        println!("\nsink {} at {}", sink.sink_id, sink.site_method);
        println!("  reachable from entry: {}", sink.reachable);
        for e in &sink.entries {
            println!("  entry point: {e}");
        }
        for v in &sink.param_values {
            println!("  recovered parameter: {v}");
        }
        println!("  verdict: {:?}", sink.verdict);
    }
    assert_eq!(report.vulnerable_sinks().len(), 1);
    println!("\n==> 1 vulnerable sink found, as expected.");
}
