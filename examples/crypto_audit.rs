//! Crypto audit: generate a realistic app mixing secure and insecure
//! `Cipher.getInstance` usages behind different code shapes (private
//! chains, async flows, static initializers, dead code) and audit it.
//!
//! ```sh
//! cargo run --example crypto_audit
//! ```

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::Backdroid;

fn main() {
    // An app with six crypto sinks of different shapes:
    //  * two insecure (ECB) — one behind a private chain, one inside a
    //    Runnable handed to Executor.execute (the Fig 4 shape);
    //  * three secure (GCM) behind various shapes;
    //  * one insecure but in dead code — must NOT be reported.
    let app = AppSpec::named("com.example.cryptoaudit")
        .with_scenario(Scenario::new(
            Mechanism::PrivateChain,
            SinkKind::Cipher,
            true,
        ))
        .with_scenario(Scenario::new(
            Mechanism::InterfaceRunnable,
            SinkKind::Cipher,
            true,
        ))
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::Cipher,
            false,
        ))
        .with_scenario(Scenario::new(
            Mechanism::ClinitOffPath,
            SinkKind::Cipher,
            false,
        ))
        .with_scenario(Scenario::new(Mechanism::AsyncTask, SinkKind::Cipher, false))
        .with_scenario(Scenario::new(Mechanism::DeadCode, SinkKind::Cipher, true))
        .with_filler(40, 5, 8)
        .generate();

    println!(
        "app: {} ({} classes, {} methods, {:.1} MB)",
        app.name,
        app.program.class_count(),
        app.program.method_count(),
        app.apk_size_bytes() as f64 / 1_048_576.0
    );

    let report = Backdroid::new().analyze(&app.program, &app.manifest);
    println!(
        "analyzed {} sink calls in {:?}",
        report.sinks_analyzed(),
        report.analysis_time
    );

    let mut flagged = 0;
    for sink in &report.sink_reports {
        let status = if !sink.reachable {
            "unreachable (skipped)"
        } else if sink.verdict.is_vulnerable() {
            flagged += 1;
            "VULNERABLE"
        } else {
            "ok"
        };
        println!(
            "  [{status:<22}] {} :: {}",
            sink.site_method,
            sink.param_values
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
    }
    println!(
        "\nflagged {flagged} of {} sinks; ground truth says {}",
        report.sinks_analyzed(),
        app.true_vulnerabilities()
    );
    assert_eq!(flagged, app.true_vulnerabilities());
    println!("==> detection matches ground truth.");
}
