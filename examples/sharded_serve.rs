//! Sharded serving in one sitting: a [`ShardPool`] routes protocol
//! lines to per-shard services by consistent hash, survives a shard
//! kill mid-workload, and restarts the shard **disk-warm** from the
//! shared snapshot directory — while the response stream stays
//! byte-identical to a direct, unsharded replay.
//!
//! The `backdroid-serve` binary wraps exactly this pool behind
//! `--shards N` (stdin/stdout) and `--listen tcp:…|unix:…` (the
//! length-framed socket transport).

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_service::proto::{self, workload_request_line};
use backdroid_service::shard::execute_request;
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::sync::{Arc, Mutex};

fn main() {
    // A small corpus and a Zipf-skewed trace with hot-app bursts.
    let bench = BenchsetConfig::sized(6, 0.04);
    let trace = workload::generate(WorkloadConfig {
        apps: bench.count,
        requests: 30,
        seed: 5,
        burst_permille: 250,
        ..WorkloadConfig::default()
    });
    let lines: Vec<String> = trace
        .iter()
        .enumerate()
        .map(|(i, r)| workload_request_line(i as u64, r))
        .collect();

    // Shards share one snapshot directory, so a restarted shard finds
    // its apps' images on disk.
    let snapshot_dir =
        std::env::temp_dir().join(format!("backdroid-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let factory_dir = snapshot_dir.clone();
    let pool = ShardPool::new(
        ShardPoolConfig {
            shards: 3,
            workers_per_shard: 2,
            queue_capacity: 8,
            ..ShardPoolConfig::default()
        },
        move |_| {
            Service::over_benchset(
                bench,
                ServiceConfig {
                    snapshot_dir: Some(factory_dir.clone()),
                    ..ServiceConfig::default()
                },
            )
        },
    );

    // Collect responses by sequence number — the pool answers exactly
    // once per submission, in whatever order shards finish.
    let slots: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(vec![None; lines.len()]));
    let responder: Responder = {
        let slots = Arc::clone(&slots);
        Arc::new(move |seq, response| {
            slots.lock().expect("slots poisoned")[seq as usize] =
                Some(response.expect("workload ops produce output"));
        })
    };

    // Kill shard 0 a third of the way in, restart it two thirds in: the
    // router probes past the dead shard, nothing is lost, and the
    // restarted shard comes back disk-warm.
    for (seq, line) in lines.iter().enumerate() {
        if seq == lines.len() / 3 {
            assert!(pool.kill_shard(0));
            println!("killed shard 0 mid-workload");
        }
        if seq == 2 * lines.len() / 3 {
            assert!(pool.restart_shard(0));
            println!("restarted shard 0 (snapshots make it disk-warm)");
        }
        pool.submit_line(seq as u64, line, &responder);
    }
    pool.drain();

    // The stream is byte-identical to an unsharded direct replay.
    let direct = Service::over_benchset(bench, ServiceConfig::default());
    let mut matched = 0;
    for (seq, line) in lines.iter().enumerate() {
        let req = proto::parse_request(line).expect("trace lines parse");
        let want = execute_request(&direct, &req).expect("output");
        let got = slots.lock().expect("slots poisoned")[seq]
            .clone()
            .expect("answered");
        assert_eq!(got, want, "seq {seq} diverged");
        matched += 1;
    }
    println!(
        "{matched}/{} responses byte-identical to the direct replay",
        lines.len()
    );

    let pool_stats = pool.pool_stats();
    let agg = pool.stats();
    println!(
        "pool: {} shards ({} alive), {} rerouted, {} kills, {} restarts",
        pool_stats.shards,
        pool_stats.alive,
        pool_stats.rerouted,
        pool_stats.kills,
        pool_stats.restarts
    );
    println!(
        "aggregate store: {} loads, {} hits, {} disk hits (disk-warm restarts)",
        agg.store.loads, agg.store.hits, agg.store.disk_hits
    );
    assert_eq!(pool_stats.kills, 1);
    assert_eq!(pool_stats.restarts, 1);
    assert_eq!(pool_stats.alive, 3);

    pool.shutdown();
    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
