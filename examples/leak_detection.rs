//! Privacy-leak detection — the §VII extension: trace sensitive *sources*
//! (IMEI, location) to exfiltration sinks (SMS, logs) using the same
//! targeted machinery, paying the forward analysis only for sources that
//! are actually reachable from entry points.
//!
//! ```sh
//! cargo run --example leak_detection
//! ```

use backdroid_core::{default_leak_sinks, default_sources, detect_leaks, AppArtifacts};
use backdroid_ir::{
    ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};

fn main() {
    let mut program = Program::new();
    let act = ClassName::new("com.example.leaky.MainActivity");

    // A helper that texts its argument somewhere.
    let mut exfil = MethodBuilder::public_static(&act, "report", vec![Type::string()], Type::Void);
    let data = exfil.param(0);
    let sms = exfil.local(Type::object("android.telephony.SmsManager"));
    exfil.invoke(InvokeExpr::call_virtual(
        MethodSig::new(
            "android.telephony.SmsManager",
            "sendTextMessage",
            vec![
                Type::string(),
                Type::string(),
                Type::string(),
                Type::object("android.app.PendingIntent"),
                Type::object("android.app.PendingIntent"),
            ],
            Type::Void,
        ),
        sms,
        vec![
            Value::str("+15550100"),
            Value::Const(backdroid_ir::Const::Null),
            Value::Local(data),
            Value::Const(backdroid_ir::Const::Null),
            Value::Const(backdroid_ir::Const::Null),
        ],
    ));

    // onCreate reads the IMEI and hands it to the helper; it also logs a
    // harmless constant (must NOT be reported).
    let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    let tm = on_create.local(Type::object("android.telephony.TelephonyManager"));
    let imei = on_create.invoke_assign(InvokeExpr::call_virtual(
        MethodSig::new(
            "android.telephony.TelephonyManager",
            "getDeviceId",
            vec![],
            Type::string(),
        ),
        tm,
        vec![],
    ));
    on_create.invoke(InvokeExpr::call_static(
        MethodSig::new(act.as_str(), "report", vec![Type::string()], Type::Void),
        vec![Value::Local(imei)],
    ));
    on_create.invoke(InvokeExpr::call_static(
        MethodSig::new(
            "android.util.Log",
            "d",
            vec![Type::string(), Type::string()],
            Type::Int,
        ),
        vec![Value::str("tag"), Value::str("started")],
    ));

    program.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(on_create.build())
            .method(exfil.build())
            .build(),
    );
    let mut manifest = Manifest::new("com.example.leaky");
    manifest.register(Component::new(ComponentKind::Activity, act.as_str()));

    let artifacts = AppArtifacts::new(program, manifest);
    let mut ctx = artifacts.task();
    let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());

    println!("detected {} leak(s):", leaks.len());
    for leak in &leaks {
        println!(
            "  {} --> {} at {} (stmt {})",
            leak.source_id, leak.sink_id, leak.sink_method, leak.sink_stmt
        );
        println!(
            "    path: {}",
            leak.path
                .iter()
                .map(|m| m.name().to_string())
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].source_id, "source.imei");
    assert_eq!(leaks[0].sink_id, "leak.sms");
    println!("\n==> one IMEI-to-SMS leak found; the constant log line was not flagged.");
}
