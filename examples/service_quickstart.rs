//! The serving layer in one sitting: a resident multi-app analysis
//! service over a small benchmark corpus.
//!
//! A [`Service`] keeps preprocessed app images (`AppArtifacts`) resident
//! in a byte-budgeted LRU store, so the first request for an app pays
//! the encode → disassemble → index cost and every later request — full
//! analysis, per-sink-class query, or batched multi-app — reuses the
//! warm image. Responses are a pure function of (app, requested sinks):
//! warm and cold runs report byte-identical findings.
//!
//! The `backdroid-serve` binary wraps exactly this API in a
//! line-delimited JSON protocol on stdin/stdout.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_service::{Fetch, Service, ServiceConfig};

fn main() {
    // Eight generated "modern apps"; ids are benchset indices "0".."7".
    let service = Service::over_benchset(
        BenchsetConfig::sized(8, 0.05),
        ServiceConfig {
            budget_bytes: 64 * 1024 * 1024,
            ..ServiceConfig::default()
        },
    );

    // Cold: the first request builds and caches the app image.
    let cold = service.analyze_app("3").expect("analysis");
    println!(
        "cold analyze of {} ({:?}): {} sinks analyzed, {} vulnerable",
        cold.app_name,
        cold.fetch,
        cold.report.sinks_analyzed(),
        cold.report.vulnerable_sinks().len()
    );
    assert_eq!(cold.fetch, Fetch::Miss);

    // Warm: the image is resident; only the (cached) analysis runs.
    let warm = service.analyze_app("3").expect("analysis");
    println!(
        "warm analyze of {} ({:?}): identical reports = {}",
        warm.app_name,
        warm.fetch,
        warm.report.sink_reports == cold.report.sink_reports
    );
    assert_eq!(warm.fetch, Fetch::Hit);
    assert_eq!(warm.report.sink_reports, cold.report.sink_reports);

    // Per-detector queries restrict the registry per request.
    let crypto = service.query_detectors("3", &["crypto"]).expect("query");
    let ssl = service.query_detectors("3", &["ssl"]).expect("query");
    println!(
        "detector queries on the warm image: crypto={} reports, ssl={} reports (full={})",
        crypto.report.sink_reports.len(),
        ssl.report.sink_reports.len(),
        cold.report.sink_reports.len()
    );

    // Batched multi-app request: fanned out over the store, results in
    // request order.
    let ids: Vec<String> = ["0", "1", "3", "1"].iter().map(|s| s.to_string()).collect();
    let batch = service.analyze_batch(&ids);
    for (id, result) in ids.iter().zip(&batch) {
        let a = result.as_ref().expect("batch item");
        println!(
            "  batch app {id}: {} — {} vulnerable",
            a.app_name,
            a.report.vulnerable_sinks().len()
        );
    }

    let stats = service.stats();
    println!(
        "service stats: {} requests, store {} loads / {} hits ({}/{} bytes resident, {} evictions)",
        stats.requests,
        stats.store.loads,
        stats.store.hits,
        stats.store.resident_bytes,
        service.store().budget_bytes(),
        stats.store.evictions
    );
    assert!(stats.store.resident_bytes <= service.store().budget_bytes());
}
