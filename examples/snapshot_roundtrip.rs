//! Persistence walkthrough: snapshot an analyzed app image to bytes,
//! restore it, and show the restored image answers identically — the
//! invariant the serving layer's `--snapshot-dir` disk tier depends on.
//!
//! Run with `cargo run --example snapshot_roundtrip`.

use backdroid_appgen::fixtures::{fixture_count, snapshot_fixture};
use backdroid_core::{AppArtifacts, Backdroid, BackendChoice};

fn main() {
    let tool = Backdroid::new();
    println!("snapshot round-trip over {} fixtures", fixture_count());

    let mut total_snapshot = 0u64;
    let mut total_resident = 0u64;
    for i in 0..fixture_count() {
        // Cold path: generate → encode → disassemble → index.
        let app = snapshot_fixture(i);
        let fresh = AppArtifacts::new(app.program, app.manifest);
        let fresh_report = tool.analyze_artifacts(&fresh);

        // Persist: one self-contained, versioned, checksummed buffer.
        let bytes = fresh.to_snapshot();

        // Restore: no re-parse, no re-tokenization — and the backend is
        // chosen at restore time, because one snapshot serves both.
        let restored = AppArtifacts::from_snapshot(&bytes, BackendChoice::default())
            .expect("a just-written snapshot always restores");
        let restored_report = tool.analyze_artifacts(&restored);

        assert_eq!(
            fresh_report.sink_reports, restored_report.sink_reports,
            "fixture {i}: a restored image must answer identically"
        );
        assert_eq!(
            restored.to_snapshot(),
            bytes,
            "fixture {i}: re-snapshotting is byte-identical"
        );
        total_snapshot += bytes.len() as u64;
        total_resident += fresh.estimated_bytes();
        println!(
            "  fixture {i:2}: {:6} B snapshot, {:2} sinks analyzed, {} vulnerable — identical after restore",
            bytes.len(),
            fresh_report.sinks_analyzed(),
            fresh_report.vulnerable_sinks().len(),
        );
    }
    println!(
        "all fixtures round-tripped: {:.0} KiB on disk for {:.0} KiB resident ({}% of resident size)",
        total_snapshot as f64 / 1024.0,
        total_resident as f64 / 1024.0,
        total_snapshot * 100 / total_resident.max(1),
    );

    // Corruption is a cache miss, not a crash: flip one payload byte.
    let app = snapshot_fixture(0);
    let artifacts = AppArtifacts::new(app.program, app.manifest);
    let mut bytes = artifacts.to_snapshot();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    match AppArtifacts::from_snapshot(&bytes, BackendChoice::default()) {
        Err(e) => println!("corrupted snapshot correctly rejected: {e}"),
        Ok(_) => unreachable!("checksum must catch a payload bit flip"),
    }
}
