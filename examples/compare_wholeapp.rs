//! Head-to-head on one app: BackDroid's targeted analysis vs the
//! Amandroid-style whole-app baseline — accuracy and cost.
//!
//! ```sh
//! cargo run --release --example compare_wholeapp
//! ```

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, DetectorRegistry};
use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig, Outcome};
use backdroid_wholeapp::paper_minutes;
use std::time::Instant;

fn main() {
    // A mid-sized app with one async-flow vulnerability (a baseline blind
    // spot) and one ordinary vulnerability (both tools should find it).
    let app = AppSpec::named("com.example.compare")
        .with_scenario(Scenario::new(
            Mechanism::StaticChain,
            SinkKind::Cipher,
            true,
        ))
        .with_scenario(Scenario::new(Mechanism::AsyncTask, SinkKind::Cipher, true))
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::SslVerifier,
            false,
        ))
        .with_filler(150, 6, 8)
        .generate();
    println!(
        "app: {} classes, {} methods, ground-truth vulnerabilities: {}",
        app.program.class_count(),
        app.program.method_count(),
        app.true_vulnerabilities()
    );

    // --- BackDroid ---
    let t = Instant::now();
    let bd = Backdroid::new().analyze(&app.program, &app.manifest);
    let bd_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nBackDroid : {} sinks analyzed, {} vulnerable, {bd_ms:.0} ms wall",
        bd.sinks_analyzed(),
        bd.vulnerable_sinks().len()
    );
    for v in bd.vulnerable_sinks() {
        println!("  - {} ({})", v.site_method, v.sink_id);
    }

    // --- Whole-app baseline ---
    let cfg = AmandroidConfig {
        error_injection: false,
        ..AmandroidConfig::default()
    };
    let registry = DetectorRegistry::paper();
    let t = Instant::now();
    let out = analyze(&app.name, &app.program, &app.manifest, &registry, &cfg);
    let am_ms = t.elapsed().as_secs_f64() * 1e3;
    match out {
        Outcome::Done(r) => {
            println!(
                "\nWhole-app : {} findings, {} vulnerable, {am_ms:.0} ms wall, {:.1} scaled min",
                r.findings.len(),
                r.vulnerable().len(),
                paper_minutes(r.work_units)
            );
            for f in r.vulnerable() {
                println!("  - {} ({})", f.method, f.sink_id);
            }
            println!(
                "\n==> BackDroid found {} vs whole-app {}: the AsyncTask flow is the \
                 baseline's blind spot (§VI-C).",
                bd.vulnerable_sinks().len(),
                r.vulnerable().len()
            );
        }
        Outcome::TimedOut { work_units, .. } => {
            println!(
                "\nWhole-app : TIMED OUT after {:.0} scaled min ({am_ms:.0} ms wall)",
                paper_minutes(work_units)
            );
        }
        Outcome::Error { message, .. } => println!("\nWhole-app : ERROR: {message}"),
    }
}
