//! One resident app image, many concurrent queries.
//!
//! Demonstrates the session layer: [`AppArtifacts`] is owned (no
//! lifetime parameter) and `Send + Sync`, so a single preprocessed image
//! — IR program + manifest + indexed dexdump text — can be wrapped in an
//! `Arc` and shared across threads. Each thread starts a cheap
//! per-task context with [`AppArtifacts::task`] and answers its own sink
//! query; all tasks share one search-command cache, so work one slice
//! does is free for the next.
//!
//! The same machinery powers `BackdroidOptions::intra_threads`, shown at
//! the end: the tool's own sink-task scheduler, whose reports are
//! byte-identical to a sequential run.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{
    locate_sinks, slice_sink, AppArtifacts, Backdroid, BackdroidOptions, DetectorRegistry,
    SlicerConfig,
};
use std::sync::Arc;

fn main() {
    // A multi-sink app: four independent scenarios, each ending in its
    // own security-sensitive API call.
    let app = AppSpec::named("com.example.parallel")
        .with_scenarios(vec![
            Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, true),
            Scenario::new(Mechanism::PrivateChain, SinkKind::Cipher, false),
            Scenario::new(Mechanism::LifecycleChain, SinkKind::SslVerifier, true),
            Scenario::new(Mechanism::StaticChain, SinkKind::Cipher, true),
        ])
        .with_filler(20, 4, 6)
        .generate();

    // Preprocess once: encode → disassemble → index. After this, the
    // artifacts are immutable and thread-shareable.
    let artifacts = Arc::new(AppArtifacts::new(app.program, app.manifest));
    let registry = DetectorRegistry::paper().sink_registry();

    // Locate the sink sites, then slice each one on its own thread
    // against the same Arc-shared image.
    let sites = locate_sinks(&mut artifacts.task(), &registry, false);
    println!(
        "located {} sink site(s); slicing each on its own thread",
        sites.len()
    );

    let mut results: Vec<(usize, String, bool, usize)> = std::thread::scope(|scope| {
        sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let artifacts = Arc::clone(&artifacts);
                let spec = registry.sinks()[site.spec_idx].clone();
                scope.spawn(move || {
                    let mut ctx = artifacts.task();
                    let r = slice_sink(
                        &mut ctx,
                        SlicerConfig::default(),
                        &site.method,
                        site.stmt_idx,
                        &spec,
                    );
                    (i, site.method.to_string(), r.reachable, r.ssg.units().len())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("slice worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _, _, _)| i);
    for (i, method, reachable, units) in &results {
        println!("  site {i}: {method} — reachable={reachable}, {units} SSG unit(s)");
    }
    let stats = artifacts.engine().stats();
    println!(
        "shared cache after all threads: {} commands, {} hits ({:.1}% cached)",
        stats.commands,
        stats.hits,
        100.0 * stats.rate()
    );

    // Or hand the same artifacts to the tool's own scheduler.
    let report = Backdroid::with_options(BackdroidOptions {
        intra_threads: 4,
        ..BackdroidOptions::default()
    })
    .analyze_artifacts(&artifacts);
    println!(
        "intra_threads=4 scheduler: {} sink(s) analyzed, {} vulnerable — reports identical to a sequential run",
        report.sinks_analyzed(),
        report.vulnerable_sinks().len()
    );
}
