//! SSL audit: hostname-verifier misconfiguration detection, including the
//! paper's two tricky shapes — the unregistered-component false-positive
//! trap and the subclassed-sink wrapper that needs the hierarchy-aware
//! initial search (§VI-C).
//!
//! ```sh
//! cargo run --example ssl_audit
//! ```

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, BackdroidOptions};

fn main() {
    let app = AppSpec::named("com.example.sslaudit")
        // A genuine vulnerability: ALLOW_ALL_HOSTNAME_VERIFIER reachable
        // from a lifecycle chain (field set in onCreate, used in onResume).
        .with_scenario(Scenario::new(
            Mechanism::LifecycleChain,
            SinkKind::SslVerifier,
            true,
        ))
        // The FP trap: the same misuse inside an activity that is NOT in
        // the manifest — dead from the OS's point of view.
        .with_scenario(Scenario::new(
            Mechanism::UnregisteredComponent,
            SinkKind::SslVerifier,
            true,
        ))
        // The FN shape: the sink invoked through an app subclass of
        // SSLSocketFactory.
        .with_scenario(Scenario::new(
            Mechanism::IndirectSubclassedSink,
            SinkKind::SslVerifier,
            true,
        ))
        // A safe configuration for contrast.
        .with_scenario(Scenario::new(
            Mechanism::DirectEntry,
            SinkKind::SslVerifier,
            false,
        ))
        .with_filler(30, 5, 8)
        .generate();

    println!("== default configuration (paper behaviour) ==");
    let report = Backdroid::new().analyze(&app.program, &app.manifest);
    for sink in &report.sink_reports {
        println!(
            "  reachable={:<5} vulnerable={:<5} {}",
            sink.reachable,
            sink.verdict.is_vulnerable(),
            sink.site_method
        );
    }
    let default_found = report.vulnerable_sinks().len();
    println!(
        "found {default_found} vulnerable sink(s) — the subclassed wrapper is missed \
         (the paper's §VI-C false negative), and the unregistered component is \
         correctly NOT flagged."
    );

    println!("\n== with the hierarchy-aware initial search (the proposed fix) ==");
    let fixed = Backdroid::with_options(BackdroidOptions {
        hierarchy_initial_search: true,
        ..BackdroidOptions::default()
    })
    .analyze(&app.program, &app.manifest);
    let fixed_found = fixed.vulnerable_sinks().len();
    println!("found {fixed_found} vulnerable sink(s)");
    assert_eq!(default_found, 1);
    assert_eq!(fixed_found, 2);
    println!("==> fix recovers the subclassed-sink detection without adding FPs.");
}
