//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the minimal serde surface the codebase actually uses: the [`Serialize`]
//! trait (as a marker with a tiny JSON-ish reflection hook) and its derive
//! macro. Types that derive `Serialize` today only rely on the derive
//! compiling; if a future PR needs real serialization, replace this crate
//! with the real `serde` in the workspace manifests — the API below is a
//! strict subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A data structure that can be serialized.
///
/// This shim keeps the trait object-safe and dependency-free: implementors
/// get a derived no-op implementation from `#[derive(Serialize)]`. The
/// trait intentionally carries no required methods so the derive stays
/// trivial for arbitrary field types.
pub trait Serialize {}

pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl Serialize for String {}
impl Serialize for str {}
impl Serialize for bool {}
impl Serialize for f32 {}
impl Serialize for f64 {}
impl Serialize for u8 {}
impl Serialize for u16 {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for i8 {}
impl Serialize for i16 {}
impl Serialize for i32 {}
impl Serialize for i64 {}
impl Serialize for isize {}
