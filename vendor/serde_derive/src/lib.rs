//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shim `serde` crate without
//! depending on `syn`/`quote` (unavailable offline): it scans the raw
//! token stream for the item name and generic parameters and emits a
//! marker-trait impl. Supports plain structs/enums and simple generics
//! (lifetimes and type parameters, with or without bounds).

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` / `union` keyword, skipping attributes
    // (`#[...]`) and visibility (`pub`, `pub(...)`).
    let mut name = None;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                    i += 2;
                }
                break;
            }
        }
        i += 1;
    }
    let name = match name {
        Some(n) => n,
        None => return TokenStream::new(),
    };

    // Collect generic parameter names (without bounds) if a `<...>`
    // parameter list follows the name.
    let mut decl_params: Vec<String> = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut current: Vec<String> = Vec::new();
        let mut in_bounds = false;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            decl_params.push(current.join(""));
                        }
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !current.is_empty() {
                        decl_params.push(current.join(""));
                    }
                    current.clear();
                    in_bounds = false;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => in_bounds = true,
                TokenTree::Punct(p) if p.as_char() == '=' && depth == 1 => in_bounds = true,
                tt if !in_bounds => current.push(tt.to_string()),
                _ => {}
            }
            i += 1;
        }
    }

    let generics_decl = if decl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", decl_params.join(", "))
    };
    let out = format!("impl{generics_decl} serde::Serialize for {name}{generics_decl} {{}}");
    out.parse().expect("serde_derive shim emitted invalid Rust")
}
