//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable from the build environment, so this crate
//! implements the subset of proptest 1.x the workspace's property tests
//! use, with deterministic (seeded-by-test-name) case generation and no
//! shrinking:
//!
//! * the [`Strategy`] trait with `prop_map`,
//! * [`Just`], integer [`std::ops::Range`] strategies, tuple
//!   strategies, [`prop::collection::vec`], [`prop::option::of`],
//! * `&str` strategies interpreting a character-class regex subset
//!   (`[a-z0-9]`, `{m,n}`, `?`, `*`, `+`, literals),
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros.
//!
//! Failures are ordinary panics; because every stream is derived from the
//! test's name, a failing case reproduces exactly on re-run. Set
//! `PROPTEST_CASES` to change the per-test case count (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Drives generation for one property test.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner whose stream is derived from `name` and `case`.
    pub fn new(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start + 1 >= range.end {
            range.start
        } else {
            self.rng.gen_range(range)
        }
    }
}

/// The number of cases each `proptest!` test runs (overridable via the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-block configuration, settable with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases each test in the block runs. The `PROPTEST_CASES`
    /// environment variable overrides this at run time.
    pub cases: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases as u64,
        }
    }

    /// The effective case count after the environment override.
    pub fn effective_cases(&self) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Returns a strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

/// Boxes a strategy, erasing its concrete type. Used by [`prop_oneof!`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let idx = runner.usize_in(0..self.options.len());
        self.options[idx].generate(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "generate anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Generates any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy factories grouped as in the real crate's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRunner};
        use std::ops::Range;

        /// Generates `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let len = runner.usize_in(self.size.clone());
                (0..len).map(|_| self.element.generate(runner)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRunner};

        /// Generates `Some` from the inner strategy about ¾ of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                if runner.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(runner))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies.
// ---------------------------------------------------------------------------

/// One parsed regex atom with its repetition bounds.
struct Atom {
    /// Candidate characters (singleton for a literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in it.by_ref() {
                    match d {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range: patch the previously pushed char into
                            // a full range once the upper bound arrives.
                            prev = Some('-');
                        }
                        d => {
                            if prev == Some('-') {
                                let lo = *set.last().expect("range without lower bound");
                                let hi = d;
                                set.extend(
                                    ((lo as u32 + 1)..=(hi as u32)).filter_map(char::from_u32),
                                );
                                prev = None;
                            } else {
                                set.push(d);
                                prev = Some(d);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => vec![it.next().expect("dangling escape")],
            c => vec![c],
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = runner.usize_in(atom.min..atom.max + 1);
            for _ in 0..n {
                let idx = runner.usize_in(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        self.as_str().generate(runner)
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, boxed, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRunner,
    };
}

/// Defines property tests. Each function runs a block-configurable number
/// of deterministic cases; assertion macros panic, so a failure surfaces
/// as an ordinary test failure that reproduces on re-run.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.effective_cases() {
                let runner = &mut $crate::TestRunner::new(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), runner);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Property-test assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let runner = &mut TestRunner::new("regex_subset_shapes", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(runner);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = "[A-Z][a-zA-Z0-9]{0,6}".generate(runner);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.len() <= 7);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = "[a-z]{3,5}".generate(&mut TestRunner::new("t", 7));
        let b = "[a-z]{3,5}".generate(&mut TestRunner::new("t", 7));
        assert_eq!(a, b);
        let c = "[a-z]{3,5}".generate(&mut TestRunner::new("t", 8));
        // Overwhelmingly likely to differ; equality would suggest the
        // case index is being ignored.
        assert!(a != c || a.len() >= 3);
    }

    proptest! {
        #[test]
        fn macro_round_trip(
            n in 1usize..6,
            v in prop::collection::vec(0u8..10, 1..4),
            o in prop::option::of(0u8..3),
            pick in prop_oneof![Just("x"), Just("y")],
        ) {
            prop_assert!((1..6).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b < 10));
            if let Some(k) = o {
                prop_assert!(k < 3);
            }
            prop_assert!(pick == "x" || pick == "y");
            prop_assert_eq!(1 + 1, 2);
            prop_assert_ne!(1, 2);
        }

        #[test]
        fn tuples_compose(
            (a, b) in (0u8..4, "[a-z]{1,2}".prop_map(|s| s)),
        ) {
            prop_assert!(a < 4);
            prop_assert!(!b.is_empty() && b.len() <= 2);
        }
    }
}
