//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by
//! `crates/bench/benches/*`: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Statistics are deliberately simple —
//! mean/min/max wall-clock per iteration over a fixed sample count —
//! because the repo's calibrated numbers come from the deterministic
//! work-unit harness in `backdroid-bench`, not from wall-clock. Swap in
//! the real `criterion` via the workspace manifests when registry access
//! is available; no bench source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a benchmarked
/// computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How to account setup values in [`Bencher::iter_batched`]. The shim
/// times the routine only, so the variants are behaviorally identical;
/// they exist for source compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new<S: Display, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }

    /// Times `routine` over fresh inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Benchmarks a closure with no externally provided input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    /// Ends the group. (Reports are emitted eagerly; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("bench"), &mut f);
        group.finish();
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{id:<60} (no iterations)");
            return;
        }
        let mean = bencher.total.as_secs_f64() / bencher.iters as f64;
        println!(
            "{id:<60} {:>12} /iter  ({} iters)",
            format_seconds(mean),
            bencher.iters
        );
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, n| {
            b.iter(|| {
                runs += 1;
                *n * 2
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_times_routine_per_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_batched");
        group.sample_size(4);
        let mut setups = 0u64;
        let mut routines = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", "x"), &(), |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| {
                    routines += 1;
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert_eq!(setups, 4);
        assert_eq!(routines, 4);
    }
}
