//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset the workspace uses: a seedable RNG
//! ([`rngs::StdRng`] over SplitMix64), the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`]. All output
//! is fully determined by the seed, which is exactly what the appgen
//! corpus generator wants for reproducible benchmark sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be uniformly sampled from a half-open [`Range`].
pub trait SampleUniform: Sized + Copy {
    /// Samples uniformly from `low..high` (must be non-empty).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling; bias is negligible for
                // the corpus-generation spans used here.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range, `range.start..range.end`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    ///
    /// Small, fast, passes BigCrush on 64-bit outputs, and — unlike the
    /// real `rand::rngs::StdRng` — guarantees a stable stream across
    /// versions, so generated benchmark corpora never shift under a
    /// dependency bump.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..4u8);
            assert!(u < 4);
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_negative = false;
        for _ in 0..200 {
            if rng.gen_range(-1000..1000i64) < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }
}
