//! Privacy-leak detection — the §VII extension the paper sketches:
//! "first employ on-the-fly backward analysis to determine the
//! reachability of a source API call by tracing from sources to entry
//! points, and then launch on-demand forward dataflow analysis starting
//! only for those reachable source calls to determine whether there is a
//! leak from source to sink."
//!
//! The module reuses the targeted machinery: source calls are located by
//! text search, their reachability is established by the same
//! search-driven backward walk the sink analysis uses, and only reachable
//! sources pay for a forward taint propagation into leak sinks.

use crate::context::TaskContext;
use crate::loops::{LoopKind, PathGuard};
use crate::sinks::SinkSpec;
use crate::slicer::{slice_sink, SlicerConfig};
use backdroid_ir::{LocalId, MethodSig, Place, Rvalue, Stmt, Type, Value};
use backdroid_search::SearchCmd;
use std::collections::BTreeSet;

/// A privacy source: a platform API whose *result* is sensitive.
#[derive(Clone, PartialEq, Debug)]
pub struct SourceSpec {
    /// Stable identifier (`source.imei`, `source.location`, …).
    pub id: &'static str,
    /// The platform API signature.
    pub api: MethodSig,
}

/// A leak sink: a platform API that exfiltrates tainted arguments.
#[derive(Clone, PartialEq, Debug)]
pub struct LeakSinkSpec {
    /// Stable identifier (`leak.sms`, `leak.log`, …).
    pub id: &'static str,
    /// Platform class of the API.
    pub class: &'static str,
    /// Method name (any overload).
    pub name: &'static str,
}

/// The default privacy sources (the classic FlowDroid set).
pub fn default_sources() -> Vec<SourceSpec> {
    vec![
        SourceSpec {
            id: "source.imei",
            api: MethodSig::new(
                "android.telephony.TelephonyManager",
                "getDeviceId",
                vec![],
                Type::string(),
            ),
        },
        SourceSpec {
            id: "source.line1",
            api: MethodSig::new(
                "android.telephony.TelephonyManager",
                "getLine1Number",
                vec![],
                Type::string(),
            ),
        },
        SourceSpec {
            id: "source.location",
            api: MethodSig::new(
                "android.location.LocationManager",
                "getLastKnownLocation",
                vec![Type::string()],
                Type::object("android.location.Location"),
            ),
        },
    ]
}

/// The default leak sinks.
pub fn default_leak_sinks() -> Vec<LeakSinkSpec> {
    vec![
        LeakSinkSpec {
            id: "leak.sms",
            class: "android.telephony.SmsManager",
            name: "sendTextMessage",
        },
        LeakSinkSpec {
            id: "leak.log",
            class: "android.util.Log",
            name: "d",
        },
        LeakSinkSpec {
            id: "leak.http",
            class: "java.net.URL",
            name: "openConnection",
        },
        LeakSinkSpec {
            id: "leak.stream",
            class: "java.io.OutputStream",
            name: "write",
        },
    ]
}

/// One detected source→sink leak.
#[derive(Clone, PartialEq, Debug)]
pub struct Leak {
    /// The source id.
    pub source_id: &'static str,
    /// The method containing the source call.
    pub source_method: MethodSig,
    /// The leak-sink id.
    pub sink_id: &'static str,
    /// The method containing the leaking call.
    pub sink_method: MethodSig,
    /// Statement index of the leaking call.
    pub sink_stmt: usize,
    /// The forward taint path (methods traversed, source first).
    pub path: Vec<MethodSig>,
}

/// Detects privacy leaks: locate sources by text search, check each
/// source's entry reachability backward, then forward-taint only the
/// reachable ones into leak sinks.
pub fn detect_leaks(
    ctx: &mut TaskContext<'_>,
    sources: &[SourceSpec],
    sinks: &[LeakSinkSpec],
) -> Vec<Leak> {
    let mut leaks = Vec::new();
    for source in sources {
        // Step 1: locate source call sites by text search.
        let hits = ctx.engine.run(&SearchCmd::InvokeOf(source.api.clone()));
        for hit in hits {
            let Some(body) = ctx
                .program
                .method(&hit.method)
                .and_then(|m| m.body())
                .cloned()
            else {
                continue;
            };
            for (idx, stmt) in body.stmts().iter().enumerate() {
                let Some(ie) = stmt.invoke_expr() else {
                    continue;
                };
                if ie.callee != source.api {
                    continue;
                }
                // Step 2: on-the-fly backward reachability of the source
                // call (reuse the slicer with no tracked parameters —
                // pure control-flow backtracking).
                let probe = SinkSpec::new("leak.probe", source.api.clone(), vec![]);
                let reach = slice_sink(ctx, SlicerConfig::default(), &hit.method, idx, &probe);
                if !reach.reachable {
                    continue;
                }
                // Step 3: on-demand forward taint from the source result.
                let Stmt::Assign {
                    place: Place::Local(result),
                    ..
                } = stmt
                else {
                    continue; // result discarded: nothing can leak
                };
                let mut guard = PathGuard::new();
                guard.push(hit.method.clone());
                let mut visited = BTreeSet::new();
                forward_taint(
                    ctx,
                    source,
                    &hit.method,
                    idx + 1,
                    BTreeSet::from([*result]),
                    sinks,
                    &mut guard,
                    &mut visited,
                    &mut leaks,
                    0,
                );
            }
        }
    }
    leaks.sort_by(|a, b| {
        (a.source_id, &a.sink_method, a.sink_stmt).cmp(&(b.source_id, &b.sink_method, b.sink_stmt))
    });
    leaks.dedup();
    leaks
}

const MAX_LEAK_DEPTH: usize = 24;

/// Forward taint propagation from a source result into leak sinks,
/// stepping into app callees that receive tainted arguments.
#[allow(clippy::too_many_arguments)]
fn forward_taint(
    ctx: &mut TaskContext<'_>,
    source: &SourceSpec,
    method: &MethodSig,
    start: usize,
    mut tainted: BTreeSet<LocalId>,
    sinks: &[LeakSinkSpec],
    guard: &mut PathGuard,
    visited: &mut BTreeSet<MethodSig>,
    leaks: &mut Vec<Leak>,
    depth: usize,
) {
    if depth > MAX_LEAK_DEPTH {
        return;
    }
    let Some(body) = ctx.program.method(method).and_then(|m| m.body()).cloned() else {
        return;
    };
    for (idx, stmt) in body.stmts().iter().enumerate().skip(start) {
        match stmt {
            Stmt::Assign { place, rvalue } => {
                let flows = rvalue.operand_locals().iter().any(|l| tainted.contains(l));
                if flows {
                    if let Place::Local(d) = place {
                        tainted.insert(*d);
                    }
                }
                if let Rvalue::Invoke(ie) = rvalue {
                    check_invoke(
                        ctx, source, method, idx, ie, &tainted, sinks, guard, visited, leaks, depth,
                    );
                }
            }
            Stmt::Invoke(ie) => {
                check_invoke(
                    ctx, source, method, idx, ie, &tainted, sinks, guard, visited, leaks, depth,
                );
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_invoke(
    ctx: &mut TaskContext<'_>,
    source: &SourceSpec,
    method: &MethodSig,
    stmt_idx: usize,
    ie: &backdroid_ir::InvokeExpr,
    tainted: &BTreeSet<LocalId>,
    sinks: &[LeakSinkSpec],
    guard: &mut PathGuard,
    visited: &mut BTreeSet<MethodSig>,
    leaks: &mut Vec<Leak>,
    depth: usize,
) {
    let tainted_args: Vec<usize> = ie
        .args
        .iter()
        .enumerate()
        .filter_map(|(k, a)| match a {
            Value::Local(l) if tainted.contains(l) => Some(k),
            _ => None,
        })
        .collect();
    let base_tainted = ie.base.is_some_and(|b| tainted.contains(&b));
    if tainted_args.is_empty() && !base_tainted {
        return;
    }
    // Leak sink?
    for sink in sinks {
        if ie.callee.name() == sink.name && ie.callee.class().as_str() == sink.class {
            leaks.push(Leak {
                source_id: source.id,
                source_method: guard
                    .path()
                    .first()
                    .cloned()
                    .unwrap_or_else(|| method.clone()),
                sink_id: sink.id,
                sink_method: method.clone(),
                sink_stmt: stmt_idx,
                path: guard.path().to_vec(),
            });
            return;
        }
    }
    // Step into app callees carrying the taint.
    let resolved = if ctx.program.method(&ie.callee).is_some() {
        Some(ie.callee.clone())
    } else if ctx.program.defines(ie.callee.class()) {
        ctx.program.resolve_dispatch(ie.callee.class(), &ie.callee)
    } else {
        None
    };
    let Some(resolved) = resolved else { return };
    if visited.contains(&resolved) {
        ctx.loops.record(LoopKind::CrossForward);
        return;
    }
    if guard.would_loop(&resolved) {
        ctx.loops.record(LoopKind::InnerForward);
        return;
    }
    let Some(callee_body) = ctx.program.method(&resolved).and_then(|m| m.body()) else {
        return;
    };
    let mut callee_tainted = BTreeSet::new();
    for s in callee_body.stmts() {
        if let Stmt::Identity { local, kind } = s {
            match kind {
                backdroid_ir::IdentityKind::Param(k, _) if tainted_args.contains(k) => {
                    callee_tainted.insert(*local);
                }
                backdroid_ir::IdentityKind::This(_) if base_tainted => {
                    callee_tainted.insert(*local);
                }
                _ => {}
            }
        }
    }
    if callee_tainted.is_empty() {
        return;
    }
    visited.insert(resolved.clone());
    guard.push(resolved.clone());
    forward_taint(
        ctx,
        source,
        &resolved.clone(),
        0,
        callee_tainted,
        sinks,
        guard,
        visited,
        leaks,
        depth + 1,
    );
    guard.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, Program};
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    fn imei_source() -> MethodSig {
        MethodSig::new(
            "android.telephony.TelephonyManager",
            "getDeviceId",
            vec![],
            Type::string(),
        )
    }

    fn sms_sink() -> MethodSig {
        MethodSig::new(
            "android.telephony.SmsManager",
            "sendTextMessage",
            vec![
                Type::string(),
                Type::string(),
                Type::string(),
                Type::object("android.app.PendingIntent"),
                Type::object("android.app.PendingIntent"),
            ],
            Type::Void,
        )
    }

    /// onCreate: imei = tm.getDeviceId(); helper(imei) → sms.sendTextMessage(.., imei, ..)
    fn leaky_program(registered: bool) -> (Program, Manifest) {
        let mut p = Program::new();
        let act = ClassName::new("com.l.Main");
        let mut helper =
            MethodBuilder::public_static(&act, "exfiltrate", vec![Type::string()], Type::Void);
        let data = helper.param(0);
        let sms = helper.local(Type::object("android.telephony.SmsManager"));
        helper.invoke(InvokeExpr::call_virtual(
            sms_sink(),
            sms,
            vec![
                Value::str("+15551234"),
                Value::Const(backdroid_ir::Const::Null),
                Value::Local(data),
                Value::Const(backdroid_ir::Const::Null),
                Value::Const(backdroid_ir::Const::Null),
            ],
        ));
        let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let tm = oc.local(Type::object("android.telephony.TelephonyManager"));
        let imei = oc.invoke_assign(InvokeExpr::call_virtual(imei_source(), tm, vec![]));
        oc.invoke(InvokeExpr::call_static(
            MethodSig::new(act.as_str(), "exfiltrate", vec![Type::string()], Type::Void),
            vec![Value::Local(imei)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(oc.build())
                .method(helper.build())
                .build(),
        );
        let mut man = Manifest::new("com.l");
        if registered {
            man.register(Component::new(ComponentKind::Activity, act.as_str()));
        }
        (p, man)
    }

    #[test]
    fn imei_to_sms_leak_is_detected() {
        let (p, man) = leaky_program(true);
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        let l = &leaks[0];
        assert_eq!(l.source_id, "source.imei");
        assert_eq!(l.sink_id, "leak.sms");
        assert_eq!(l.sink_method.name(), "exfiltrate");
        assert!(l.path.iter().any(|m| m.name() == "onCreate"));
    }

    #[test]
    fn unreachable_source_is_skipped() {
        // Same code but the activity is not registered: the backward
        // reachability check prunes the source, so no forward taint runs.
        let (p, man) = leaky_program(false);
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());
        assert!(leaks.is_empty(), "{leaks:?}");
    }

    #[test]
    fn untainted_sink_calls_are_not_leaks() {
        // The SMS body is a constant, not the IMEI: no leak.
        let mut p = Program::new();
        let act = ClassName::new("com.l.Clean");
        let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let tm = oc.local(Type::object("android.telephony.TelephonyManager"));
        let _imei = oc.invoke_assign(InvokeExpr::call_virtual(imei_source(), tm, vec![]));
        let sms = oc.local(Type::object("android.telephony.SmsManager"));
        oc.invoke(InvokeExpr::call_virtual(
            sms_sink(),
            sms,
            vec![
                Value::str("+15551234"),
                Value::Const(backdroid_ir::Const::Null),
                Value::str("hello"),
                Value::Const(backdroid_ir::Const::Null),
                Value::Const(backdroid_ir::Const::Null),
            ],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(oc.build())
                .build(),
        );
        let mut man = Manifest::new("com.l");
        man.register(Component::new(ComponentKind::Activity, act.as_str()));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());
        assert!(leaks.is_empty(), "{leaks:?}");
    }

    #[test]
    fn log_sink_catches_tainted_value() {
        let mut p = Program::new();
        let act = ClassName::new("com.l.Logger");
        let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let tm = oc.local(Type::object("android.telephony.TelephonyManager"));
        let imei = oc.invoke_assign(InvokeExpr::call_virtual(imei_source(), tm, vec![]));
        oc.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "android.util.Log",
                "d",
                vec![Type::string(), Type::string()],
                Type::Int,
            ),
            vec![Value::str("tag"), Value::Local(imei)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(oc.build())
                .build(),
        );
        let mut man = Manifest::new("com.l");
        man.register(Component::new(ComponentKind::Activity, act.as_str()));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let leaks = detect_leaks(&mut ctx, &default_sources(), &default_leak_sinks());
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].sink_id, "leak.log");
    }
}
