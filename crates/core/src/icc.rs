//! Special search over Android ICC (paper §IV-D).
//!
//! ICC calls (`startService`, `startActivity`, …) pick their callee
//! dynamically from the `Intent` parameter: explicitly via a target
//! component class (`const-class`), or implicitly via an action string the
//! OS resolves. The *two-time search* greps once for the ICC calls and
//! once for the parameters, then keeps only the ICC calls whose containing
//! method satisfies both.

use crate::backtrack::{CallerEdge, EdgeKind};
use crate::context::TaskContext;
use backdroid_manifest::Component;
use backdroid_search::SearchCmd;
use std::collections::BTreeSet;

/// Runs the two-time ICC search for `component`: methods that both issue
/// an ICC call of the component's kind *and* mention the component (by
/// `const-class` for explicit ICC, or by one of its intent-filter actions
/// for implicit ICC).
pub fn icc_callers(ctx: &mut TaskContext<'_>, component: &Component) -> Vec<CallerEdge> {
    // First search: ICC calls of the right kind.
    let mut icc_hits = Vec::new();
    for api in component.kind().icc_apis() {
        icc_hits.extend(ctx.engine.run(&SearchCmd::MethodNameCall(api.to_string())));
    }
    if icc_hits.is_empty() {
        return Vec::new();
    }

    // Second search: ICC parameters — explicit (const-class) and implicit
    // (action strings).
    let mut param_methods = BTreeSet::new();
    for hit in ctx
        .engine
        .run(&SearchCmd::ConstClass(component.class().clone()))
    {
        param_methods.insert(hit.method);
    }
    for action in component.actions() {
        for hit in ctx.engine.run(&SearchCmd::ConstString(action.clone())) {
            param_methods.insert(hit.method);
        }
    }

    // Merge: an ICC call is the caller only if its method satisfies both.
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for hit in icc_hits {
        if !param_methods.contains(&hit.method) {
            continue;
        }
        if !seen.insert(hit.method.clone()) {
            continue;
        }
        out.push(CallerEdge {
            caller: hit.method.clone(),
            site_stmt: None,
            via_chain: Vec::new(),
            kind: EdgeKind::Icc,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{
        ClassBuilder, ClassName, Const, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value,
    };
    use backdroid_manifest::{ComponentKind, Manifest};

    /// An app where MainActivity starts HttpServerService explicitly
    /// (const-class Intent) and another method starts something by action
    /// string only.
    fn icc_program() -> (Program, Manifest) {
        let mut p = Program::new();
        let svc = ClassName::new("com.lge.app1.fota.HttpServerService");
        let mut on_start = MethodBuilder::public(&svc, "onStartCommand", vec![], Type::Void);
        on_start.ret_void();
        p.add_class(
            ClassBuilder::new(svc.as_str())
                .extends("android.app.Service")
                .method(on_start.build())
                .build(),
        );

        let act = ClassName::new("com.lge.app1.MainActivity");
        let mut launch = MethodBuilder::public(&act, "launchServer", vec![], Type::Void);
        // Intent i = new Intent(this, HttpServerService.class)
        let cls = launch.assign_const(Const::Class(svc.clone()));
        let this = launch.this();
        let intent = launch.new_object(
            "android.content.Intent",
            vec![
                Type::object("android.content.Context"),
                Type::object("java.lang.Class"),
            ],
            vec![Value::Local(this), Value::Local(cls)],
        );
        launch.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "android.content.Context",
                "startService",
                vec![Type::object("android.content.Intent")],
                Type::object("android.content.ComponentName"),
            ),
            this,
            vec![Value::Local(intent)],
        ));
        // A second method issues an unrelated startService with no
        // matching parameter: must not match.
        let mut other = MethodBuilder::public(&act, "launchOther", vec![], Type::Void);
        let this2 = other.this();
        let intent2 = other.new_object("android.content.Intent", vec![], vec![]);
        other.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "android.content.Context",
                "startService",
                vec![Type::object("android.content.Intent")],
                Type::object("android.content.ComponentName"),
            ),
            this2,
            vec![Value::Local(intent2)],
        ));
        // A third method broadcasts the service's action string.
        let mut by_action = MethodBuilder::public(&act, "launchByAction", vec![], Type::Void);
        let this3 = by_action.this();
        let action = by_action.assign_const(Const::str("com.lge.app1.START_HTTP"));
        let intent3 = by_action.new_object(
            "android.content.Intent",
            vec![Type::string()],
            vec![Value::Local(action)],
        );
        by_action.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "android.content.Context",
                "startService",
                vec![Type::object("android.content.Intent")],
                Type::object("android.content.ComponentName"),
            ),
            this3,
            vec![Value::Local(intent3)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(launch.build())
                .method(other.build())
                .method(by_action.build())
                .build(),
        );

        let mut man = Manifest::new("com.lge.app1");
        man.register(backdroid_manifest::Component::new(
            ComponentKind::Activity,
            act.as_str(),
        ));
        man.register(
            backdroid_manifest::Component::new(ComponentKind::Service, svc.as_str())
                .with_action("com.lge.app1.START_HTTP"),
        );
        (p, man)
    }

    #[test]
    fn explicit_and_implicit_icc_both_match() {
        let (p, man) = icc_program();
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let component = ctx
            .manifest
            .component(&ClassName::new("com.lge.app1.fota.HttpServerService"))
            .cloned()
            .unwrap();
        let edges = icc_callers(&mut ctx, &component);
        let callers: Vec<String> = edges.iter().map(|e| e.caller.to_string()).collect();
        assert_eq!(edges.len(), 2, "{callers:?}");
        assert!(
            callers.iter().any(|c| c.contains("launchServer")),
            "explicit: {callers:?}"
        );
        assert!(
            callers.iter().any(|c| c.contains("launchByAction")),
            "implicit: {callers:?}"
        );
        assert!(
            !callers.iter().any(|c| c.contains("launchOther")),
            "ICC call without matching parameter must not merge: {callers:?}"
        );
        assert!(edges.iter().all(|e| e.kind == EdgeKind::Icc));
    }

    #[test]
    fn component_without_references_has_no_icc_caller() {
        let (p, mut man) = {
            let (p, man) = icc_program();
            (p, man)
        };
        man.register(backdroid_manifest::Component::new(
            ComponentKind::Service,
            "com.lge.app1.GhostService",
        ));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let ghost = ctx
            .manifest
            .component(&ClassName::new("com.lge.app1.GhostService"))
            .cloned()
            .unwrap();
        assert!(icc_callers(&mut ctx, &ghost).is_empty());
    }
}
