//! Java reflection resolution (paper §VII, Conclusion).
//!
//! Reflection (`Class.forName(...).getMethod("name").invoke(obj)`) hides
//! call edges from any purely syntactic search. The paper's plan — "first
//! resolve reflection parameters using our on-the-fly backtracking and
//! then directly build caller edges" — is implemented here: the engine
//! searches for `Method.invoke` call sites, backtracks the *string
//! parameters* of the `getMethod`/`forName` calls that produced the
//! receiver, and when both resolve to constants, synthesizes the caller
//! edge to the named app method.

use crate::backtrack::{CallerEdge, EdgeKind};
use crate::context::TaskContext;
use backdroid_ir::{ClassName, LocalId, MethodSig, Place, Rvalue, Stmt, Value};
use backdroid_search::SearchCmd;

/// One resolved reflective call.
#[derive(Clone, PartialEq, Debug)]
pub struct ReflectiveCall {
    /// The method containing `Method.invoke(...)`.
    pub caller: MethodSig,
    /// Statement index of the `invoke` call.
    pub invoke_stmt: usize,
    /// The resolved target class (from `Class.forName` / const-class).
    pub target_class: ClassName,
    /// The resolved target method name (from `getMethod("...")`).
    pub target_method: String,
}

/// Finds and resolves reflective call sites in the app: searches the
/// bytecode text for `Method.invoke` calls, then resolves each receiver's
/// `forName`/`getMethod` string parameters by backward scanning within the
/// containing method (constants and locally assigned strings).
pub fn resolve_reflective_calls(ctx: &mut TaskContext<'_>) -> Vec<ReflectiveCall> {
    let hits = ctx
        .engine
        .run(&SearchCmd::MethodNameCall("invoke".to_string()));
    let mut out = Vec::new();
    for hit in hits {
        let Some(body) = ctx.method(&hit.method).and_then(|m| m.body()) else {
            continue;
        };
        for (idx, stmt) in body.stmts().iter().enumerate() {
            let Some(ie) = stmt.invoke_expr() else {
                continue;
            };
            if ie.callee.name() != "invoke"
                || ie.callee.class().as_str() != "java.lang.reflect.Method"
            {
                continue;
            }
            let Some(method_obj) = ie.base else { continue };
            // Backtrack the Method object: find `x = cls.getMethod("name")`.
            let Some((cls_local, name)) = resolve_get_method(body, idx, method_obj) else {
                continue;
            };
            // Backtrack the Class object: `cls = Class.forName("C")` or a
            // const-class literal.
            let Some(target_class) = resolve_class_local(body, idx, cls_local) else {
                continue;
            };
            out.push(ReflectiveCall {
                caller: hit.method.clone(),
                invoke_stmt: idx,
                target_class,
                target_method: name,
            });
        }
    }
    out
}

/// Synthesizes caller edges for a callee that is only invoked via
/// reflection: any resolved reflective call naming this method becomes a
/// direct edge (the paper: "directly build caller edges to cache them").
pub fn reflective_callers(ctx: &mut TaskContext<'_>, callee: &MethodSig) -> Vec<CallerEdge> {
    resolve_reflective_calls(ctx)
        .into_iter()
        .filter(|rc| &rc.target_class == callee.class() && rc.target_method == callee.name())
        .map(|rc| CallerEdge {
            caller: rc.caller,
            site_stmt: Some(rc.invoke_stmt),
            via_chain: Vec::new(),
            kind: EdgeKind::DirectCall,
        })
        .collect()
}

/// Scans backward from `before` for `local = <getMethod("name")>` on the
/// receiver, returning the class local and the constant method name.
fn resolve_get_method(
    body: &backdroid_ir::MethodBody,
    before: usize,
    method_local: LocalId,
) -> Option<(LocalId, String)> {
    for idx in (0..before).rev() {
        let Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Invoke(ie),
        } = body.stmt(idx)?
        else {
            continue;
        };
        if *l != method_local {
            continue;
        }
        if ie.callee.name() != "getMethod" && ie.callee.name() != "getDeclaredMethod" {
            return None;
        }
        let base = ie.base?;
        let name = match ie.args.first()? {
            Value::Const(backdroid_ir::Const::Str(s)) => s.clone(),
            Value::Local(nl) => resolve_string_local(body, idx, *nl)?,
            _ => return None,
        };
        return Some((base, name));
    }
    None
}

/// Scans backward for the class a local holds: `Class.forName("C")`, a
/// const-class literal, or a copy thereof.
fn resolve_class_local(
    body: &backdroid_ir::MethodBody,
    before: usize,
    cls_local: LocalId,
) -> Option<ClassName> {
    for idx in (0..before).rev() {
        let Stmt::Assign { place, rvalue } = body.stmt(idx)? else {
            continue;
        };
        if place != &Place::Local(cls_local) {
            continue;
        }
        return match rvalue {
            Rvalue::Invoke(ie) if ie.callee.name() == "forName" => match ie.args.first()? {
                Value::Const(backdroid_ir::Const::Str(s)) => Some(ClassName::new(s)),
                Value::Local(nl) => resolve_string_local(body, idx, *nl).map(ClassName::new),
                _ => None,
            },
            Rvalue::Use(Value::Const(backdroid_ir::Const::Class(c))) => Some(c.clone()),
            Rvalue::Use(Value::Local(src)) => resolve_class_local(body, idx, *src),
            _ => None,
        };
    }
    None
}

/// Scans backward for the constant string a local holds.
fn resolve_string_local(
    body: &backdroid_ir::MethodBody,
    before: usize,
    local: LocalId,
) -> Option<String> {
    for idx in (0..before).rev() {
        let Stmt::Assign { place, rvalue } = body.stmt(idx)? else {
            continue;
        };
        if place != &Place::Local(local) {
            continue;
        }
        return match rvalue {
            Rvalue::Use(Value::Const(backdroid_ir::Const::Str(s))) => Some(s.clone()),
            Rvalue::Use(Value::Local(src)) => resolve_string_local(body, idx, *src),
            _ => None,
        };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, Const, InvokeExpr, MethodBuilder, Program, Type};
    use backdroid_manifest::Manifest;

    /// Builds: onCreate() { Class c = Class.forName("com.r.Worker");
    /// Method m = c.getMethod("doWork"); m.invoke(obj); }
    fn reflective_program(via_forname: bool) -> Program {
        let mut p = Program::new();
        let worker = ClassName::new("com.r.Worker");
        let mut do_work = MethodBuilder::public(&worker, "doWork", vec![], Type::Void);
        do_work.ret_void();
        let mut ctor = MethodBuilder::constructor(&worker, vec![]);
        ctor.ret_void();
        p.add_class(
            ClassBuilder::new(worker.as_str())
                .method(do_work.build())
                .method(ctor.build())
                .build(),
        );

        let act = ClassName::new("com.r.Main");
        let mut oc = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let cls = if via_forname {
            let name = oc.assign_const(Const::str("com.r.Worker"));
            oc.invoke_assign(InvokeExpr::call_static(
                MethodSig::new(
                    "java.lang.Class",
                    "forName",
                    vec![Type::string()],
                    Type::object("java.lang.Class"),
                ),
                vec![Value::Local(name)],
            ))
        } else {
            oc.assign_const(Const::Class(worker.clone()))
        };
        let mname = oc.assign_const(Const::str("doWork"));
        let method = oc.invoke_assign(InvokeExpr::call_virtual(
            MethodSig::new(
                "java.lang.Class",
                "getMethod",
                vec![Type::string()],
                Type::object("java.lang.reflect.Method"),
            ),
            cls,
            vec![Value::Local(mname)],
        ));
        let obj = oc.new_object(worker.as_str(), vec![], vec![]);
        oc.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "java.lang.reflect.Method",
                "invoke",
                vec![Type::object("java.lang.Object")],
                Type::object("java.lang.Object"),
            ),
            method,
            vec![Value::Local(obj)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(oc.build())
                .build(),
        );
        p
    }

    #[test]
    fn forname_reflection_is_resolved() {
        let p = reflective_program(true);
        let man = Manifest::new("com.r");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let calls = resolve_reflective_calls(&mut ctx);
        assert_eq!(calls.len(), 1, "{calls:?}");
        assert_eq!(calls[0].target_class.as_str(), "com.r.Worker");
        assert_eq!(calls[0].target_method, "doWork");
        assert_eq!(calls[0].caller.name(), "onCreate");
    }

    #[test]
    fn const_class_reflection_is_resolved() {
        let p = reflective_program(false);
        let man = Manifest::new("com.r");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let calls = resolve_reflective_calls(&mut ctx);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].target_class.as_str(), "com.r.Worker");
    }

    #[test]
    fn reflective_caller_edges_are_synthesized() {
        let p = reflective_program(true);
        let man = Manifest::new("com.r");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let callee = MethodSig::new("com.r.Worker", "doWork", vec![], Type::Void);
        let edges = reflective_callers(&mut ctx, &callee);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].caller.name(), "onCreate");
        // Unrelated method gets no edge.
        let other = MethodSig::new("com.r.Worker", "otherMethod", vec![], Type::Void);
        assert!(reflective_callers(&mut ctx, &other).is_empty());
    }

    #[test]
    fn unresolvable_dynamic_names_are_skipped() {
        // The method name comes from a parameter: not resolvable.
        let mut p = Program::new();
        let act = ClassName::new("com.r.Dyn");
        let mut oc = MethodBuilder::public(&act, "run", vec![Type::string()], Type::Void);
        let dyn_name = oc.param(0);
        let cls = oc.assign_const(Const::Class(ClassName::new("com.r.Worker")));
        let method = oc.invoke_assign(InvokeExpr::call_virtual(
            MethodSig::new(
                "java.lang.Class",
                "getMethod",
                vec![Type::string()],
                Type::object("java.lang.reflect.Method"),
            ),
            cls,
            vec![Value::Local(dyn_name)],
        ));
        oc.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                "java.lang.reflect.Method",
                "invoke",
                vec![Type::object("java.lang.Object")],
                Type::object("java.lang.Object"),
            ),
            method,
            vec![Value::Const(Const::Null)],
        ));
        p.add_class(ClassBuilder::new(act.as_str()).method(oc.build()).build());
        let man = Manifest::new("com.r");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        assert!(resolve_reflective_calls(&mut ctx).is_empty());
    }
}
