//! The self-contained slicing graph (SSG) — paper §V-A.
//!
//! An SSG records, for one sink API call, everything the forward analysis
//! later needs: the raw typed statements touched by the backward slice
//! (`SsgUnit`), the inter-procedural relationships uncovered by bytecode
//! search (call/return edges), the hierarchical taint map, and a special
//! *static track* holding off-path `<clinit>` statements added on demand.

use backdroid_ir::{FieldSig, LocalId, MethodSig, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A node wrapping one raw typed statement (the paper's `SSGUnit`).
#[derive(Clone, Debug)]
pub struct SsgUnit {
    /// Node id (index into [`Ssg::units`]).
    pub id: usize,
    /// The method containing the statement.
    pub method: MethodSig,
    /// The statement index inside that method's body.
    pub stmt_idx: usize,
    /// The raw typed statement, preserved verbatim (§V-A: "reserve the raw
    /// typed bytecode statements").
    pub stmt: Stmt,
}

/// Edge labels between SSG units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SsgEdge {
    /// Intra-procedural def→use ordering.
    Intra,
    /// A calling edge uncovered by bytecode search (caller site → callee).
    Call,
    /// A return edge from a contained method back to its call site.
    Return,
}

/// The per-method taint set of the hierarchical taint map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaintSet {
    /// Tainted locals.
    pub locals: BTreeSet<LocalId>,
    /// Tainted instance fields, tracked together with their base object
    /// local so aliasing across method boundaries can be followed (§V-A).
    pub instance_fields: BTreeSet<(LocalId, FieldSig)>,
}

impl TaintSet {
    /// Whether nothing is tainted.
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty() && self.instance_fields.is_empty()
    }

    /// Taints a local.
    pub fn taint_local(&mut self, l: LocalId) {
        self.locals.insert(l);
    }

    /// Whether `l` is tainted.
    pub fn is_tainted(&self, l: LocalId) -> bool {
        self.locals.contains(&l)
    }

    /// Removes a local (strong update at its definition).
    pub fn untaint_local(&mut self, l: LocalId) {
        self.locals.remove(&l);
    }

    /// Taints `base.field`, and the base object itself so the field can be
    /// traced across aliases and method boundaries (§V-A).
    pub fn taint_instance_field(&mut self, base: LocalId, field: FieldSig) {
        self.instance_fields.insert((base, field.clone()));
        self.locals.insert(base);
    }

    /// Whether any tainted instance field has this field signature.
    pub fn field_tainted(&self, field: &FieldSig) -> bool {
        self.instance_fields.iter().any(|(_, f)| f == field)
    }

    /// Untaints `base.field`; if no other tainted field remains on `base`,
    /// the base object is untainted too (the paper's two-step removal).
    pub fn untaint_instance_field(&mut self, base: LocalId, field: &FieldSig) {
        self.instance_fields
            .retain(|(b, f)| !(*b == base && f == field));
        if !self.instance_fields.iter().any(|(b, _)| *b == base) {
            self.locals.remove(&base);
        }
    }
}

/// The self-contained slicing graph for one sink API call.
#[derive(Clone, Debug)]
pub struct Ssg {
    /// The sink API this SSG tracks.
    pub sink_api: MethodSig,
    units: Vec<SsgUnit>,
    /// (from, to, label) edges.
    edges: Vec<(usize, usize, SsgEdge)>,
    /// Unit lookup by (method, stmt index).
    index: HashMap<(MethodSig, usize), usize>,
    /// Id of the sink call unit.
    sink_unit: Option<usize>,
    /// Units forming the special static (`<clinit>`) track, analyzed first
    /// by the forward phase (§V-A).
    static_track: Vec<usize>,
    /// The hierarchical taint map: one taint set per tracked method.
    taint_map: BTreeMap<MethodSig, TaintSet>,
    /// The global static-field taint set.
    static_taints: BTreeSet<FieldSig>,
    /// Static fields whose defining write was never found on-path; the
    /// off-path `<clinit>` pass consumes these (§V-A).
    unresolved_statics: BTreeSet<FieldSig>,
    /// Entry-point methods this slice reached.
    entries: Vec<MethodSig>,
}

impl Ssg {
    /// An empty SSG for one sink API.
    pub fn new(sink_api: MethodSig) -> Self {
        Ssg {
            sink_api,
            units: Vec::new(),
            edges: Vec::new(),
            index: HashMap::new(),
            sink_unit: None,
            static_track: Vec::new(),
            taint_map: BTreeMap::new(),
            static_taints: BTreeSet::new(),
            unresolved_statics: BTreeSet::new(),
            entries: Vec::new(),
        }
    }

    /// Adds (or finds) the unit for `(method, stmt_idx)`, storing the raw
    /// statement on first insertion. Returns the unit id.
    pub fn add_unit(&mut self, method: MethodSig, stmt_idx: usize, stmt: Stmt) -> usize {
        let key = (method.clone(), stmt_idx);
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.units.len();
        self.units.push(SsgUnit {
            id,
            method,
            stmt_idx,
            stmt,
        });
        self.index.insert(key, id);
        id
    }

    /// Marks a unit as the sink call site.
    pub fn set_sink_unit(&mut self, id: usize) {
        assert!(id < self.units.len(), "sink unit out of range");
        self.sink_unit = Some(id);
    }

    /// The sink call unit, if recorded.
    pub fn sink_unit(&self) -> Option<&SsgUnit> {
        self.sink_unit.map(|i| &self.units[i])
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: usize, to: usize, label: SsgEdge) {
        assert!(
            from < self.units.len() && to < self.units.len(),
            "edge endpoint out of range"
        );
        if !self.edges.contains(&(from, to, label)) {
            self.edges.push((from, to, label));
        }
    }

    /// Adds a unit to the static (`<clinit>`) track.
    pub fn push_static_track(&mut self, unit: usize) {
        assert!(unit < self.units.len(), "static-track unit out of range");
        if !self.static_track.contains(&unit) {
            self.static_track.push(unit);
        }
    }

    /// All units.
    pub fn units(&self) -> &[SsgUnit] {
        &self.units
    }

    /// All edges.
    pub fn edges(&self) -> &[(usize, usize, SsgEdge)] {
        &self.edges
    }

    /// The static-track unit ids, in discovery order.
    pub fn static_track(&self) -> &[usize] {
        &self.static_track
    }

    /// Mutable access to the taint set of `method` (created on demand),
    /// organizing sets hierarchically by method signature (§V-A).
    pub fn taints_mut(&mut self, method: &MethodSig) -> &mut TaintSet {
        self.taint_map.entry(method.clone()).or_default()
    }

    /// The taint set of `method`, if it was ever tracked.
    pub fn taints(&self, method: &MethodSig) -> Option<&TaintSet> {
        self.taint_map.get(method)
    }

    /// All tracked methods in the hierarchical taint map.
    pub fn tracked_methods(&self) -> impl Iterator<Item = &MethodSig> + '_ {
        self.taint_map.keys()
    }

    /// Taints a static field globally.
    pub fn taint_static(&mut self, field: FieldSig) {
        self.static_taints.insert(field.clone());
        self.unresolved_statics.insert(field);
    }

    /// Marks a static field's defining write as found on-path.
    pub fn resolve_static(&mut self, field: &FieldSig) {
        self.unresolved_statics.remove(field);
    }

    /// Tainted static fields.
    pub fn static_taints(&self) -> &BTreeSet<FieldSig> {
        &self.static_taints
    }

    /// Static fields still lacking a defining write — input to the
    /// off-path `<clinit>` pass.
    pub fn unresolved_statics(&self) -> &BTreeSet<FieldSig> {
        &self.unresolved_statics
    }

    /// Records that the slice reached entry method `m`.
    pub fn add_entry(&mut self, m: MethodSig) {
        if !self.entries.contains(&m) {
            self.entries.push(m);
        }
    }

    /// Entry points reached by this slice.
    pub fn entries(&self) -> &[MethodSig] {
        &self.entries
    }

    /// Whether the slice reached at least one entry point (control-flow
    /// validity of the sink call).
    pub fn is_entry_reachable(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Tail units: units with no incoming intra/call edge — the starting
    /// blocks of the forward traversal (§V-B).
    pub fn tails(&self) -> Vec<usize> {
        let mut has_incoming = vec![false; self.units.len()];
        for (_, to, label) in &self.edges {
            if *label != SsgEdge::Return {
                has_incoming[*to] = true;
            }
        }
        (0..self.units.len())
            .filter(|&i| !has_incoming[i] && !self.static_track.contains(&i))
            .collect()
    }

    /// The unit id for `(method, stmt_idx)`, if present.
    pub fn unit_id(&self, method: &MethodSig, stmt_idx: usize) -> Option<usize> {
        self.index.get(&(method.clone(), stmt_idx)).copied()
    }

    /// Renders the SSG in Graphviz DOT form (as in the paper's Fig 6),
    /// with the sink unit highlighted and entry-method units shaded.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph ssg {\n  rankdir=BT;\n  node [shape=box, fontsize=9];\n");
        let entry_methods: Vec<&MethodSig> = self.entries.iter().collect();
        for u in &self.units {
            let label = format!("{}\\n{}", u.method, u.stmt).replace('"', "'");
            let mut attrs = format!("label=\"{label}\"");
            if Some(u.id) == self.sink_unit {
                attrs.push_str(", style=filled, fillcolor=palegreen");
            } else if entry_methods.iter().any(|m| **m == u.method) {
                attrs.push_str(", style=filled, fillcolor=lightgrey");
            } else if self.static_track.contains(&u.id) {
                attrs.push_str(", style=filled, fillcolor=lightyellow");
            }
            let _ = writeln!(out, "  n{} [{attrs}];", u.id);
        }
        for (from, to, label) in &self.edges {
            let style = match label {
                SsgEdge::Intra => "",
                SsgEdge::Call => " [color=blue, label=call]",
                SsgEdge::Return => " [color=red, style=dashed, label=ret]",
            };
            let _ = writeln!(out, "  n{from} -> n{to}{style};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::Type;

    fn sig(name: &str) -> MethodSig {
        MethodSig::new("com.a.B", name, vec![], Type::Void)
    }

    fn field(name: &str) -> FieldSig {
        FieldSig::new("com.a.B", name, Type::Int)
    }

    #[test]
    fn unit_dedup() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        let a = ssg.add_unit(sig("m"), 3, Stmt::Nop);
        let b = ssg.add_unit(sig("m"), 3, Stmt::Nop);
        assert_eq!(a, b);
        assert_eq!(ssg.units().len(), 1);
        assert_eq!(ssg.unit_id(&sig("m"), 3), Some(a));
        assert_eq!(ssg.unit_id(&sig("m"), 4), None);
    }

    #[test]
    fn edges_dedup_and_tails() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        let a = ssg.add_unit(sig("m"), 0, Stmt::Nop);
        let b = ssg.add_unit(sig("m"), 1, Stmt::Nop);
        ssg.add_edge(a, b, SsgEdge::Intra);
        ssg.add_edge(a, b, SsgEdge::Intra);
        assert_eq!(ssg.edges().len(), 1);
        assert_eq!(ssg.tails(), vec![a]);
    }

    #[test]
    fn taint_set_field_rules() {
        let mut t = TaintSet::default();
        let base = LocalId(2);
        t.taint_instance_field(base, field("port"));
        t.taint_instance_field(base, field("host"));
        assert!(t.is_tainted(base), "base object tainted alongside field");
        assert!(t.field_tainted(&field("port")));
        t.untaint_instance_field(base, &field("port"));
        assert!(t.is_tainted(base), "base stays while another field tainted");
        t.untaint_instance_field(base, &field("host"));
        assert!(
            !t.is_tainted(base),
            "base removed with last field (paper rule)"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn static_taint_resolution() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        ssg.taint_static(field("PORT"));
        assert_eq!(ssg.unresolved_statics().len(), 1);
        ssg.resolve_static(&field("PORT"));
        assert!(ssg.unresolved_statics().is_empty());
        assert_eq!(ssg.static_taints().len(), 1, "taint itself persists");
    }

    #[test]
    fn entries_and_reachability() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        assert!(!ssg.is_entry_reachable());
        ssg.add_entry(sig("onCreate"));
        ssg.add_entry(sig("onCreate"));
        assert_eq!(ssg.entries().len(), 1);
        assert!(ssg.is_entry_reachable());
    }

    #[test]
    fn static_track_excluded_from_tails() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        let a = ssg.add_unit(sig("<clinit>"), 0, Stmt::Nop);
        let b = ssg.add_unit(sig("m"), 0, Stmt::Nop);
        ssg.push_static_track(a);
        assert_eq!(ssg.tails(), vec![b]);
        assert_eq!(ssg.static_track(), &[a]);
    }

    #[test]
    fn dot_rendering_contains_all_units_and_edges() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        let a = ssg.add_unit(sig("m"), 0, Stmt::Nop);
        let b = ssg.add_unit(sig("onCreate"), 1, Stmt::Return(None));
        ssg.add_edge(a, b, SsgEdge::Call);
        ssg.set_sink_unit(a);
        ssg.add_entry(sig("onCreate"));
        let dot = ssg.to_dot();
        assert!(dot.contains("digraph ssg"));
        assert!(dot.contains("n0"));
        assert!(dot.contains("n1"));
        assert!(dot.contains("color=blue"));
        assert!(dot.contains("palegreen"), "sink highlighted");
        assert!(dot.contains("lightgrey"), "entry shaded");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut ssg = Ssg::new(sig("sinkApi"));
        ssg.add_edge(0, 1, SsgEdge::Intra);
    }
}

/// A per-app SSG: the union of all per-sink SSGs, with units deduplicated
/// by (method, statement). The paper's §V-A/§VI-D future-work item — "we
/// will evolve the current per-sink SSG to per-app SSG [so that] no
/// matter how many sinks there are, BackDroid only requires to generate a
/// partial-app graph once".
#[derive(Clone, Debug, Default)]
pub struct AppSsg {
    units: Vec<SsgUnit>,
    edges: Vec<(usize, usize, SsgEdge)>,
    index: HashMap<(MethodSig, usize), usize>,
    /// Unit ids of all merged sink call sites, with their sink APIs.
    sinks: Vec<(usize, MethodSig)>,
    static_track: Vec<usize>,
    entries: Vec<MethodSig>,
}

impl AppSsg {
    /// Merges per-sink SSGs into one per-app graph.
    pub fn merge<'a>(ssgs: impl IntoIterator<Item = &'a Ssg>) -> AppSsg {
        let mut app = AppSsg::default();
        for ssg in ssgs {
            // Remap this SSG's unit ids into the merged id space.
            let mut remap = Vec::with_capacity(ssg.units().len());
            for u in ssg.units() {
                let key = (u.method.clone(), u.stmt_idx);
                let id = match app.index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = app.units.len();
                        app.units.push(SsgUnit {
                            id,
                            method: u.method.clone(),
                            stmt_idx: u.stmt_idx,
                            stmt: u.stmt.clone(),
                        });
                        app.index.insert(key, id);
                        id
                    }
                };
                remap.push(id);
            }
            for &(from, to, label) in ssg.edges() {
                let e = (remap[from], remap[to], label);
                if !app.edges.contains(&e) {
                    app.edges.push(e);
                }
            }
            if let Some(sink) = ssg.sink_unit() {
                let id = remap[sink.id];
                if !app.sinks.iter().any(|(s, _)| *s == id) {
                    app.sinks.push((id, ssg.sink_api.clone()));
                }
            }
            for &u in ssg.static_track() {
                let id = remap[u];
                if !app.static_track.contains(&id) {
                    app.static_track.push(id);
                }
            }
            for e in ssg.entries() {
                if !app.entries.contains(e) {
                    app.entries.push(e.clone());
                }
            }
        }
        app
    }

    /// All merged units.
    pub fn units(&self) -> &[SsgUnit] {
        &self.units
    }

    /// All merged edges.
    pub fn edges(&self) -> &[(usize, usize, SsgEdge)] {
        &self.edges
    }

    /// The merged sink call sites (unit id, sink API).
    pub fn sinks(&self) -> &[(usize, MethodSig)] {
        &self.sinks
    }

    /// Entries reached by any contributing slice.
    pub fn entries(&self) -> &[MethodSig] {
        &self.entries
    }

    /// The merged static track.
    pub fn static_track(&self) -> &[usize] {
        &self.static_track
    }

    /// Units shared by more than one per-sink slice would be duplicated
    /// without merging; this reports how much the merge saved.
    pub fn dedup_savings(total_input_units: usize, merged: &AppSsg) -> f64 {
        if total_input_units == 0 {
            return 0.0;
        }
        1.0 - merged.units.len() as f64 / total_input_units as f64
    }
}

#[cfg(test)]
mod app_ssg_tests {
    use super::*;
    use backdroid_ir::Type;

    fn sig(name: &str) -> MethodSig {
        MethodSig::new("com.a.B", name, vec![], Type::Void)
    }

    #[test]
    fn merge_deduplicates_shared_units() {
        // Two per-sink SSGs sharing a common upstream statement.
        let mut a = Ssg::new(sig("sinkA"));
        let shared_a = a.add_unit(sig("helper"), 5, Stmt::Nop);
        let sink_a = a.add_unit(sig("m1"), 1, Stmt::Nop);
        a.add_edge(shared_a, sink_a, SsgEdge::Intra);
        a.set_sink_unit(sink_a);
        a.add_entry(sig("onCreate"));

        let mut b = Ssg::new(sig("sinkB"));
        let shared_b = b.add_unit(sig("helper"), 5, Stmt::Nop);
        let sink_b = b.add_unit(sig("m2"), 2, Stmt::Nop);
        b.add_edge(shared_b, sink_b, SsgEdge::Intra);
        b.set_sink_unit(sink_b);
        b.add_entry(sig("onCreate"));

        let merged = AppSsg::merge([&a, &b]);
        assert_eq!(merged.units().len(), 3, "shared unit deduplicated");
        assert_eq!(merged.sinks().len(), 2);
        assert_eq!(merged.entries().len(), 1);
        assert_eq!(merged.edges().len(), 2);
        let savings = AppSsg::dedup_savings(4, &merged);
        assert!((savings - 0.25).abs() < 1e-9);
    }

    #[test]
    fn merge_of_empty_iter_is_empty() {
        let merged = AppSsg::merge(std::iter::empty::<&Ssg>());
        assert!(merged.units().is_empty());
        assert!(merged.sinks().is_empty());
        assert_eq!(AppSsg::dedup_savings(0, &merged), 0.0);
    }
}
