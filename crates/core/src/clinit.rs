//! Special search over static initializers (paper §IV-C).
//!
//! A `<clinit>` is never explicitly invoked — the VM runs it when the
//! class is first used. Its reachability is therefore decided by a
//! *recursive class-use search*: find the classes that use the initializer
//! class, check whether any is a registered entry component, and repeat
//! over the users until an entry class is found or the frontier dries up.
//! Only control-flow reachability matters: `<clinit>` has no parameters,
//! so no dataflow propagates through it (§IV-C).

use crate::context::TaskContext;
use backdroid_ir::ClassName;
use std::collections::{BTreeSet, VecDeque};

/// The outcome of a `<clinit>` reachability search.
#[derive(Clone, PartialEq, Debug)]
pub struct ClinitReachability {
    /// Whether an entry component transitively uses the class.
    pub reachable: bool,
    /// The witness chain from the initializer class up to the entry class
    /// (empty when unreachable). The Heyzap example of §IV-C produces
    /// `APIClient → AdModel → HeyzapInterstitialActivity`.
    pub witness: Vec<ClassName>,
    /// How many classes the recursive search visited.
    pub classes_visited: usize,
}

/// Runs the recursive class-use reachability search for `class`'s
/// `<clinit>`.
pub fn clinit_reachable(ctx: &mut TaskContext<'_>, class: &ClassName) -> ClinitReachability {
    // BFS over the "used by" relation, tracking parents for the witness.
    let mut queue: VecDeque<ClassName> = VecDeque::from([class.clone()]);
    let mut seen: BTreeSet<ClassName> = BTreeSet::from([class.clone()]);
    let mut parent: Vec<(ClassName, ClassName)> = Vec::new(); // (child, parent-in-search)

    while let Some(cur) = queue.pop_front() {
        if ctx.manifest.is_entry_component(&cur) {
            // Rebuild the witness chain back to the initializer class.
            let mut witness = vec![cur.clone()];
            let mut node = cur;
            while let Some((_, p)) = parent.iter().find(|(c, _)| *c == node).cloned() {
                witness.push(p.clone());
                node = p;
            }
            witness.reverse();
            return ClinitReachability {
                reachable: true,
                witness,
                classes_visited: seen.len(),
            };
        }
        for user in ctx.engine.classes_using(&cur) {
            if seen.insert(user.clone()) {
                parent.push((user.clone(), cur.clone()));
                queue.push_back(user);
            }
        }
    }
    ClinitReachability {
        reachable: false,
        witness: Vec::new(),
        classes_visited: seen.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value};
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    /// The Heyzap shape of §IV-C: APIClient.<clinit> is reachable because
    /// AdModel uses APIClient, and the registered
    /// HeyzapInterstitialActivity uses AdModel.
    fn heyzap_program() -> Program {
        let mut p = Program::new();

        let api = backdroid_ir::ClassName::new("com.heyzap.internal.APIClient");
        let mut clinit = MethodBuilder::clinit(&api);
        clinit.ret_void();
        let mut get = MethodBuilder::public_static(&api, "get", vec![], Type::string());
        get.ret(Value::str("https://ads.heyzap.com"));
        p.add_class(
            ClassBuilder::new(api.as_str())
                .method(clinit.build())
                .method(get.build())
                .build(),
        );

        let model = backdroid_ir::ClassName::new("com.heyzap.house.model.AdModel");
        let mut fetch = MethodBuilder::public(&model, "fetch", vec![], Type::Void);
        fetch.invoke(InvokeExpr::call_static(
            MethodSig::new(api.as_str(), "get", vec![], Type::string()),
            vec![],
        ));
        p.add_class(
            ClassBuilder::new(model.as_str())
                .method(fetch.build())
                .build(),
        );

        let act = backdroid_ir::ClassName::new("com.heyzap.sdk.ads.HeyzapInterstitialActivity");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let m = on_create.new_object(model.as_str(), vec![], vec![]);
        on_create.invoke(InvokeExpr::call_virtual(
            MethodSig::new(model.as_str(), "fetch", vec![], Type::Void),
            m,
            vec![],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        // AdModel needs a constructor for the new_object call above.
        // (Add it to the existing class via a fresh build — simplest is a
        // separate helper class; instead re-open is not possible, so the
        // ctor was omitted: new-instance alone still references the class
        // in bytecode, which is what the search needs.)
        p
    }

    #[test]
    fn heyzap_clinit_is_reachable_with_witness() {
        let p = heyzap_program();
        let mut man = Manifest::new("com.heyzap.demo");
        man.register(Component::new(
            ComponentKind::Activity,
            "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
        ));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let r = clinit_reachable(
            &mut ctx,
            &backdroid_ir::ClassName::new("com.heyzap.internal.APIClient"),
        );
        assert!(r.reachable);
        let names: Vec<&str> = r.witness.iter().map(ClassName::as_str).collect();
        assert_eq!(
            names,
            vec![
                "com.heyzap.internal.APIClient",
                "com.heyzap.house.model.AdModel",
                "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
            ]
        );
        assert!(r.classes_visited >= 3);
    }

    #[test]
    fn unreferenced_clinit_is_unreachable() {
        let p = heyzap_program();
        // No component registered: nothing is an entry.
        let man = Manifest::new("com.heyzap.demo");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let r = clinit_reachable(
            &mut ctx,
            &backdroid_ir::ClassName::new("com.heyzap.internal.APIClient"),
        );
        assert!(!r.reachable);
        assert!(r.witness.is_empty());
    }

    #[test]
    fn directly_registered_class_is_trivially_reachable() {
        let p = heyzap_program();
        let mut man = Manifest::new("com.heyzap.demo");
        man.register(Component::new(
            ComponentKind::Activity,
            "com.heyzap.internal.APIClient",
        ));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let r = clinit_reachable(
            &mut ctx,
            &backdroid_ir::ClassName::new("com.heyzap.internal.APIClient"),
        );
        assert!(r.reachable);
        assert_eq!(r.witness.len(), 1);
    }
}
