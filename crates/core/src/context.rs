//! The analysis session layer: the two "spaces" of Fig 2 (the bytecode
//! search space and the program analysis space) split into an owned,
//! thread-shareable [`AppArtifacts`] and a cheap per-task
//! [`TaskContext`].
//!
//! `AppArtifacts` is built **once** per app — encode to DEX, disassemble,
//! index — and has no lifetime parameter, so it can live in an `Arc` and
//! serve many concurrent queries against one resident app image (the
//! multi-tenant service shape; also what `Backdroid`'s intra-app sink
//! scheduler parallelizes over). `TaskContext` is what one analysis task
//! carries: borrowed artifacts, a cloned [`SearchEngine`] handle (clones
//! share the index, caches, and statistics), and the task's private loop
//! counters.

use crate::chunks::{chunk_key, ChunkManifest};
use crate::loops::LoopStats;
use backdroid_dex::{dump_image, dump_image_with_marks, DexImage};
use backdroid_ir::wire::{self, WireReader};
use backdroid_ir::{Class, ClassName, Method, MethodSig, Program};
use backdroid_manifest::Manifest;
use backdroid_search::{BackendChoice, BytecodeText, ClassSegment, SearchEngine, TokenCache};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

/// The IR-program half of the artifacts, restorable lazily.
///
/// A snapshot restore parks the wire-encoded program blob here along
/// with the class/method counts read from the section's count prefix,
/// so [`AppArtifacts::estimated_bytes`] answers without decoding; the
/// full decode runs once, on the first [`AppArtifacts::program`] touch.
/// Freshly-built artifacts store the program directly and never defer.
#[derive(Debug)]
struct LazyProgram {
    cell: OnceLock<Program>,
    pending: Mutex<Option<Vec<u8>>>,
    class_count: usize,
    method_count: usize,
}

impl LazyProgram {
    fn ready(program: Program) -> Self {
        let class_count = program.class_count();
        let method_count = program.method_count();
        let cell = OnceLock::new();
        cell.set(program).expect("fresh cell");
        LazyProgram {
            cell,
            pending: Mutex::new(None),
            class_count,
            method_count,
        }
    }

    fn deferred(blob: Vec<u8>, class_count: usize, method_count: usize) -> Self {
        LazyProgram {
            cell: OnceLock::new(),
            pending: Mutex::new(Some(blob)),
            class_count,
            method_count,
        }
    }

    fn get(&self) -> &Program {
        self.cell.get_or_init(|| {
            let blob = self
                .pending
                .lock()
                .expect("lazy program lock")
                .take()
                .unwrap_or_default();
            // The blob passed its section checksum at load time, so the
            // decode cannot fail on bytes a writer produced; an empty
            // program is the total fallback (same stance as the lazy
            // text sections).
            let mut r = WireReader::new(&blob);
            wire::read_program(&mut r).unwrap_or_default()
        })
    }

    fn is_materialized(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// The immutable per-app artifacts: the IR program (program analysis
/// space), the manifest, and the search engine over the indexed dexdump
/// text (bytecode search space). Owned — no lifetime parameter — and
/// `Send + Sync`, so one instance can be shared by `Arc` (or plain
/// reference inside a scope) across any number of analysis tasks.
///
/// The engine's command caches use interior mutability, but they are
/// semantically transparent: they only memoize pure functions of the
/// dump, so the artifacts behave as an immutable value.
#[derive(Debug)]
pub struct AppArtifacts {
    program: LazyProgram,
    manifest: Manifest,
    engine: SearchEngine,
    /// The per-class chunk manifest (see [`crate::chunks`]). Fresh
    /// builds compute it lazily from the program; a snapshot restore
    /// decodes it from its own section, so version diffing never
    /// forces the program decode.
    chunk_manifest: OnceLock<ChunkManifest>,
}

/// Encode → disassemble → index: the shared preprocessing step of §III,
/// used by every artifact constructor that starts from a program.
fn build_engine(program: &Program, backend: BackendChoice) -> SearchEngine {
    let image = DexImage::encode(program);
    let dump = dump_image(&image);
    SearchEngine::with_backend(BytecodeText::index(&dump), backend)
}

impl AppArtifacts {
    /// Builds the artifacts by encoding the program to DEX, disassembling
    /// it, and indexing the plaintext — the preprocessing step of §III.
    /// Uses the default search backend ([`BackendChoice::Indexed`]).
    pub fn new(program: Program, manifest: Manifest) -> Self {
        Self::with_backend(program, manifest, BackendChoice::default())
    }

    /// Builds the artifacts with an explicit search-backend choice.
    pub fn with_backend(program: Program, manifest: Manifest, backend: BackendChoice) -> Self {
        let engine = build_engine(&program, backend);
        AppArtifacts {
            program: LazyProgram::ready(program),
            manifest,
            engine,
            chunk_manifest: OnceLock::new(),
        }
    }

    /// Builds the artifacts for a **new version** of an app whose prior
    /// version's per-class token streams are cached: classes whose
    /// chunk keys appear in `cache` skip tokenization entirely, and the
    /// resulting index is **byte-identical** to a from-scratch build
    /// (one shared code path scans and replays — see
    /// [`BytecodeText::index_with_token_cache`]).
    ///
    /// Returns the artifacts, the new version's token cache (for the
    /// *next* update), and how many classes were served from `cache`.
    pub fn with_backend_cached(
        program: Program,
        manifest: Manifest,
        backend: BackendChoice,
        cache: &TokenCache,
    ) -> (Self, TokenCache, usize) {
        let image = DexImage::encode(&program);
        let (dump, marks) = dump_image_with_marks(&image);
        let segments: Vec<ClassSegment> = marks
            .iter()
            .map(|m| ClassSegment {
                key: chunk_key(program.class(&m.name).expect("mark names a program class")),
                start: m.line_start,
                end: m.line_end,
            })
            .collect();
        let (text, next_cache, reused) =
            BytecodeText::index_with_token_cache(&dump, &segments, cache);
        let artifacts = AppArtifacts {
            program: LazyProgram::ready(program),
            manifest,
            engine: SearchEngine::with_backend(text, backend),
            chunk_manifest: OnceLock::new(),
        };
        (artifacts, next_cache, reused)
    }

    /// Builds the artifacts over an already-disassembled dump (lets tests
    /// and the benchmark harness reuse a dump across runs).
    pub fn from_dump(program: Program, manifest: Manifest, dump: &str) -> Self {
        Self::from_dump_backend(program, manifest, dump, BackendChoice::default())
    }

    /// Reassembles artifacts from already-built parts — the restore path
    /// of the snapshot layer (see [`crate::snapshot`]): the text arrives
    /// fully indexed from disk, so no DEX encode, disassembly, or
    /// tokenization runs. The backend is runtime configuration, chosen
    /// by the restorer.
    pub fn from_parts(
        program: Program,
        manifest: Manifest,
        text: BytecodeText,
        backend: BackendChoice,
    ) -> Self {
        AppArtifacts {
            program: LazyProgram::ready(program),
            manifest,
            engine: SearchEngine::with_backend(text, backend),
            chunk_manifest: OnceLock::new(),
        }
    }

    /// Reassembles artifacts with the program still wire-encoded: the
    /// snapshot restore path parks the blob (plus the counts from its
    /// prefix) and decodes it only when [`AppArtifacts::program`] is
    /// first touched. `pub(crate)` — only [`crate::snapshot`] can vouch
    /// that the blob passed its checksum.
    pub(crate) fn from_deferred_parts(
        program_blob: Vec<u8>,
        class_count: usize,
        method_count: usize,
        manifest: Manifest,
        text: BytecodeText,
        backend: BackendChoice,
        chunk_manifest: ChunkManifest,
    ) -> Self {
        let cell = OnceLock::new();
        cell.set(chunk_manifest).expect("fresh cell");
        AppArtifacts {
            program: LazyProgram::deferred(program_blob, class_count, method_count),
            manifest,
            engine: SearchEngine::with_backend(text, backend),
            chunk_manifest: cell,
        }
    }

    /// Builds the artifacts over an existing dump with an explicit
    /// search-backend choice.
    pub fn from_dump_backend(
        program: Program,
        manifest: Manifest,
        dump: &str,
        backend: BackendChoice,
    ) -> Self {
        AppArtifacts {
            program: LazyProgram::ready(program),
            manifest,
            engine: SearchEngine::with_backend(BytecodeText::index(dump), backend),
            chunk_manifest: OnceLock::new(),
        }
    }

    /// The app's IR program. On a snapshot-restored image the first call
    /// decodes the parked program section; fresh builds pay nothing.
    pub fn program(&self) -> &Program {
        self.program.get()
    }

    /// Whether the IR program has been decoded. Always `true` for fresh
    /// builds; on a snapshot-restored image it flips on the first
    /// [`AppArtifacts::program`] touch. Observability for the lazy-restore
    /// tests and benchmarks.
    pub fn is_program_materialized(&self) -> bool {
        self.program.is_materialized()
    }

    /// How many of this image's lazily-restorable sections (IR program,
    /// text arena, posting-list index) are currently materialized,
    /// `0..=3`. Always `3` for fresh builds; a manifest-only snapshot
    /// restore reports `0` until first touch. This is the
    /// `lazy_sections_materialized` measure the observability layer
    /// exports and the snapshot benchmark bands.
    pub fn materialized_sections(&self) -> u64 {
        self.is_program_materialized() as u64 + self.engine.text().materialized_sections()
    }

    /// The app's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The per-class chunk manifest. Snapshot restores decode it from
    /// its own section; fresh builds compute (and memoize) it from the
    /// program on first touch.
    pub fn chunk_manifest(&self) -> &ChunkManifest {
        self.chunk_manifest
            .get_or_init(|| ChunkManifest::of_program(self.program()))
    }

    /// The shared bytecode search engine (one index + cache for every
    /// task on these artifacts).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// A deterministic estimate of this resident app image's memory
    /// footprint in bytes: the indexed dump text (the dominant term —
    /// see [`BytecodeText::resident_bytes`]) plus per-class, per-method,
    /// and per-component bookkeeping for the IR program and manifest.
    ///
    /// This is the unit the serving layer's byte-budgeted app store
    /// accounts in; it is a pure function of the app, so store eviction
    /// decisions replay identically across runs.
    pub fn estimated_bytes(&self) -> u64 {
        const PER_CLASS: u64 = 256;
        const PER_METHOD: u64 = 512;
        const PER_COMPONENT: u64 = 128;
        self.engine.text().resident_bytes()
            + self.program.class_count as u64 * PER_CLASS
            + self.program.method_count as u64 * PER_METHOD
            + self.manifest.components().count() as u64 * PER_COMPONENT
    }

    /// Starts one analysis task against these artifacts: a cheap
    /// [`TaskContext`] holding borrowed program/manifest, a cloned engine
    /// handle (shared index, caches, and statistics), and fresh loop
    /// counters. Call from as many threads as you like.
    pub fn task(&self) -> TaskContext<'_> {
        TaskContext {
            program: self.program.get(),
            manifest: &self.manifest,
            engine: self.engine.clone(),
            loops: LoopStats::default(),
            trace: None,
        }
    }
}

/// The program-side half of a sink site's dependency footprint: which
/// method bodies and class definitions one analysis actually read.
///
/// Together with the search-side [`backdroid_search::SearchTrace`] this
/// is what lets the delta analyzer prove a prior verdict unaffected by
/// a method-body-only app update: hierarchy and signature queries are
/// invariant under such updates, so only *body reads* (recorded here)
/// and *search answers* (recorded there) can change a verdict.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DepTrace {
    /// Methods whose bodies the task fetched.
    pub methods: BTreeSet<MethodSig>,
    /// Classes the task looked up wholesale (e.g. off-path `<clinit>`
    /// collection reads the class definition, then its initializer).
    pub classes: BTreeSet<ClassName>,
}

/// Everything one analysis task needs: the shared app artifacts plus the
/// task's private state (loop counters; slicer budgets travel separately
/// in [`crate::SlicerConfig`]).
///
/// Creating one is O(1) — the engine field is a handle whose clones share
/// the underlying index and caches — so the intra-app scheduler makes a
/// fresh `TaskContext` per sink task.
pub struct TaskContext<'a> {
    /// The app's IR program.
    pub program: &'a Program,
    /// The app's manifest.
    pub manifest: &'a Manifest,
    /// The bytecode search engine handle (shared index and caches).
    pub engine: SearchEngine,
    /// Loop-detection counters accumulated by this task.
    pub loops: LoopStats,
    /// Dependency recorder, set by the delta-capture scheduler for the
    /// duration of one sink site. `None` (the default) records nothing
    /// and costs nothing.
    trace: Option<Arc<Mutex<DepTrace>>>,
}

impl<'a> TaskContext<'a> {
    /// Assembles a task context from explicit parts — used by the
    /// sink-task scheduler.
    pub(crate) fn from_parts(
        program: &'a Program,
        manifest: &'a Manifest,
        engine: SearchEngine,
    ) -> Self {
        TaskContext {
            program,
            manifest,
            engine,
            loops: LoopStats::default(),
            trace: None,
        }
    }

    /// Scopes a dependency recorder to this context (delta capture).
    pub(crate) fn set_trace(&mut self, trace: Option<Arc<Mutex<DepTrace>>>) {
        self.trace = trace;
    }

    /// Looks up a method, recording the access when a dependency trace
    /// is active. Analysis passes whose results depend on method
    /// *bodies* must come through here (or [`TaskContext::class`])
    /// rather than `ctx.program` directly — the delta analyzer's
    /// verdict-reuse proof is built from exactly these records.
    pub fn method(&self, sig: &MethodSig) -> Option<&'a Method> {
        if let Some(t) = &self.trace {
            t.lock()
                .unwrap_or_else(|e| e.into_inner())
                .methods
                .insert(sig.clone());
        }
        self.program.method(sig)
    }

    /// Looks up a class definition, recording the access when a
    /// dependency trace is active (see [`TaskContext::method`]).
    pub fn class(&self, name: &ClassName) -> Option<&'a Class> {
        if let Some(t) = &self.trace {
            t.lock()
                .unwrap_or_else(|e| e.into_inner())
                .classes
                .insert(name.clone());
        }
        self.program.class(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, ClassName, MethodBuilder, Type};
    use backdroid_manifest::{Component, ComponentKind};
    use std::sync::Arc;

    fn one_class_app() -> (Program, Manifest) {
        let name = ClassName::new("com.a.Main");
        let mut m = MethodBuilder::public(&name, "onCreate", vec![], Type::Void);
        m.ret_void();
        let mut p = Program::new();
        p.add_class(ClassBuilder::new("com.a.Main").method(m.build()).build());
        let mut man = Manifest::new("com.a");
        man.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        (p, man)
    }

    #[test]
    fn artifacts_build_engine_from_program() {
        let (p, man) = one_class_app();
        let artifacts = AppArtifacts::new(p, man);
        let ctx = artifacts.task();
        assert!(ctx.engine.text().descriptors().contains("Lcom/a/Main;"));
        assert_eq!(ctx.program.method_count(), 1);
    }

    #[test]
    fn artifacts_are_owned_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<AppArtifacts>();
    }

    #[test]
    fn tasks_share_one_cache_across_threads() {
        let (p, man) = one_class_app();
        let artifacts = Arc::new(AppArtifacts::new(p, man));
        let cmd = backdroid_search::SearchCmd::MethodNameCall("onCreate".into());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let artifacts = Arc::clone(&artifacts);
                let cmd = cmd.clone();
                scope.spawn(move || {
                    let ctx = artifacts.task();
                    let _ = ctx.engine.run(&cmd);
                });
            }
        });
        let stats = artifacts.engine().stats();
        assert_eq!(stats.commands, 4);
        assert_eq!(stats.hits, 3, "single-flight: one execution, three hits");
    }

    #[test]
    fn estimated_bytes_is_deterministic_and_dominated_by_the_dump() {
        let (p, man) = one_class_app();
        let a = AppArtifacts::new(p, man);
        let estimate = a.estimated_bytes();
        assert!(estimate > a.engine().text().resident_bytes());
        let (p2, man2) = one_class_app();
        let b = AppArtifacts::new(p2, man2);
        assert_eq!(b.estimated_bytes(), estimate, "pure function of the app");
    }
}
