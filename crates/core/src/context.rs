//! Shared analysis state: the two "spaces" of Fig 2 (the bytecode search
//! space and the program analysis space) plus the manifest.

use crate::loops::LoopStats;
use backdroid_dex::{dump_image, DexImage};
use backdroid_ir::Program;
use backdroid_manifest::Manifest;
use backdroid_search::{BackendChoice, BytecodeText, SearchEngine};

/// Everything one app analysis needs: the IR program (program analysis
/// space), the search engine over the dexdump text (bytecode search
/// space), the manifest, and the per-app loop counters.
pub struct AnalysisContext<'a> {
    /// The app's IR program.
    pub program: &'a Program,
    /// The app's manifest.
    pub manifest: &'a Manifest,
    /// The bytecode search engine (owns the indexed dump text).
    pub engine: SearchEngine,
    /// Loop-detection counters accumulated across the whole app run.
    pub loops: LoopStats,
}

impl<'a> AnalysisContext<'a> {
    /// Builds a context by encoding the program to DEX, disassembling it,
    /// and indexing the plaintext — the preprocessing step of §III. Uses
    /// the default search backend ([`BackendChoice::Indexed`]).
    pub fn new(program: &'a Program, manifest: &'a Manifest) -> Self {
        Self::with_backend(program, manifest, BackendChoice::default())
    }

    /// Builds a context with an explicit search-backend choice.
    pub fn with_backend(
        program: &'a Program,
        manifest: &'a Manifest,
        backend: BackendChoice,
    ) -> Self {
        let image = DexImage::encode(program);
        let dump = dump_image(&image);
        AnalysisContext {
            program,
            manifest,
            engine: SearchEngine::with_backend(BytecodeText::index(&dump), backend),
            loops: LoopStats::default(),
        }
    }

    /// Builds a context over an already-disassembled dump (lets tests and
    /// the benchmark harness reuse a dump across runs).
    pub fn with_dump(program: &'a Program, manifest: &'a Manifest, dump: &str) -> Self {
        Self::with_dump_backend(program, manifest, dump, BackendChoice::default())
    }

    /// Builds a context over an existing dump with an explicit
    /// search-backend choice.
    pub fn with_dump_backend(
        program: &'a Program,
        manifest: &'a Manifest,
        dump: &str,
        backend: BackendChoice,
    ) -> Self {
        AnalysisContext {
            program,
            manifest,
            engine: SearchEngine::with_backend(BytecodeText::index(dump), backend),
            loops: LoopStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, ClassName, MethodBuilder, Type};
    use backdroid_manifest::{Component, ComponentKind};

    #[test]
    fn context_builds_engine_from_program() {
        let name = ClassName::new("com.a.Main");
        let mut m = MethodBuilder::public(&name, "onCreate", vec![], Type::Void);
        m.ret_void();
        let mut p = Program::new();
        p.add_class(ClassBuilder::new("com.a.Main").method(m.build()).build());
        let mut man = Manifest::new("com.a");
        man.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        let ctx = AnalysisContext::new(&p, &man);
        assert!(ctx.engine.text().descriptors().contains("Lcom/a/Main;"));
    }
}
