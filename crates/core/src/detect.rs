//! Vulnerability detectors over recovered sink parameter values.
//!
//! The evaluation's two sink-based problems (§VI-A): insecure ECB mode in
//! `Cipher.getInstance(transformation)` and the permissive
//! `ALLOW_ALL_HOSTNAME_VERIFIER` in `setHostnameVerifier(verifier)`.

use crate::forward::DataflowValue;

/// A detector verdict for one sink call.
#[derive(Clone, PartialEq, Debug)]
pub enum Verdict {
    /// The parameter value proves a misconfiguration; carries the reason.
    Vulnerable(String),
    /// The parameter value proves a safe configuration.
    Safe,
    /// The value could not be resolved to a decidable constant.
    Undetermined,
}

impl Verdict {
    /// Whether the verdict flags a vulnerability.
    pub fn is_vulnerable(&self) -> bool {
        matches!(self, Verdict::Vulnerable(_))
    }
}

/// Block ciphers that default to ECB mode when no mode is specified.
const ECB_DEFAULT_CIPHERS: &[&str] = &["AES", "DES", "DESEDE", "BLOWFISH", "RC2"];

/// Judges a `Cipher.getInstance` transformation string: explicit `/ECB/`
/// mode, or a bare block-cipher name (which defaults to ECB) \[28\], \[30\].
pub fn judge_cipher(values: &[DataflowValue]) -> Verdict {
    let Some(v) = values.first() else {
        return Verdict::Undetermined;
    };
    match v {
        DataflowValue::Str(s) => {
            let upper = s.to_uppercase();
            let mut parts = upper.split('/');
            let algo = parts.next().unwrap_or("");
            match parts.next() {
                Some(mode) => {
                    if mode == "ECB" {
                        Verdict::Vulnerable(format!("explicit ECB mode in \"{s}\""))
                    } else {
                        Verdict::Safe
                    }
                }
                None => {
                    if ECB_DEFAULT_CIPHERS.contains(&algo) {
                        Verdict::Vulnerable(format!(
                            "bare \"{s}\" defaults to ECB for block ciphers"
                        ))
                    } else {
                        Verdict::Safe
                    }
                }
            }
        }
        DataflowValue::Expr(_) | DataflowValue::Unknown => Verdict::Undetermined,
        _ => Verdict::Undetermined,
    }
}

/// Judges a `setHostnameVerifier` argument: the permissive
/// `ALLOW_ALL_HOSTNAME_VERIFIER` constant or an `AllowAllHostnameVerifier`
/// instance is vulnerable \[31\], \[33\], \[60\].
pub fn judge_verifier(values: &[DataflowValue]) -> Verdict {
    let Some(v) = values.first() else {
        return Verdict::Undetermined;
    };
    match v {
        DataflowValue::PlatformConst(f) if f.name() == "ALLOW_ALL_HOSTNAME_VERIFIER" => {
            Verdict::Vulnerable("ALLOW_ALL_HOSTNAME_VERIFIER disables hostname checks".into())
        }
        DataflowValue::PlatformConst(_) => Verdict::Safe,
        DataflowValue::Obj { class, .. } => {
            let n = class.simple_name();
            if n.contains("AllowAll") || n.contains("NullHostnameVerifier") {
                Verdict::Vulnerable(format!("permissive verifier instance {class}"))
            } else if n.contains("Strict") || n.contains("BrowserCompat") {
                Verdict::Safe
            } else {
                Verdict::Undetermined
            }
        }
        _ => Verdict::Undetermined,
    }
}

/// Judges a `new ServerSocket(port)` call: a constant port means the app
/// opens a TCP listener — the open-port exposure of \[70\] (§VI-D). Ports
/// below 1024 would not even bind on Android; flag the rest.
pub fn judge_server_socket(values: &[DataflowValue]) -> Verdict {
    match values.first() {
        Some(DataflowValue::Int(port)) if *port >= 1024 && *port <= 65535 => {
            Verdict::Vulnerable(format!("app opens TCP port {port} to the network"))
        }
        Some(DataflowValue::Int(_)) => Verdict::Safe,
        _ => Verdict::Undetermined,
    }
}

/// Judges a `new LocalServerSocket(name)` call: a constant address means
/// an exposed Unix domain socket (the misuse of \[59\], §VI-D).
pub fn judge_local_socket(values: &[DataflowValue]) -> Verdict {
    match values.first() {
        Some(DataflowValue::Str(name)) => {
            Verdict::Vulnerable(format!("exposed Unix domain socket \"{name}\""))
        }
        _ => Verdict::Undetermined,
    }
}

/// Judges `sendTextMessage(dest, .., body, ..)`: a hard-coded premium
/// short code (3–6 digits) is the classic SMS-malware pattern \[82\].
pub fn judge_sms(values: &[DataflowValue]) -> Verdict {
    match values.first() {
        Some(DataflowValue::Str(dest)) => {
            let digits = dest.trim_start_matches('+');
            if !digits.is_empty() && digits.len() <= 6 && digits.chars().all(|c| c.is_ascii_digit())
            {
                Verdict::Vulnerable(format!("SMS to hard-coded premium short code {dest}"))
            } else {
                Verdict::Safe
            }
        }
        _ => Verdict::Undetermined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassName, FieldSig, Type};

    fn s(v: &str) -> Vec<DataflowValue> {
        vec![DataflowValue::Str(v.into())]
    }

    #[test]
    fn cipher_explicit_ecb_is_vulnerable() {
        assert!(judge_cipher(&s("AES/ECB/PKCS5Padding")).is_vulnerable());
        assert!(judge_cipher(&s("DES/ECB/NoPadding")).is_vulnerable());
    }

    #[test]
    fn cipher_bare_block_cipher_defaults_to_ecb() {
        assert!(judge_cipher(&s("AES")).is_vulnerable());
        assert!(judge_cipher(&s("DESede")).is_vulnerable());
        // RSA has no ECB-default concern in this rule set.
        assert_eq!(judge_cipher(&s("RSA")), Verdict::Safe);
    }

    #[test]
    fn cipher_cbc_and_gcm_are_safe() {
        assert_eq!(judge_cipher(&s("AES/CBC/PKCS5Padding")), Verdict::Safe);
        assert_eq!(judge_cipher(&s("AES/GCM/NoPadding")), Verdict::Safe);
    }

    #[test]
    fn cipher_unknown_value_is_undetermined() {
        assert_eq!(
            judge_cipher(&[DataflowValue::Unknown]),
            Verdict::Undetermined
        );
        assert_eq!(judge_cipher(&[]), Verdict::Undetermined);
        assert_eq!(
            judge_cipher(&[DataflowValue::Expr("a + b".into())]),
            Verdict::Undetermined
        );
    }

    #[test]
    fn verifier_allow_all_constant_is_vulnerable() {
        let allow = DataflowValue::PlatformConst(FieldSig::new(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "ALLOW_ALL_HOSTNAME_VERIFIER",
            Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
        ));
        assert!(judge_verifier(&[allow]).is_vulnerable());
        let strict = DataflowValue::PlatformConst(FieldSig::new(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "STRICT_HOSTNAME_VERIFIER",
            Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
        ));
        assert_eq!(judge_verifier(&[strict]), Verdict::Safe);
    }

    #[test]
    fn verifier_instances_by_class_name() {
        let allow = DataflowValue::Obj {
            class: ClassName::new("org.apache.http.conn.ssl.AllowAllHostnameVerifier"),
            site: 0,
        };
        assert!(judge_verifier(&[allow]).is_vulnerable());
        let strict = DataflowValue::Obj {
            class: ClassName::new("org.apache.http.conn.ssl.StrictHostnameVerifier"),
            site: 0,
        };
        assert_eq!(judge_verifier(&[strict]), Verdict::Safe);
        let custom = DataflowValue::Obj {
            class: ClassName::new("com.a.MyVerifier"),
            site: 0,
        };
        assert_eq!(judge_verifier(&[custom]), Verdict::Undetermined);
    }

    #[test]
    fn registry_judge_dispatches_by_sink_id() {
        let reg = crate::DetectorRegistry::extended();
        assert!(reg
            .judge("crypto.cipher", &s("AES/ECB/PKCS5Padding"))
            .unwrap()
            .is_vulnerable());
        assert!(reg.judge("unknown.sink", &s("x")).is_err());
    }

    #[test]
    fn server_socket_ports() {
        assert!(judge_server_socket(&[DataflowValue::Int(8089)]).is_vulnerable());
        assert_eq!(
            judge_server_socket(&[DataflowValue::Int(80)]),
            Verdict::Safe
        );
        assert_eq!(
            judge_server_socket(&[DataflowValue::Unknown]),
            Verdict::Undetermined
        );
    }

    #[test]
    fn local_socket_names() {
        assert!(judge_local_socket(&s("debug_port")).is_vulnerable());
        assert_eq!(
            judge_local_socket(&[DataflowValue::Unknown]),
            Verdict::Undetermined
        );
    }

    #[test]
    fn sms_destinations() {
        assert!(judge_sms(&s("12345")).is_vulnerable());
        assert!(judge_sms(&s("+4546")).is_vulnerable());
        assert_eq!(judge_sms(&s("+15551234567")), Verdict::Safe);
        assert_eq!(judge_sms(&[DataflowValue::Unknown]), Verdict::Undetermined);
    }
}
