//! Advanced search with forward object taint analysis (paper §IV-B).
//!
//! When the basic signature search finds nothing — super-class dispatch,
//! interface methods, callbacks, asynchronous flows — the advanced search
//! (1) locates the callee class's object constructor(s) via the accurately
//! searchable `new-instance`, then (2) forward-propagates the constructed
//! object through `DefinitionStmt`/`InvokeStmt`/`ReturnStmt` until an
//! *ending method* is reached, and (3) maintains the whole call chain so
//! the later backward search follows only the flow that actually carries
//! the object.

use crate::backtrack::{CallerEdge, ChainStep, EdgeKind};
use crate::context::TaskContext;
use crate::loops::{LoopKind, PathGuard};
use backdroid_ir::{ClassName, LocalId, MethodSig, Rvalue, Stmt, Value};
use backdroid_search::SearchCmd;
use std::collections::BTreeSet;

/// Upper bound on forward-propagation recursion depth (defensive; real
/// chains in the scenarios are short).
const MAX_FORWARD_DEPTH: usize = 24;

/// Runs the advanced search for `callee`, returning one caller edge per
/// discovered flow. Each edge's `caller` is the constructor-site method
/// (the method that `new`s the callee's class) and `via_chain` records the
/// maintained call chain down to the ending method.
pub fn advanced_search(ctx: &mut TaskContext<'_>, callee: &MethodSig) -> Vec<CallerEdge> {
    let class = callee.class().clone();
    // Step 1: search the object constructor(s) — accurately locatable via
    // the signature-based search on `new-instance` (§IV-B step 1).
    let alloc_hits = ctx.engine.run(&SearchCmd::NewInstanceOf(class.clone()));
    let mut edges = Vec::new();
    for hit in alloc_hits {
        let Some(body) = ctx.method(&hit.method).and_then(|m| m.body()) else {
            continue;
        };
        // Find allocation statements of the class inside the hit method.
        let alloc_sites: Vec<(usize, LocalId)> = body
            .stmts()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Stmt::Assign {
                    place: backdroid_ir::Place::Local(l),
                    rvalue: Rvalue::New(c),
                } if c == &class => Some((i, *l)),
                _ => None,
            })
            .collect();
        for (site, local) in alloc_sites {
            let mut visited = BTreeSet::new();
            let mut chain = PathGuard::new();
            chain.push(hit.method.clone());
            let mut endings = Vec::new();
            propagate(
                ctx,
                &hit.method,
                site + 1,
                BTreeSet::from([local]),
                callee,
                &mut chain,
                &mut visited,
                &mut endings,
                0,
            );
            for ending in endings {
                edges.push(CallerEdge {
                    caller: hit.method.clone(),
                    site_stmt: Some(site),
                    via_chain: ending,
                    kind: EdgeKind::ObjectFlow,
                });
            }
        }
    }
    edges
}

/// Forward-propagates the tainted object through one method body starting
/// at `start_idx`. Appends to `endings` one completed chain per ending
/// method found. Tracks only the three statement kinds of §IV-B:
/// `DefinitionStmt`, `InvokeStmt`, and `ReturnStmt`.
#[allow(clippy::too_many_arguments)]
fn propagate(
    ctx: &mut TaskContext<'_>,
    method: &MethodSig,
    start_idx: usize,
    mut tainted: BTreeSet<LocalId>,
    target: &MethodSig,
    chain: &mut PathGuard,
    visited: &mut BTreeSet<MethodSig>,
    endings: &mut Vec<Vec<ChainStep>>,
    depth: usize,
) {
    if depth > MAX_FORWARD_DEPTH {
        return;
    }
    let Some(body) = ctx.method(method).and_then(|m| m.body()) else {
        return;
    };
    let stmts = body.stmts().to_vec();
    for (i, stmt) in stmts.iter().enumerate().skip(start_idx) {
        match stmt {
            // DefinitionStmt: plain object moves, casts, and φ merges
            // propagate the taint between locals.
            Stmt::Assign { place, rvalue } => {
                let out_local = match place {
                    backdroid_ir::Place::Local(l) => Some(*l),
                    _ => None,
                };
                let flows = match rvalue {
                    Rvalue::Use(Value::Local(s)) => tainted.contains(s),
                    Rvalue::Cast(_, Value::Local(s)) => tainted.contains(s),
                    Rvalue::Phi(inputs) => inputs.iter().any(|s| tainted.contains(s)),
                    _ => false,
                };
                if let (Some(d), true) = (out_local, flows) {
                    tainted.insert(d);
                }
                // An assigned invoke also participates as an InvokeStmt.
                if let Rvalue::Invoke(ie) = rvalue {
                    handle_invoke(
                        ctx, method, i, ie, &tainted, target, chain, visited, endings, depth,
                    );
                }
            }
            Stmt::Invoke(ie) => {
                handle_invoke(
                    ctx, method, i, ie, &tainted, target, chain, visited, endings, depth,
                );
            }
            Stmt::Return(Some(Value::Local(l))) if tainted.contains(l) => {
                // ReturnStmt: the object escapes to the caller of this
                // method; the flow continues at whoever invoked us, which
                // the enclosing recursion models (factory-style flows
                // resolve because we stepped in from the call site).
            }
            _ => {}
        }
    }
}

/// Examines one invocation carrying tainted operands: either it is the
/// ending method, or the taint steps into an app-defined callee.
#[allow(clippy::too_many_arguments)]
fn handle_invoke(
    ctx: &mut TaskContext<'_>,
    method: &MethodSig,
    stmt_idx: usize,
    ie: &backdroid_ir::InvokeExpr,
    tainted: &BTreeSet<LocalId>,
    target: &MethodSig,
    chain: &mut PathGuard,
    visited: &mut BTreeSet<MethodSig>,
    endings: &mut Vec<Vec<ChainStep>>,
    depth: usize,
) {
    let base_tainted = ie.base.is_some_and(|b| tainted.contains(&b));
    let tainted_args: Vec<usize> = ie
        .args
        .iter()
        .enumerate()
        .filter_map(|(k, a)| match a {
            Value::Local(l) if tainted.contains(l) => Some(k),
            _ => None,
        })
        .collect();
    if !base_tainted && tainted_args.is_empty() {
        return;
    }

    // Ending condition A (super-class case, §IV-B): a virtual call on the
    // tainted object whose declared sub-signature matches the target
    // callee's, dispatched through a supertype of the target's class.
    if base_tainted
        && ie.callee.same_sub_signature(target)
        && (ie.callee.class() == target.class()
            || is_supertype_of(ctx, ie.callee.class(), target.class()))
    {
        endings.push(chain_with(chain, method, stmt_idx));
        return;
    }

    // Ending condition B (interface / callback / async, §IV-B): a platform
    // API call where a tainted *parameter*'s declared type is an interface
    // (or supertype) of the target's class — e.g. the tainted Runnable
    // reaching `Executor.execute(java.lang.Runnable)`. No pre-defined flow
    // table is consulted; the interface class type is the indicator.
    let callee_is_platform =
        ie.callee.class().is_platform() && !ctx.program.defines(ie.callee.class());

    // Ending condition C (asynchronous receiver flows, §IV-B): a platform
    // method invoked *on* the tainted object through a platform supertype
    // of the target's class — `task.execute()` on an AsyncTask subclass,
    // `thread.start()` on a Thread subclass. The declared class being a
    // supertype of the target's class is the indicator.
    if callee_is_platform
        && base_tainted
        && ie.callee.class().as_str() != "java.lang.Object"
        && is_supertype_of(ctx, ie.callee.class(), target.class())
    {
        endings.push(chain_with(chain, method, stmt_idx));
        return;
    }
    if callee_is_platform {
        // The indicator is the *interface* class type (§IV-B): the tainted
        // parameter's declared type must be an interface the target's
        // class implements. `java.lang.Object` carries no signal and is
        // excluded — otherwise any logging call would end the flow.
        let target_ifaces = ctx.program.interfaces_of(target.class());
        for &k in &tainted_args {
            if let Some(param_class) = ie.callee.params().get(k).and_then(|t| t.class_name()) {
                if param_class.as_str() != "java.lang.Object" && target_ifaces.contains(param_class)
                {
                    endings.push(chain_with(chain, method, stmt_idx));
                    return;
                }
            }
        }
        // Platform call that merely consumes the object without a matching
        // interface type: not an ending; taint does not continue inside.
        return;
    }

    // Step into an app-defined callee carrying the taint (the maintained
    // call chain of §IV-B step 4).
    let resolved = resolve_app_callee(ctx, ie);
    let Some(resolved) = resolved else { return };
    if visited.contains(&resolved) {
        ctx.loops.record(LoopKind::CrossForward);
        return;
    }
    if chain.would_loop(&resolved) {
        ctx.loops.record(LoopKind::InnerForward);
        return;
    }
    let Some(callee_body) = ctx.method(&resolved).and_then(|m| m.body()) else {
        return;
    };
    // Map tainted argument positions (and receiver) to the callee's
    // identity locals.
    let mut callee_tainted = BTreeSet::new();
    for (idx, s) in callee_body.stmts().iter().enumerate() {
        let _ = idx;
        if let Stmt::Identity { local, kind } = s {
            match kind {
                backdroid_ir::IdentityKind::This(_) if base_tainted => {
                    callee_tainted.insert(*local);
                }
                backdroid_ir::IdentityKind::Param(k, _) if tainted_args.contains(k) => {
                    callee_tainted.insert(*local);
                }
                _ => {}
            }
        }
    }
    if callee_tainted.is_empty() {
        return;
    }
    visited.insert(resolved.clone());
    chain.push(resolved.clone());
    propagate(
        ctx,
        &resolved,
        0,
        callee_tainted,
        target,
        chain,
        visited,
        endings,
        depth + 1,
    );
    chain.pop();
}

/// Builds the recorded chain: the methods walked so far plus the ending
/// call site.
fn chain_with(chain: &PathGuard, ending_method: &MethodSig, site: usize) -> Vec<ChainStep> {
    let mut steps: Vec<ChainStep> = chain
        .path()
        .iter()
        .map(|m| ChainStep {
            method: m.clone(),
            site_stmt: None,
        })
        .collect();
    // Overwrite / append the ending step with its concrete call site.
    if steps.last().is_some_and(|s| &s.method == ending_method) {
        steps.last_mut().expect("non-empty").site_stmt = Some(site);
    } else {
        steps.push(ChainStep {
            method: ending_method.clone(),
            site_stmt: Some(site),
        });
    }
    steps
}

/// Whether `maybe_super` is a supertype (class or interface, app-defined
/// or platform) of `class` — platform supertypes are tracked by name via
/// the hierarchy declarations in the IR.
fn is_supertype_of(ctx: &TaskContext<'_>, maybe_super: &ClassName, class: &ClassName) -> bool {
    if maybe_super == class {
        return true;
    }
    if ctx.program.is_subtype_of(class, maybe_super) {
        return true;
    }
    ctx.program.interfaces_of(class).contains(maybe_super)
        || ctx.program.superclass_chain(class).contains(maybe_super)
}

/// Resolves an invoke to an app-defined concrete method (virtual dispatch
/// walks up the defined hierarchy).
fn resolve_app_callee(ctx: &TaskContext<'_>, ie: &backdroid_ir::InvokeExpr) -> Option<MethodSig> {
    if ctx.program.method(&ie.callee).is_some() {
        return Some(ie.callee.clone());
    }
    if ctx.program.defines(ie.callee.class()) {
        return ctx.program.resolve_dispatch(ie.callee.class(), &ie.callee);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Program, Type};
    use backdroid_manifest::Manifest;

    /// Reconstructs the paper's Fig 4 shape: an anonymous Runnable whose
    /// run() must be traced to connect() through two runInBackground
    /// wrappers ending at Executor.execute().
    fn lg_tv_shape() -> (Program, Manifest) {
        let mut p = Program::new();
        let inner = ClassName::new("com.connectsdk.service.NetcastTVService$1");
        let service = ClassName::new("com.connectsdk.service.NetcastTVService");
        let util = ClassName::new("com.connectsdk.core.Util");

        // The anonymous Runnable.
        let mut ctor = MethodBuilder::constructor(&inner, vec![Type::Object(service.clone())]);
        ctor.ret_void();
        let mut run = MethodBuilder::public(&inner, "run", vec![], Type::Void);
        run.ret_void();
        p.add_class(
            ClassBuilder::new(inner.as_str())
                .implements("java.lang.Runnable")
                .method(ctor.build())
                .method(run.build())
                .build(),
        );

        // NetcastTVService.connect() constructs the Runnable and hands it
        // to Util.runInBackground(Runnable).
        let mut connect = MethodBuilder::public(&service, "connect", vec![], Type::Void);
        let this = connect.this();
        let r11 = connect.new_object(
            inner.as_str(),
            vec![Type::Object(service.clone())],
            vec![Value::Local(this)],
        );
        connect.invoke(InvokeExpr::call_static(
            MethodSig::new(
                util.as_str(),
                "runInBackground",
                vec![Type::object("java.lang.Runnable")],
                Type::Void,
            ),
            vec![Value::Local(r11)],
        ));
        p.add_class(
            ClassBuilder::new(service.as_str())
                .method(connect.build())
                .build(),
        );

        // Util.runInBackground(Runnable) → runInBackground(Runnable, bool)
        // → Executor.execute(Runnable).
        let mut rib1 = MethodBuilder::public_static(
            &util,
            "runInBackground",
            vec![Type::object("java.lang.Runnable")],
            Type::Void,
        );
        let p0 = rib1.param(0);
        rib1.invoke(InvokeExpr::call_static(
            MethodSig::new(
                util.as_str(),
                "runInBackground",
                vec![Type::object("java.lang.Runnable"), Type::Boolean],
                Type::Void,
            ),
            vec![Value::Local(p0), Value::int(0)],
        ));
        let mut rib2 = MethodBuilder::public_static(
            &util,
            "runInBackground",
            vec![Type::object("java.lang.Runnable"), Type::Boolean],
            Type::Void,
        );
        let exec = rib2.local(Type::object("java.util.concurrent.Executor"));
        let p0 = rib2.param(0);
        rib2.invoke(InvokeExpr::call_interface(
            MethodSig::new(
                "java.util.concurrent.Executor",
                "execute",
                vec![Type::object("java.lang.Runnable")],
                Type::Void,
            ),
            exec,
            vec![Value::Local(p0)],
        ));
        p.add_class(
            ClassBuilder::new(util.as_str())
                .method(rib1.build())
                .method(rib2.build())
                .build(),
        );

        (p, Manifest::new("com.lge.app1"))
    }

    #[test]
    fn fig4_chain_is_uncovered() {
        let (p, m) = lg_tv_shape();
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let callee = MethodSig::new(
            "com.connectsdk.service.NetcastTVService$1",
            "run",
            vec![],
            Type::Void,
        );
        let edges = advanced_search(&mut ctx, &callee);
        assert_eq!(edges.len(), 1, "exactly one flow: {edges:?}");
        let e = &edges[0];
        assert_eq!(
            e.caller.to_string(),
            "<com.connectsdk.service.NetcastTVService: void connect()>"
        );
        assert_eq!(e.kind, EdgeKind::ObjectFlow);
        // Chain: connect → runInBackground(Runnable) → runInBackground(Runnable,boolean)
        let names: Vec<String> = e.via_chain.iter().map(|s| s.method.to_string()).collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert!(names[1].contains("runInBackground(java.lang.Runnable)"));
        assert!(names[2].contains("runInBackground(java.lang.Runnable,boolean)"));
        // The ending step carries the Executor.execute call site.
        assert!(e.via_chain.last().unwrap().site_stmt.is_some());
    }

    #[test]
    fn super_class_dispatch_is_found() {
        // SuperServer server = new NetcastHttpServer(); server.start();
        let mut p = Program::new();
        let sup = ClassName::new("com.x.SuperServer");
        let sub = ClassName::new("com.x.NetcastHttpServer");
        let mut s_start = MethodBuilder::public(&sup, "start", vec![], Type::Void);
        s_start.ret_void();
        let mut s_ctor = MethodBuilder::constructor(&sup, vec![]);
        s_ctor.ret_void();
        p.add_class(
            ClassBuilder::new(sup.as_str())
                .method(s_start.build())
                .method(s_ctor.build())
                .build(),
        );
        let mut b_start = MethodBuilder::public(&sub, "start", vec![], Type::Void);
        b_start.ret_void();
        let mut b_ctor = MethodBuilder::constructor(&sub, vec![]);
        b_ctor.ret_void();
        p.add_class(
            ClassBuilder::new(sub.as_str())
                .extends(sup.as_str())
                .method(b_start.build())
                .method(b_ctor.build())
                .build(),
        );
        // Caller writes through the super-class static type.
        let user = ClassName::new("com.x.User");
        let mut go = MethodBuilder::public(&user, "go", vec![], Type::Void);
        let obj = go.new_object(sub.as_str(), vec![], vec![]);
        let up = go.cast(Type::Object(sup.clone()), Value::Local(obj));
        go.invoke(InvokeExpr::call_virtual(
            MethodSig::new(sup.as_str(), "start", vec![], Type::Void),
            up,
            vec![],
        ));
        p.add_class(ClassBuilder::new(user.as_str()).method(go.build()).build());

        let m = Manifest::new("com.x");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let callee = MethodSig::new(sub.as_str(), "start", vec![], Type::Void);
        let edges = advanced_search(&mut ctx, &callee);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].caller.to_string(), "<com.x.User: void go()>");
    }

    #[test]
    fn unrelated_platform_call_is_not_an_ending() {
        // The tainted object is passed to a platform API whose parameter
        // type is unrelated to the callee class: no ending reported.
        let mut p = Program::new();
        let cls = ClassName::new("com.x.Widget");
        let mut ctor = MethodBuilder::constructor(&cls, vec![]);
        ctor.ret_void();
        let mut cb = MethodBuilder::public(&cls, "onReady", vec![], Type::Void);
        cb.ret_void();
        p.add_class(
            ClassBuilder::new(cls.as_str())
                .method(ctor.build())
                .method(cb.build())
                .build(),
        );
        let user = ClassName::new("com.x.User");
        let mut go = MethodBuilder::public(&user, "go", vec![], Type::Void);
        let w = go.new_object(cls.as_str(), vec![], vec![]);
        go.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "android.util.Log",
                "d",
                vec![Type::string(), Type::object("java.lang.Object")],
                Type::Void,
            ),
            vec![Value::str("tag"), Value::Local(w)],
        ));
        p.add_class(ClassBuilder::new(user.as_str()).method(go.build()).build());
        let m = Manifest::new("com.x");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let callee = MethodSig::new(cls.as_str(), "onReady", vec![], Type::Void);
        let edges = advanced_search(&mut ctx, &callee);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn forward_loops_are_detected_not_infinite() {
        // f(obj) calls g(obj) calls f(obj): must terminate and record a loop.
        let mut p = Program::new();
        let cls = ClassName::new("com.x.R");
        let mut ctor = MethodBuilder::constructor(&cls, vec![]);
        ctor.ret_void();
        let mut run = MethodBuilder::public(&cls, "run", vec![], Type::Void);
        run.ret_void();
        p.add_class(
            ClassBuilder::new(cls.as_str())
                .implements("java.lang.Runnable")
                .method(ctor.build())
                .method(run.build())
                .build(),
        );
        let h = ClassName::new("com.x.H");
        let obj_t = Type::Object(cls.clone());
        let mut f = MethodBuilder::public_static(&h, "f", vec![obj_t.clone()], Type::Void);
        let p0 = f.param(0);
        f.invoke(InvokeExpr::call_static(
            MethodSig::new(h.as_str(), "g", vec![obj_t.clone()], Type::Void),
            vec![Value::Local(p0)],
        ));
        let mut g = MethodBuilder::public_static(&h, "g", vec![obj_t.clone()], Type::Void);
        let p0 = g.param(0);
        g.invoke(InvokeExpr::call_static(
            MethodSig::new(h.as_str(), "f", vec![obj_t.clone()], Type::Void),
            vec![Value::Local(p0)],
        ));
        let mut top = MethodBuilder::public_static(&h, "top", vec![], Type::Void);
        let obj = top.new_object(cls.as_str(), vec![], vec![]);
        top.invoke(InvokeExpr::call_static(
            MethodSig::new(h.as_str(), "f", vec![obj_t.clone()], Type::Void),
            vec![Value::Local(obj)],
        ));
        p.add_class(
            ClassBuilder::new(h.as_str())
                .method(f.build())
                .method(g.build())
                .method(top.build())
                .build(),
        );
        let m = Manifest::new("com.x");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let callee = MethodSig::new(cls.as_str(), "run", vec![], Type::Void);
        let _ = advanced_search(&mut ctx, &callee);
        assert!(
            ctx.loops.count(LoopKind::InnerForward) + ctx.loops.count(LoopKind::CrossForward) > 0,
            "loop must be recorded: {:?}",
            ctx.loops
        );
    }
}
