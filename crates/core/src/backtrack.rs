//! Caller location — the decision core of the targeted inter-procedural
//! analysis. Given a callee method, decide *how* to search for its
//! callers (basic signature search, child-class extension, advanced
//! object-flow search, or the special `<clinit>`/ICC/lifecycle handling)
//! and return the discovered caller edges.

use crate::advanced::advanced_search;
use crate::clinit;
use crate::context::TaskContext;
use crate::icc;
use backdroid_ir::{MethodSig, Modifiers};
use backdroid_search::SearchCmd;

/// How a caller edge was discovered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Basic signature search (§IV-A).
    DirectCall,
    /// Signature search using a non-overriding child class's signature
    /// (§IV-A, "searching over a child class").
    ChildClassCall,
    /// Advanced search with forward object taint (§IV-B).
    ObjectFlow,
    /// Two-time ICC search (§IV-D).
    Icc,
    /// Lifecycle-handler domain knowledge (§IV-E).
    Lifecycle,
}

/// One step of a maintained call chain (advanced search, §IV-B step 4).
#[derive(Clone, PartialEq, Debug)]
pub struct ChainStep {
    /// The method on the chain.
    pub method: MethodSig,
    /// The call-site statement index inside that method, when known (the
    /// ending step always carries one).
    pub site_stmt: Option<usize>,
}

/// One discovered caller.
#[derive(Clone, PartialEq, Debug)]
pub struct CallerEdge {
    /// The caller method backtracking continues from.
    pub caller: MethodSig,
    /// The relevant statement index inside the caller (call site for
    /// direct edges; allocation site for object-flow edges).
    pub site_stmt: Option<usize>,
    /// The maintained call chain (object-flow edges only).
    pub via_chain: Vec<ChainStep>,
    /// Discovery mechanism.
    pub kind: EdgeKind,
}

/// The outcome of one caller-location step.
#[derive(Clone, PartialEq, Debug)]
pub enum Reached {
    /// The callee itself is an entry point (registered lifecycle handler),
    /// or a `<clinit>` proven reachable from an entry component.
    EntryPoint,
    /// Callers found; backtracking continues from each edge.
    Callers(Vec<CallerEdge>),
    /// No caller exists: dead code or an uninvoked library path.
    NoCaller,
}

/// Locates the callers of `callee` using the appropriate search mechanism.
///
/// The decision mirrors §IV:
/// 1. registered lifecycle handlers are entry points;
/// 2. `<clinit>` methods get the recursive class-use reachability search;
/// 3. *signature methods* (static / private / constructor) get the basic
///    signature search;
/// 4. other instance methods first try the signature search (plus
///    child-class signatures for non-overriding subclasses), then fall
///    back to the advanced object-flow search;
/// 5. entry methods of registered components can additionally be traced
///    across ICC to the components that start them.
pub fn find_callers(ctx: &mut TaskContext<'_>, callee: &MethodSig) -> Reached {
    // (1) Entry points.
    if ctx.manifest.is_entry_method(callee) {
        return Reached::EntryPoint;
    }

    // (2) Static initializers: never explicitly invoked; recursive search.
    if callee.is_clinit() {
        return if clinit::clinit_reachable(ctx, callee.class()).reachable {
            Reached::EntryPoint
        } else {
            Reached::NoCaller
        };
    }

    let modifiers = ctx
        .program
        .method(callee)
        .map(|m| m.modifiers())
        .unwrap_or_else(Modifiers::public);
    let is_signature_method = modifiers.is_static() || modifiers.is_private() || callee.is_init();

    // (3)/(4) basic signature search, with child-class extension.
    let mut edges = direct_search(ctx, callee, modifiers);

    // (4) fallback: advanced search for complex instance dispatch.
    if edges.is_empty() && !is_signature_method {
        edges = advanced_search(ctx, callee);
    }

    // (5) ICC: lifecycle-shaped methods on component classes can also be
    // reached via startService/startActivity even when the class is not a
    // registered entry (plugin-style components); the merged two-time
    // search finds the launching method.
    if edges.is_empty() {
        if let Some(component) = ctx.manifest.component(callee.class()) {
            edges = icc::icc_callers(ctx, component);
        }
    }

    // (6) Reflection: methods invoked only via java.lang.reflect get
    // synthesized edges from resolved Method.invoke sites (§VII).
    if edges.is_empty() {
        edges = crate::reflection::reflective_callers(ctx, callee);
    }

    if edges.is_empty() {
        Reached::NoCaller
    } else {
        Reached::Callers(edges)
    }
}

/// The basic signature-based search (§IV-A): translate the callee's
/// signature into the bytecode format and grep for its invocations; for
/// instance methods, additionally search the signatures of child classes
/// that do not override the callee.
fn direct_search(
    ctx: &mut TaskContext<'_>,
    callee: &MethodSig,
    modifiers: Modifiers,
) -> Vec<CallerEdge> {
    let mut edges = Vec::new();
    let mut add_hits = |ctx: &mut TaskContext<'_>, sig: &MethodSig, kind: EdgeKind| {
        let hits = ctx.engine.run(&SearchCmd::InvokeOf(sig.clone()));
        for hit in hits {
            // Self-recursive call sites do not produce progress; the
            // slicer's path guard would catch them anyway, but skipping
            // here avoids degenerate single-method "callers".
            if &hit.method == callee {
                continue;
            }
            let site = ctx
                .method(&hit.method)
                .and_then(|m| m.body())
                .and_then(|b| b.call_sites_of(sig).first().copied());
            edges.push(CallerEdge {
                caller: hit.method,
                site_stmt: site,
                via_chain: Vec::new(),
                kind,
            });
        }
    };

    add_hits(ctx, callee, EdgeKind::DirectCall);

    // Child-class signatures (instance methods only; a static or private
    // call site always names the declaring class).
    if !modifiers.is_static() && !modifiers.is_private() && !callee.is_init() {
        for child in ctx.program.subclasses_transitive(callee.class()) {
            let overridden = ctx
                .program
                .class(&child)
                .is_some_and(|c| c.find_method_by_sub_signature(callee).is_some());
            if overridden {
                // The child signature now names the overloaded child
                // method only (§IV-A) — skip it.
                continue;
            }
            let child_sig = callee.on_class(child);
            add_hits(ctx, &child_sig, EdgeKind::ChildClassCall);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, Program, Type};
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    fn msig(class: &str, name: &str) -> MethodSig {
        MethodSig::new(class, name, vec![], Type::Void)
    }

    /// Fig 3 shape: NetcastTVService$1.run() calls the private-ish
    /// NetcastHttpServer.start(); the signature search must find it.
    fn fig3_program() -> Program {
        let mut p = Program::new();
        let server = ClassName::new("com.connectsdk.service.netcast.NetcastHttpServer");
        let mut start = MethodBuilder::private(&server, "start", vec![], Type::Void);
        start.ret_void();
        let mut ctor = MethodBuilder::constructor(&server, vec![]);
        ctor.ret_void();
        p.add_class(
            ClassBuilder::new(server.as_str())
                .method(start.build())
                .method(ctor.build())
                .build(),
        );
        let runner = ClassName::new("com.connectsdk.service.NetcastTVService$1");
        let mut run = MethodBuilder::public(&runner, "run", vec![], Type::Void);
        let srv = run.new_object(server.as_str(), vec![], vec![]);
        run.invoke(InvokeExpr::call_virtual(
            msig(server.as_str(), "start"),
            srv,
            vec![],
        ));
        p.add_class(
            ClassBuilder::new(runner.as_str())
                .implements("java.lang.Runnable")
                .method(run.build())
                .build(),
        );
        p
    }

    #[test]
    fn basic_search_finds_private_callee_caller() {
        let p = fig3_program();
        let m = Manifest::new("com.lge.app1");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let callee = msig("com.connectsdk.service.netcast.NetcastHttpServer", "start");
        let Reached::Callers(edges) = find_callers(&mut ctx, &callee) else {
            panic!("expected callers");
        };
        assert_eq!(edges.len(), 1);
        assert_eq!(
            edges[0].caller.to_string(),
            "<com.connectsdk.service.NetcastTVService$1: void run()>"
        );
        assert_eq!(edges[0].kind, EdgeKind::DirectCall);
        assert!(edges[0].site_stmt.is_some());
    }

    #[test]
    fn entry_method_short_circuits() {
        let p = fig3_program();
        let mut m = Manifest::new("com.lge.app1");
        m.register(Component::new(
            ComponentKind::Activity,
            "com.lge.app1.MainActivity",
        ));
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let entry = msig("com.lge.app1.MainActivity", "onCreate");
        assert_eq!(find_callers(&mut ctx, &entry), Reached::EntryPoint);
    }

    #[test]
    fn dead_method_has_no_caller() {
        let p = fig3_program();
        let m = Manifest::new("com.lge.app1");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let dead = msig("com.connectsdk.service.NetcastTVService$1", "run");
        // run() is never invoked and has no constructor-site flow (the
        // class is never allocated elsewhere): no caller.
        assert_eq!(find_callers(&mut ctx, &dead), Reached::NoCaller);
    }

    /// §IV-A child-class rules: not-overridden → extra search on the child
    /// signature; overridden → no extra search.
    #[test]
    fn child_class_search_extends_signatures() {
        let mut p = Program::new();
        let base = ClassName::new("com.x.Server");
        let mut start = MethodBuilder::public(&base, "start", vec![], Type::Void);
        start.ret_void();
        p.add_class(
            ClassBuilder::new(base.as_str())
                .method(start.build())
                .build(),
        );
        // Child that does NOT override start().
        let child = ClassName::new("com.x.ChildServer");
        let mut other = MethodBuilder::public(&child, "other", vec![], Type::Void);
        other.ret_void();
        p.add_class(
            ClassBuilder::new(child.as_str())
                .extends(base.as_str())
                .method(other.build())
                .build(),
        );
        // Caller invokes start() through the child signature.
        let user = ClassName::new("com.x.User");
        let mut go = MethodBuilder::public(&user, "go", vec![], Type::Void);
        let obj = go.new_object(child.as_str(), vec![], vec![]);
        go.invoke(InvokeExpr::call_virtual(
            msig(child.as_str(), "start"),
            obj,
            vec![],
        ));
        p.add_class(ClassBuilder::new(user.as_str()).method(go.build()).build());

        let m = Manifest::new("com.x");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        let Reached::Callers(edges) = find_callers(&mut ctx, &msig(base.as_str(), "start")) else {
            panic!("expected callers");
        };
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].kind, EdgeKind::ChildClassCall);
        assert_eq!(edges[0].caller.to_string(), "<com.x.User: void go()>");
    }

    #[test]
    fn overriding_child_is_not_searched() {
        let mut p = Program::new();
        let base = ClassName::new("com.x.Server");
        let mut start = MethodBuilder::public(&base, "start", vec![], Type::Void);
        start.ret_void();
        p.add_class(
            ClassBuilder::new(base.as_str())
                .method(start.build())
                .build(),
        );
        // Child that DOES override start().
        let child = ClassName::new("com.x.ChildServer");
        let mut cstart = MethodBuilder::public(&child, "start", vec![], Type::Void);
        cstart.ret_void();
        p.add_class(
            ClassBuilder::new(child.as_str())
                .extends(base.as_str())
                .method(cstart.build())
                .build(),
        );
        // Caller invokes the child's own start().
        let user = ClassName::new("com.x.User");
        let mut go = MethodBuilder::public(&user, "go", vec![], Type::Void);
        let obj = go.new_object(child.as_str(), vec![], vec![]);
        go.invoke(InvokeExpr::call_virtual(
            msig(child.as_str(), "start"),
            obj,
            vec![],
        ));
        p.add_class(ClassBuilder::new(user.as_str()).method(go.build()).build());

        let m = Manifest::new("com.x");
        let art = AppArtifacts::new(p.clone(), m.clone());
        let mut ctx = art.task();
        // Searching the BASE method must not pick up the child call site,
        // which targets the overloaded child method only.
        let r = find_callers(&mut ctx, &msig(base.as_str(), "start"));
        assert_eq!(r, Reached::NoCaller, "{r:?}");
        // Searching the CHILD method finds it directly.
        let Reached::Callers(edges) = find_callers(&mut ctx, &msig(child.as_str(), "start")) else {
            panic!("expected callers");
        };
        assert_eq!(edges[0].kind, EdgeKind::DirectCall);
    }
}
