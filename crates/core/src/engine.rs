//! The per-app BackDroid pipeline (paper §III, Fig 2): preprocess →
//! locate sinks → search-driven backward slicing into SSGs → forward
//! constant/points-to propagation → detector verdicts.
//!
//! ## The sink-task scheduler
//!
//! The paper's headline result is that per-app cost tracks the number of
//! targeted sinks, not app size — sink slices are independent work items.
//! [`Backdroid::analyze`] therefore runs as a scheduler over *sink
//! tasks*: located sink sites are grouped by containing method (the §IV-F
//! skip rule only couples sites of the same method) and the groups are
//! analyzed on [`BackdroidOptions::intra_threads`] workers against one
//! shared [`SearchEngine`]. Determinism contract, for any thread count:
//!
//! * reports are emitted in sink-site order (the same order the
//!   sequential loop produced);
//! * cache and loop statistics merge commutatively, and the engine's
//!   single-flight cache charges each unique command exactly once, so
//!   `CacheStats` (including `lines_scanned` / `postings_touched`) is
//!   identical to the sequential run;
//! * the §IV-F unreachable-method sink cache is a proven-unreachable set
//!   that is correct under any interleaving — a site may *run* instead
//!   of being skipped, never the reverse — and `skipped` is counted in a
//!   deterministic post-pass over sink-site order that also drops any
//!   redundantly produced report.

use crate::chunks::{classify_delta, DeltaKind};
use crate::context::{AppArtifacts, DepTrace, TaskContext};
use crate::detect::Verdict;
use crate::detector::DetectorRegistry;
use crate::forward::{DataflowValue, ForwardAnalysis};
use crate::locate::{locate_sinks, SinkSite};
use crate::loops::LoopStats;
use crate::sinks::SinkRegistry;
use crate::slicer::{slice_sink, SlicerConfig};
use backdroid_dex::{dump_image, DexImage};
use backdroid_ir::{ClassName, MethodSig, Program};
use backdroid_manifest::Manifest;
use backdroid_search::{
    BackendChoice, BytecodeText, CacheStats, SearchCmd, SearchEngine, SearchTrace,
};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tool options. `Default` reproduces the paper's configuration,
/// including the exact-signature initial sink search (and therefore the
/// two §VI-C false negatives); enable `hierarchy_initial_search` for the
/// proposed fix.
#[derive(Clone, Debug)]
pub struct BackdroidOptions {
    /// The detectors to run; their sink specs (flattened in registry
    /// order) are the sinks the pipeline locates and slices.
    pub detectors: DetectorRegistry,
    /// Enable the class-hierarchy-aware initial sink search (§VI-C fix).
    pub hierarchy_initial_search: bool,
    /// Slicer bounds.
    pub slicer: SlicerConfig,
    /// Which search backend the engine executes uncached commands with.
    /// Both backends are hit-for-hit identical (the property tests
    /// enforce it); `Indexed` touches only posting-list candidates while
    /// `LinearScan` reproduces the paper's full-dump grep cost.
    pub backend: BackendChoice,
    /// Worker threads for the intra-app sink-task scheduler. `1` (the
    /// default) analyzes sink sites sequentially; any value produces
    /// byte-identical reports and deterministic statistics — see the
    /// module docs for the determinism contract.
    pub intra_threads: usize,
}

impl Default for BackdroidOptions {
    fn default() -> Self {
        BackdroidOptions {
            detectors: DetectorRegistry::paper(),
            hierarchy_initial_search: false,
            slicer: SlicerConfig::default(),
            backend: BackendChoice::default(),
            intra_threads: 1,
        }
    }
}

/// The report for one analyzed sink call site.
#[derive(Clone, PartialEq, Debug)]
pub struct SinkReport {
    /// Sink identifier from the registry.
    pub sink_id: String,
    /// The method containing the call.
    pub site_method: MethodSig,
    /// Statement index of the call.
    pub stmt_idx: usize,
    /// Whether the call is control-flow reachable from an entry point.
    pub reachable: bool,
    /// Entry points the backward slice reached.
    pub entries: Vec<MethodSig>,
    /// Recovered dataflow values of the tracked parameters.
    pub param_values: Vec<DataflowValue>,
    /// The detector verdict.
    pub verdict: Verdict,
    /// SSG size (units), a per-sink work measure.
    pub ssg_units: usize,
}

/// Sink API call caching statistics (§IV-F: "on average, 13.86% of sink
/// API calls in each app are cached").
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SinkCacheStats {
    /// Sink call sites located in total.
    pub located: u64,
    /// Sites skipped because their containing method was already proven
    /// unreachable.
    pub skipped: u64,
}

impl SinkCacheStats {
    /// Cached fraction in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.located == 0 {
            0.0
        } else {
            self.skipped as f64 / self.located as f64
        }
    }
}

/// Wall-clock time spent in each pipeline phase of one analysis
/// (paper §III: locate → slice → forward/judge), in nanoseconds.
/// Slice and verdict time are summed across sink tasks, so the totals
/// are commutative and thread-count independent in *coverage* — the
/// values themselves are wall-clock and belong in observability
/// exports only, never in deterministic report output.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimings {
    /// Time locating sink call sites by bytecode search.
    pub locate_ns: u64,
    /// Time slicing sinks backward into SSGs (summed over sites).
    pub slice_ns: u64,
    /// Time in forward propagation + detector verdicts (summed over
    /// sites).
    pub verdict_ns: u64,
}

/// The whole-app analysis report.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// One report per analyzed sink site (skipped sites excluded),
    /// always in sink-site order.
    pub sink_reports: Vec<SinkReport>,
    /// Total wall-clock analysis time.
    pub analysis_time: Duration,
    /// Search-command cache statistics (§IV-F), measured as a delta
    /// over the engine's counters so back-to-back analyses on long-lived
    /// [`AppArtifacts`] each report their own work. The counters are
    /// engine-wide: analyses that *overlap in time* on the same
    /// artifacts fold each other's commands into their windows — take
    /// deltas from non-overlapping runs when the numbers must be exact.
    pub cache_stats: CacheStats,
    /// Loop-detection statistics (§IV-F).
    pub loop_stats: LoopStats,
    /// Sink API call caching statistics (§IV-F).
    pub sink_cache: SinkCacheStats,
    /// Per-phase wall-clock timings (observability only — wall-clock
    /// values never appear in deterministic report output).
    pub phases: PhaseTimings,
}

impl AppReport {
    /// Reports whose verdict flags a vulnerability on a reachable path.
    pub fn vulnerable_sinks(&self) -> Vec<&SinkReport> {
        self.sink_reports
            .iter()
            .filter(|r| r.reachable && r.verdict.is_vulnerable())
            .collect()
    }

    /// Number of sink call sites analyzed (Fig 9's x-axis).
    pub fn sinks_analyzed(&self) -> usize {
        self.sink_reports.len()
    }
}

/// The BackDroid tool: targeted and efficient inter-procedural analysis
/// via on-the-fly bytecode search.
#[derive(Clone, Debug, Default)]
pub struct Backdroid {
    options: BackdroidOptions,
}

/// One sink site's scheduler outcome: its index in sink-site order, the
/// report (`None` when the §IV-F skip rule fired in-task), and — in
/// delta-capture mode — the site's recorded dependency footprint.
type SiteOutcome = (usize, Option<SinkReport>, Option<SiteTrace>);

/// One sink task's results plus the task's private loop counters and
/// its `(slice_ns, verdict_ns)` wall-clock phase split.
type TaskResult = (Vec<SiteOutcome>, LoopStats, u64, u64);

/// One sink site's full dependency footprint: the method bodies and
/// class definitions the analysis read ([`DepTrace`]) plus every search
/// command and `classes_using` target it issued
/// ([`backdroid_search::SearchTrace`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SiteTrace {
    /// Program-side reads (bodies, class definitions).
    pub deps: DepTrace,
    /// Search-side queries.
    pub search: SearchTrace,
}

/// Everything a later incremental run needs from one analysis: the
/// located sink sites, their pre-post-pass outcomes, and per-site
/// dependency traces. Produced by [`Backdroid::analyze_artifacts_traced`]
/// (and by every [`Backdroid::analyze_delta`] call, for the *next*
/// update); valid only for the same tool options it was captured with —
/// `analyze_delta` verifies that and falls back to a full run otherwise.
#[derive(Clone, Debug)]
pub struct DeltaBase {
    sites: Vec<SinkSite>,
    outcomes: Vec<Option<SinkReport>>,
    traces: Vec<Option<SiteTrace>>,
    detector_ids: Vec<String>,
    hierarchy_initial_search: bool,
}

impl DeltaBase {
    /// Number of sink sites the base run located.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

/// What one [`Backdroid::analyze_delta`] run did — the serving layer
/// exports these as `sinks_reused` / `sinks_reanalyzed` /
/// `delta_full_fallback_total` metrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DeltaStats {
    /// The update was structural (or the base was unusable), so every
    /// sink was re-analyzed from scratch.
    pub full_fallback: bool,
    /// Sink sites whose prior verdicts were replayed.
    pub sinks_reused: usize,
    /// Sink sites analyzed fresh this run.
    pub sinks_reanalyzed: usize,
}

/// A delta planner: maps the located sites to per-site instructions
/// before the scheduler fans out.
type SitePlanner<'a> = &'a dyn Fn(&[SinkSite]) -> Vec<SitePlan>;

/// The scheduler's per-site instruction in delta mode.
enum SitePlan {
    /// Slice/propagate/judge as usual.
    Fresh,
    /// Replay this prior outcome (and carry its still-valid trace
    /// forward into the new [`DeltaBase`]). Boxed: a reused site's
    /// payload dwarfs the no-data `Fresh` variant.
    Reuse(Box<(SinkReport, SiteTrace)>),
}

impl Backdroid {
    /// Creates a tool with the paper's default configuration — BackDroid
    /// "does not require specific parameter configuration" (§VI-A).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool with custom options.
    pub fn with_options(options: BackdroidOptions) -> Self {
        Backdroid { options }
    }

    /// The active options.
    pub fn options(&self) -> &BackdroidOptions {
        &self.options
    }

    /// Analyzes one app end to end: preprocess (encode, disassemble,
    /// index), then run the sink-task scheduler. The reported
    /// `analysis_time` covers the whole span, timed once.
    pub fn analyze(&self, program: &Program, manifest: &Manifest) -> AppReport {
        let start = Instant::now();
        let image = DexImage::encode(program);
        let dump = dump_image(&image);
        let engine = SearchEngine::with_backend(BytecodeText::index(&dump), self.options.backend);
        self.run_scheduler(program, manifest, &engine, start)
    }

    /// Analyzes against prebuilt, shareable [`AppArtifacts`] — the
    /// resident-app-image entry point. Many analyses (even concurrent
    /// ones from different threads) can target the same artifacts; the
    /// reports themselves are always exact, while the per-report
    /// `cache_stats` delta is exact only for analyses that do not
    /// overlap in time (see [`AppReport::cache_stats`]).
    pub fn analyze_artifacts(&self, artifacts: &AppArtifacts) -> AppReport {
        self.run_scheduler(
            artifacts.program(),
            artifacts.manifest(),
            artifacts.engine(),
            Instant::now(),
        )
    }

    /// Analyzes within a prepared task context (compatibility shim for
    /// pre-session callers; the context's engine handle is shared with
    /// the scheduler's tasks and its loop counters absorb the run's loop
    /// statistics).
    pub fn analyze_in(&self, ctx: &mut TaskContext<'_>) -> AppReport {
        let report = self.run_scheduler(ctx.program, ctx.manifest, &ctx.engine, Instant::now());
        ctx.loops.merge(&report.loop_stats);
        report
    }

    /// Runs one sink site: slice backward, propagate forward, judge via
    /// the detector registry's rule for the sink. With `capture` set,
    /// every body read and search query is recorded into the returned
    /// [`SiteTrace`] (recording observes only — reports are identical
    /// either way). Returns the report plus the site's
    /// `(slice_ns, verdict_ns)` wall-clock split for [`PhaseTimings`].
    fn analyze_site(
        &self,
        ctx: &mut TaskContext<'_>,
        site: &SinkSite,
        sinks: &SinkRegistry,
        capture: bool,
    ) -> (SinkReport, Option<SiteTrace>, u64, u64) {
        let recorders = if capture {
            let deps = Arc::new(Mutex::new(DepTrace::default()));
            let search = Arc::new(Mutex::new(SearchTrace::default()));
            let plain_engine = ctx.engine.clone();
            ctx.set_trace(Some(Arc::clone(&deps)));
            ctx.engine = plain_engine.with_recorder(Arc::clone(&search));
            Some((deps, search, plain_engine))
        } else {
            None
        };
        let spec = &sinks.sinks()[site.spec_idx];
        let slice_started = Instant::now();
        let result = slice_sink(ctx, self.options.slicer, &site.method, site.stmt_idx, spec);
        let slice_ns = slice_started.elapsed().as_nanos() as u64;
        let verdict_started = Instant::now();
        let mut forward = ForwardAnalysis::new(ctx.program);
        if let Some((deps, _, _)) = &recorders {
            forward.set_trace(Some(Arc::clone(deps)));
        }
        let values = forward.run(&result.ssg, spec);
        let verdict = self
            .options
            .detectors
            .judge(&spec.id, &values)
            .expect("located sink spec belongs to the options' detector registry");
        let verdict_ns = verdict_started.elapsed().as_nanos() as u64;
        let report = SinkReport {
            sink_id: spec.id.to_string(),
            site_method: site.method.clone(),
            stmt_idx: site.stmt_idx,
            reachable: result.reachable,
            entries: result.ssg.entries().to_vec(),
            param_values: values,
            verdict,
            ssg_units: result.ssg.units().len(),
        };
        drop(forward);
        let trace = recorders.map(|(deps, search, plain_engine)| {
            ctx.set_trace(None);
            ctx.engine = plain_engine;
            SiteTrace {
                deps: std::mem::take(&mut *deps.lock().unwrap_or_else(|e| e.into_inner())),
                search: std::mem::take(&mut *search.lock().unwrap_or_else(|e| e.into_inner())),
            }
        });
        (report, trace, slice_ns, verdict_ns)
    }

    /// The sink-task scheduler (see the module docs for the determinism
    /// contract). `started` is the caller's clock start, so
    /// `analysis_time` is measured exactly once per report — `analyze`
    /// includes its preprocessing span, the other entry points start
    /// here.
    fn run_scheduler(
        &self,
        program: &Program,
        manifest: &Manifest,
        engine: &SearchEngine,
        started: Instant,
    ) -> AppReport {
        self.run_sites(program, manifest, engine, started, false, None)
            .0
    }

    /// [`Backdroid::analyze_artifacts`] plus delta capture: records each
    /// sink site's dependency footprint and returns the [`DeltaBase`] a
    /// later [`Backdroid::analyze_delta`] replays verdicts from. The
    /// report is identical to the untraced run's.
    pub fn analyze_artifacts_traced(&self, artifacts: &AppArtifacts) -> (AppReport, DeltaBase) {
        let (report, base, _) = self.run_sites(
            artifacts.program(),
            artifacts.manifest(),
            artifacts.engine(),
            Instant::now(),
            true,
            None,
        );
        (report, base.expect("capture mode produces a base"))
    }

    /// Incremental analysis of an app update (the delta path): analyzes
    /// `new` re-running only the sink sites an update could have
    /// affected, replaying prior verdicts for the rest.
    ///
    /// **Invariant** (enforced by `tests/delta_equivalence.rs` on both
    /// backends): the returned report is byte-for-byte identical — over
    /// the deterministic report surface (sites, reachability, values,
    /// verdicts, skip decisions) — to a from-scratch analysis of `new`.
    ///
    /// Verdict reuse engages only for **method-body-only** updates
    /// (see [`crate::chunks::classify_delta`]): hierarchy, signature,
    /// and manifest queries are provably unchanged there, so a prior
    /// verdict is replayed iff the site's recorded body/class reads
    /// avoid every changed method and its recorded search queries
    /// answer identically over the old and new images. Structural
    /// updates, a missing/mismatched `base`, or a changed manifest fall
    /// back to re-analyzing every site — still byte-identical, by
    /// determinism.
    ///
    /// Always returns a fresh [`DeltaBase`] for the next update in the
    /// chain.
    pub fn analyze_delta(
        &self,
        old: &AppArtifacts,
        base: Option<&DeltaBase>,
        new: &AppArtifacts,
    ) -> (AppReport, DeltaBase, DeltaStats) {
        let started = Instant::now();
        let full = |this: &Backdroid| {
            let (report, base, _) = this.run_sites(
                new.program(),
                new.manifest(),
                new.engine(),
                started,
                true,
                None,
            );
            let reanalyzed = base.as_ref().map_or(0, DeltaBase::site_count);
            (
                report,
                base.expect("capture mode produces a base"),
                DeltaStats {
                    full_fallback: true,
                    sinks_reused: 0,
                    sinks_reanalyzed: reanalyzed,
                },
            )
        };

        let Some(base) = base else { return full(self) };
        if base
            .detector_ids
            .iter()
            .map(String::as_str)
            .ne(self.options.detectors.ids())
            || base.hierarchy_initial_search != self.options.hierarchy_initial_search
            || old.manifest() != new.manifest()
        {
            return full(self);
        }
        let changed_methods: BTreeSet<MethodSig> =
            match classify_delta(old.program(), new.program()) {
                DeltaKind::Identity => BTreeSet::new(),
                DeltaKind::BodyOnly { changed_methods } => changed_methods,
                DeltaKind::Structural => return full(self),
            };
        let changed_classes: BTreeSet<ClassName> =
            changed_methods.iter().map(|m| m.class().clone()).collect();

        // Memoized exact checks: a traced search answer is "unchanged"
        // iff re-running it over the old and new images yields the same
        // hit-method sequence (line numbers may shift with unrelated
        // edits; no analysis pass reads them). The old engine's §IV-F
        // caches make the old side cheap; the new side pre-warms the
        // caches the fresh subset will use anyway.
        let cmd_ok: RefCell<HashMap<SearchCmd, bool>> = RefCell::new(HashMap::new());
        let use_ok: RefCell<HashMap<ClassName, bool>> = RefCell::new(HashMap::new());
        let identity = changed_methods.is_empty();
        let same_cmd = |cmd: &SearchCmd| -> bool {
            if identity {
                return true;
            }
            if let Some(&ok) = cmd_ok.borrow().get(cmd) {
                return ok;
            }
            let a = old.engine().run(cmd);
            let b = new.engine().run(cmd);
            let ok = a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.method == y.method);
            cmd_ok.borrow_mut().insert(cmd.clone(), ok);
            ok
        };
        let same_use = |target: &ClassName| -> bool {
            if identity {
                return true;
            }
            if let Some(&ok) = use_ok.borrow().get(target) {
                return ok;
            }
            let ok = old.engine().classes_using(target) == new.engine().classes_using(target);
            use_ok.borrow_mut().insert(target.clone(), ok);
            ok
        };

        let by_key: HashMap<(usize, &MethodSig, usize), usize> = base
            .sites
            .iter()
            .enumerate()
            .map(|(j, s)| ((s.spec_idx, &s.method, s.stmt_idx), j))
            .collect();
        let planner = |sites: &[SinkSite]| -> Vec<SitePlan> {
            sites
                .iter()
                .map(|site| {
                    if changed_methods.contains(&site.method) {
                        return SitePlan::Fresh;
                    }
                    let Some(&j) = by_key.get(&(site.spec_idx, &site.method, site.stmt_idx)) else {
                        return SitePlan::Fresh;
                    };
                    if base.sites[j] != *site {
                        return SitePlan::Fresh;
                    }
                    let (Some(outcome), Some(trace)) = (&base.outcomes[j], &base.traces[j]) else {
                        // In-task-skipped sites carry no verdict of their
                        // own; the post-pass resettles them.
                        return SitePlan::Fresh;
                    };
                    let untouched = trace.deps.methods.is_disjoint(&changed_methods)
                        && trace.deps.classes.is_disjoint(&changed_classes)
                        && trace.search.cmds.iter().all(&same_cmd)
                        && trace.search.class_uses.iter().all(&same_use);
                    if untouched {
                        SitePlan::Reuse(Box::new((outcome.clone(), trace.clone())))
                    } else {
                        SitePlan::Fresh
                    }
                })
                .collect()
        };

        let (report, new_base, reused) = self.run_sites(
            new.program(),
            new.manifest(),
            new.engine(),
            started,
            true,
            Some(&planner),
        );
        let new_base = new_base.expect("capture mode produces a base");
        let stats = DeltaStats {
            full_fallback: false,
            sinks_reused: reused,
            sinks_reanalyzed: new_base.site_count() - reused,
        };
        (report, new_base, stats)
    }

    /// The scheduler core shared by full, traced, and delta runs.
    /// `planner` (delta mode) maps located sites to per-site plans;
    /// `capture` additionally records dependency traces and returns a
    /// [`DeltaBase`]. Returns `(report, base, sites_reused)`.
    fn run_sites(
        &self,
        program: &Program,
        manifest: &Manifest,
        engine: &SearchEngine,
        started: Instant,
        capture: bool,
        planner: Option<SitePlanner<'_>>,
    ) -> (AppReport, Option<DeltaBase>, usize) {
        let stats_before = engine.stats();

        let sinks = self.options.detectors.sink_registry();
        let mut locate_ctx = TaskContext::from_parts(program, manifest, engine.clone());
        let locate_started = Instant::now();
        let sites: Vec<SinkSite> = locate_sinks(
            &mut locate_ctx,
            &sinks,
            self.options.hierarchy_initial_search,
        );
        let mut phases = PhaseTimings {
            locate_ns: locate_started.elapsed().as_nanos() as u64,
            ..PhaseTimings::default()
        };
        let mut loop_stats = locate_ctx.loops;

        // Group sink sites by containing method: the §IV-F skip rule only
        // couples same-method sites, so serializing each method's sites
        // inside one task reproduces the sequential skip decisions
        // exactly while distinct methods run in parallel.
        let mut group_of: HashMap<&MethodSig, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let g = *group_of.entry(&site.method).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
        }

        // §IV-F sink API call caching: methods proven control-flow
        // unreachable skip their remaining sink sites. With the
        // per-method grouping above, each entry is only ever observed by
        // the group that wrote it; the set stays shared (two uncontended
        // lock ops per site) so the invariant — a site may over-run,
        // never under-run, with the post-pass settling the outcome —
        // holds for any finer-grained scheduling this may grow into.
        let proven_unreachable: Mutex<HashSet<MethodSig>> = Mutex::new(HashSet::new());

        // Delta mode: per-site plans, computed once over the freshly
        // located sites. A reused verdict participates in the skip rule
        // exactly like a freshly computed one.
        let plans: Option<Vec<SitePlan>> = planner.map(|p| p(&sites));

        let run_group = |group: &[usize]| -> TaskResult {
            let mut ctx = TaskContext::from_parts(program, manifest, engine.clone());
            let mut out = Vec::with_capacity(group.len());
            let (mut slice_ns, mut verdict_ns) = (0u64, 0u64);
            for &i in group {
                let site = &sites[i];
                let skip = proven_unreachable
                    .lock()
                    .expect("proven-unreachable set poisoned")
                    .contains(&site.method);
                if skip {
                    out.push((i, None, None));
                    continue;
                }
                if let Some(SitePlan::Reuse(reused)) = plans.as_ref().map(|p| &p[i]) {
                    let (outcome, trace) = reused.as_ref();
                    if !outcome.reachable {
                        proven_unreachable
                            .lock()
                            .expect("proven-unreachable set poisoned")
                            .insert(site.method.clone());
                    }
                    out.push((i, Some(outcome.clone()), Some(trace.clone())));
                    continue;
                }
                let (report, trace, site_slice_ns, site_verdict_ns) =
                    self.analyze_site(&mut ctx, site, &sinks, capture);
                slice_ns += site_slice_ns;
                verdict_ns += site_verdict_ns;
                if !report.reachable {
                    proven_unreachable
                        .lock()
                        .expect("proven-unreachable set poisoned")
                        .insert(site.method.clone());
                }
                out.push((i, Some(report), trace));
            }
            (out, ctx.loops, slice_ns, verdict_ns)
        };

        let threads = self.options.intra_threads.clamp(1, groups.len().max(1));
        let task_results: Vec<TaskResult> = if threads <= 1 {
            groups.iter().map(|g| run_group(g)).collect()
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let gi = next.fetch_add(1, Ordering::Relaxed);
                                if gi >= groups.len() {
                                    break;
                                }
                                local.push(run_group(&groups[gi]));
                            }
                            local
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("sink task worker panicked"))
                    .collect()
            })
        };

        // Reassemble per-site outcomes in sink-site order and merge the
        // per-task loop counters (commutative sums).
        let mut outcomes: Vec<Option<SinkReport>> = (0..sites.len()).map(|_| None).collect();
        let mut traces: Vec<Option<SiteTrace>> = (0..sites.len()).map(|_| None).collect();
        for (list, loops, slice_ns, verdict_ns) in task_results {
            loop_stats.merge(&loops);
            phases.slice_ns += slice_ns;
            phases.verdict_ns += verdict_ns;
            for (i, outcome, trace) in list {
                outcomes[i] = outcome;
                traces[i] = trace;
            }
        }

        // A site counts as reused only if its prior verdict actually
        // landed (a Reuse plan pre-empted by an in-task skip is neither
        // reused nor reanalyzed).
        let reused = plans.as_ref().map_or(0, |plans| {
            plans
                .iter()
                .zip(&outcomes)
                .filter(|(p, o)| matches!(p, SitePlan::Reuse(..)) && o.is_some())
                .count()
        });

        // Delta base: pre-post-pass outcomes, so a later update replays
        // the skip rule against the same inputs a cold run would see.
        let base = capture.then(|| DeltaBase {
            sites: sites.clone(),
            outcomes: outcomes.clone(),
            traces,
            detector_ids: self
                .options
                .detectors
                .ids()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            hierarchy_initial_search: self.options.hierarchy_initial_search,
        });

        // Deterministic §IV-F post-pass: replay the sequential skip rule
        // over sink-site order. A report produced for a site the rule
        // skips would be dropped here — unreachable under the per-method
        // grouping, load-bearing for any over-running scheduler.
        let mut seen_unreachable: HashSet<MethodSig> = HashSet::new();
        let mut sink_cache = SinkCacheStats {
            located: sites.len() as u64,
            skipped: 0,
        };
        let mut reports = Vec::with_capacity(sites.len());
        for (site, outcome) in sites.iter().zip(outcomes) {
            if seen_unreachable.contains(&site.method) {
                sink_cache.skipped += 1;
                continue;
            }
            let report = outcome.expect("non-skipped sink site must have been analyzed");
            if !report.reachable {
                seen_unreachable.insert(site.method.clone());
            }
            reports.push(report);
        }

        let report = AppReport {
            sink_reports: reports,
            analysis_time: started.elapsed(),
            cache_stats: engine.stats().since(&stats_before),
            loop_stats,
            sink_cache,
            phases,
        };
        (report, base, reused)
    }
}
