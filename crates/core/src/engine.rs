//! The per-app BackDroid pipeline (paper §III, Fig 2): preprocess →
//! locate sinks → search-driven backward slicing into SSGs → forward
//! constant/points-to propagation → detector verdicts.

use crate::context::AnalysisContext;
use crate::detect::{judge, Verdict};
use crate::forward::{DataflowValue, ForwardAnalysis};
use crate::locate::{locate_sinks, SinkSite};
use crate::loops::LoopStats;
use crate::sinks::SinkRegistry;
use crate::slicer::{slice_sink, SlicerConfig};
use backdroid_ir::{MethodSig, Program};
use backdroid_manifest::Manifest;
use backdroid_search::{BackendChoice, CacheStats};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tool options. `Default` reproduces the paper's configuration,
/// including the exact-signature initial sink search (and therefore the
/// two §VI-C false negatives); enable `hierarchy_initial_search` for the
/// proposed fix.
#[derive(Clone, Debug)]
pub struct BackdroidOptions {
    /// The sinks to vet.
    pub sinks: SinkRegistry,
    /// Enable the class-hierarchy-aware initial sink search (§VI-C fix).
    pub hierarchy_initial_search: bool,
    /// Slicer bounds.
    pub slicer: SlicerConfig,
    /// Which search backend the engine executes uncached commands with.
    /// Both backends are hit-for-hit identical (the property tests
    /// enforce it); `Indexed` touches only posting-list candidates while
    /// `LinearScan` reproduces the paper's full-dump grep cost.
    pub backend: BackendChoice,
}

impl Default for BackdroidOptions {
    fn default() -> Self {
        BackdroidOptions {
            sinks: SinkRegistry::crypto_and_ssl(),
            hierarchy_initial_search: false,
            slicer: SlicerConfig::default(),
            backend: BackendChoice::default(),
        }
    }
}

/// The report for one analyzed sink call site.
#[derive(Clone, Debug)]
pub struct SinkReport {
    /// Sink identifier from the registry.
    pub sink_id: String,
    /// The method containing the call.
    pub site_method: MethodSig,
    /// Statement index of the call.
    pub stmt_idx: usize,
    /// Whether the call is control-flow reachable from an entry point.
    pub reachable: bool,
    /// Entry points the backward slice reached.
    pub entries: Vec<MethodSig>,
    /// Recovered dataflow values of the tracked parameters.
    pub param_values: Vec<DataflowValue>,
    /// The detector verdict.
    pub verdict: Verdict,
    /// SSG size (units), a per-sink work measure.
    pub ssg_units: usize,
}

/// Sink API call caching statistics (§IV-F: "on average, 13.86% of sink
/// API calls in each app are cached").
#[derive(Clone, Copy, Debug, Default)]
pub struct SinkCacheStats {
    /// Sink call sites located in total.
    pub located: u64,
    /// Sites skipped because their containing method was already proven
    /// unreachable.
    pub skipped: u64,
}

impl SinkCacheStats {
    /// Cached fraction in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.located == 0 {
            0.0
        } else {
            self.skipped as f64 / self.located as f64
        }
    }
}

/// The whole-app analysis report.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// One report per analyzed sink site (skipped sites excluded).
    pub sink_reports: Vec<SinkReport>,
    /// Total wall-clock analysis time.
    pub analysis_time: Duration,
    /// Search-command cache statistics (§IV-F).
    pub cache_stats: CacheStats,
    /// Loop-detection statistics (§IV-F).
    pub loop_stats: LoopStats,
    /// Sink API call caching statistics (§IV-F).
    pub sink_cache: SinkCacheStats,
}

impl AppReport {
    /// Reports whose verdict flags a vulnerability on a reachable path.
    pub fn vulnerable_sinks(&self) -> Vec<&SinkReport> {
        self.sink_reports
            .iter()
            .filter(|r| r.reachable && r.verdict.is_vulnerable())
            .collect()
    }

    /// Number of sink call sites analyzed (Fig 9's x-axis).
    pub fn sinks_analyzed(&self) -> usize {
        self.sink_reports.len()
    }
}

/// The BackDroid tool: targeted and efficient inter-procedural analysis
/// via on-the-fly bytecode search.
#[derive(Clone, Debug, Default)]
pub struct Backdroid {
    options: BackdroidOptions,
}

impl Backdroid {
    /// Creates a tool with the paper's default configuration — BackDroid
    /// "does not require specific parameter configuration" (§VI-A).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool with custom options.
    pub fn with_options(options: BackdroidOptions) -> Self {
        Backdroid { options }
    }

    /// The active options.
    pub fn options(&self) -> &BackdroidOptions {
        &self.options
    }

    /// Analyzes one app.
    pub fn analyze(&self, program: &Program, manifest: &Manifest) -> AppReport {
        let start = Instant::now();
        let mut ctx = AnalysisContext::with_backend(program, manifest, self.options.backend);
        let report = self.analyze_in(&mut ctx);
        AppReport {
            analysis_time: start.elapsed(),
            cache_stats: ctx.engine.stats(),
            loop_stats: ctx.loops.clone(),
            ..report
        }
    }

    /// Analyzes within a prepared context (used by tests and the bench
    /// harness to reuse a dump).
    pub fn analyze_in(&self, ctx: &mut AnalysisContext<'_>) -> AppReport {
        let start = Instant::now();
        let sites: Vec<SinkSite> = locate_sinks(
            ctx,
            &self.options.sinks,
            self.options.hierarchy_initial_search,
        );

        let mut sink_cache = SinkCacheStats {
            located: sites.len() as u64,
            skipped: 0,
        };
        // §IV-F sink API call caching: methods proven unreachable skip
        // their remaining sink sites.
        let mut unreachable_methods: HashMap<MethodSig, bool> = HashMap::new();

        let mut reports = Vec::new();
        for site in sites {
            if unreachable_methods.get(&site.method).copied() == Some(true) {
                sink_cache.skipped += 1;
                continue;
            }
            let spec = &self.options.sinks.sinks()[site.spec_idx];
            let result = slice_sink(ctx, self.options.slicer, &site.method, site.stmt_idx, spec);
            if !result.reachable {
                unreachable_methods.insert(site.method.clone(), true);
            }
            let mut forward = ForwardAnalysis::new(ctx.program);
            let values = forward.run(&result.ssg, spec);
            let verdict = judge(spec.id, &values);
            reports.push(SinkReport {
                sink_id: spec.id.to_string(),
                site_method: site.method,
                stmt_idx: site.stmt_idx,
                reachable: result.reachable,
                entries: result.ssg.entries().to_vec(),
                param_values: values,
                verdict,
                ssg_units: result.ssg.units().len(),
            });
        }

        AppReport {
            sink_reports: reports,
            analysis_time: start.elapsed(),
            cache_stats: ctx.engine.stats(),
            loop_stats: ctx.loops.clone(),
            sink_cache,
        }
    }
}
