//! The per-app BackDroid pipeline (paper §III, Fig 2): preprocess →
//! locate sinks → search-driven backward slicing into SSGs → forward
//! constant/points-to propagation → detector verdicts.
//!
//! ## The sink-task scheduler
//!
//! The paper's headline result is that per-app cost tracks the number of
//! targeted sinks, not app size — sink slices are independent work items.
//! [`Backdroid::analyze`] therefore runs as a scheduler over *sink
//! tasks*: located sink sites are grouped by containing method (the §IV-F
//! skip rule only couples sites of the same method) and the groups are
//! analyzed on [`BackdroidOptions::intra_threads`] workers against one
//! shared [`SearchEngine`]. Determinism contract, for any thread count:
//!
//! * reports are emitted in sink-site order (the same order the
//!   sequential loop produced);
//! * cache and loop statistics merge commutatively, and the engine's
//!   single-flight cache charges each unique command exactly once, so
//!   `CacheStats` (including `lines_scanned` / `postings_touched`) is
//!   identical to the sequential run;
//! * the §IV-F unreachable-method sink cache is a proven-unreachable set
//!   that is correct under any interleaving — a site may *run* instead
//!   of being skipped, never the reverse — and `skipped` is counted in a
//!   deterministic post-pass over sink-site order that also drops any
//!   redundantly produced report.

use crate::context::{AppArtifacts, TaskContext};
use crate::detect::Verdict;
use crate::detector::DetectorRegistry;
use crate::forward::{DataflowValue, ForwardAnalysis};
use crate::locate::{locate_sinks, SinkSite};
use crate::loops::LoopStats;
use crate::sinks::SinkRegistry;
use crate::slicer::{slice_sink, SlicerConfig};
use backdroid_dex::{dump_image, DexImage};
use backdroid_ir::{MethodSig, Program};
use backdroid_manifest::Manifest;
use backdroid_search::{BackendChoice, BytecodeText, CacheStats, SearchEngine};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tool options. `Default` reproduces the paper's configuration,
/// including the exact-signature initial sink search (and therefore the
/// two §VI-C false negatives); enable `hierarchy_initial_search` for the
/// proposed fix.
#[derive(Clone, Debug)]
pub struct BackdroidOptions {
    /// The detectors to run; their sink specs (flattened in registry
    /// order) are the sinks the pipeline locates and slices.
    pub detectors: DetectorRegistry,
    /// Enable the class-hierarchy-aware initial sink search (§VI-C fix).
    pub hierarchy_initial_search: bool,
    /// Slicer bounds.
    pub slicer: SlicerConfig,
    /// Which search backend the engine executes uncached commands with.
    /// Both backends are hit-for-hit identical (the property tests
    /// enforce it); `Indexed` touches only posting-list candidates while
    /// `LinearScan` reproduces the paper's full-dump grep cost.
    pub backend: BackendChoice,
    /// Worker threads for the intra-app sink-task scheduler. `1` (the
    /// default) analyzes sink sites sequentially; any value produces
    /// byte-identical reports and deterministic statistics — see the
    /// module docs for the determinism contract.
    pub intra_threads: usize,
}

impl Default for BackdroidOptions {
    fn default() -> Self {
        BackdroidOptions {
            detectors: DetectorRegistry::paper(),
            hierarchy_initial_search: false,
            slicer: SlicerConfig::default(),
            backend: BackendChoice::default(),
            intra_threads: 1,
        }
    }
}

/// The report for one analyzed sink call site.
#[derive(Clone, PartialEq, Debug)]
pub struct SinkReport {
    /// Sink identifier from the registry.
    pub sink_id: String,
    /// The method containing the call.
    pub site_method: MethodSig,
    /// Statement index of the call.
    pub stmt_idx: usize,
    /// Whether the call is control-flow reachable from an entry point.
    pub reachable: bool,
    /// Entry points the backward slice reached.
    pub entries: Vec<MethodSig>,
    /// Recovered dataflow values of the tracked parameters.
    pub param_values: Vec<DataflowValue>,
    /// The detector verdict.
    pub verdict: Verdict,
    /// SSG size (units), a per-sink work measure.
    pub ssg_units: usize,
}

/// Sink API call caching statistics (§IV-F: "on average, 13.86% of sink
/// API calls in each app are cached").
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SinkCacheStats {
    /// Sink call sites located in total.
    pub located: u64,
    /// Sites skipped because their containing method was already proven
    /// unreachable.
    pub skipped: u64,
}

impl SinkCacheStats {
    /// Cached fraction in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.located == 0 {
            0.0
        } else {
            self.skipped as f64 / self.located as f64
        }
    }
}

/// Wall-clock time spent in each pipeline phase of one analysis
/// (paper §III: locate → slice → forward/judge), in nanoseconds.
/// Slice and verdict time are summed across sink tasks, so the totals
/// are commutative and thread-count independent in *coverage* — the
/// values themselves are wall-clock and belong in observability
/// exports only, never in deterministic report output.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimings {
    /// Time locating sink call sites by bytecode search.
    pub locate_ns: u64,
    /// Time slicing sinks backward into SSGs (summed over sites).
    pub slice_ns: u64,
    /// Time in forward propagation + detector verdicts (summed over
    /// sites).
    pub verdict_ns: u64,
}

/// The whole-app analysis report.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// One report per analyzed sink site (skipped sites excluded),
    /// always in sink-site order.
    pub sink_reports: Vec<SinkReport>,
    /// Total wall-clock analysis time.
    pub analysis_time: Duration,
    /// Search-command cache statistics (§IV-F), measured as a delta
    /// over the engine's counters so back-to-back analyses on long-lived
    /// [`AppArtifacts`] each report their own work. The counters are
    /// engine-wide: analyses that *overlap in time* on the same
    /// artifacts fold each other's commands into their windows — take
    /// deltas from non-overlapping runs when the numbers must be exact.
    pub cache_stats: CacheStats,
    /// Loop-detection statistics (§IV-F).
    pub loop_stats: LoopStats,
    /// Sink API call caching statistics (§IV-F).
    pub sink_cache: SinkCacheStats,
    /// Per-phase wall-clock timings (observability only — wall-clock
    /// values never appear in deterministic report output).
    pub phases: PhaseTimings,
}

impl AppReport {
    /// Reports whose verdict flags a vulnerability on a reachable path.
    pub fn vulnerable_sinks(&self) -> Vec<&SinkReport> {
        self.sink_reports
            .iter()
            .filter(|r| r.reachable && r.verdict.is_vulnerable())
            .collect()
    }

    /// Number of sink call sites analyzed (Fig 9's x-axis).
    pub fn sinks_analyzed(&self) -> usize {
        self.sink_reports.len()
    }
}

/// The BackDroid tool: targeted and efficient inter-procedural analysis
/// via on-the-fly bytecode search.
#[derive(Clone, Debug, Default)]
pub struct Backdroid {
    options: BackdroidOptions,
}

/// One sink site's scheduler outcome: its index in sink-site order plus
/// the report (`None` when the §IV-F skip rule fired in-task).
type SiteOutcome = (usize, Option<SinkReport>);

/// One sink task's results plus the task's private loop counters and
/// its `(slice_ns, verdict_ns)` wall-clock phase split.
type TaskResult = (Vec<SiteOutcome>, LoopStats, u64, u64);

impl Backdroid {
    /// Creates a tool with the paper's default configuration — BackDroid
    /// "does not require specific parameter configuration" (§VI-A).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool with custom options.
    pub fn with_options(options: BackdroidOptions) -> Self {
        Backdroid { options }
    }

    /// The active options.
    pub fn options(&self) -> &BackdroidOptions {
        &self.options
    }

    /// Analyzes one app end to end: preprocess (encode, disassemble,
    /// index), then run the sink-task scheduler. The reported
    /// `analysis_time` covers the whole span, timed once.
    pub fn analyze(&self, program: &Program, manifest: &Manifest) -> AppReport {
        let start = Instant::now();
        let image = DexImage::encode(program);
        let dump = dump_image(&image);
        let engine = SearchEngine::with_backend(BytecodeText::index(&dump), self.options.backend);
        self.run_scheduler(program, manifest, &engine, start)
    }

    /// Analyzes against prebuilt, shareable [`AppArtifacts`] — the
    /// resident-app-image entry point. Many analyses (even concurrent
    /// ones from different threads) can target the same artifacts; the
    /// reports themselves are always exact, while the per-report
    /// `cache_stats` delta is exact only for analyses that do not
    /// overlap in time (see [`AppReport::cache_stats`]).
    pub fn analyze_artifacts(&self, artifacts: &AppArtifacts) -> AppReport {
        self.run_scheduler(
            artifacts.program(),
            artifacts.manifest(),
            artifacts.engine(),
            Instant::now(),
        )
    }

    /// Analyzes within a prepared task context (compatibility shim for
    /// pre-session callers; the context's engine handle is shared with
    /// the scheduler's tasks and its loop counters absorb the run's loop
    /// statistics).
    pub fn analyze_in(&self, ctx: &mut TaskContext<'_>) -> AppReport {
        let report = self.run_scheduler(ctx.program, ctx.manifest, &ctx.engine, Instant::now());
        ctx.loops.merge(&report.loop_stats);
        report
    }

    /// Runs one sink site: slice backward, propagate forward, judge via
    /// the detector registry's rule for the sink.
    /// Returns the report plus the site's `(slice_ns, verdict_ns)`
    /// wall-clock split for [`PhaseTimings`].
    fn analyze_site(
        &self,
        ctx: &mut TaskContext<'_>,
        site: &SinkSite,
        sinks: &SinkRegistry,
    ) -> (SinkReport, u64, u64) {
        let spec = &sinks.sinks()[site.spec_idx];
        let slice_started = Instant::now();
        let result = slice_sink(ctx, self.options.slicer, &site.method, site.stmt_idx, spec);
        let slice_ns = slice_started.elapsed().as_nanos() as u64;
        let verdict_started = Instant::now();
        let mut forward = ForwardAnalysis::new(ctx.program);
        let values = forward.run(&result.ssg, spec);
        let verdict = self
            .options
            .detectors
            .judge(&spec.id, &values)
            .expect("located sink spec belongs to the options' detector registry");
        let verdict_ns = verdict_started.elapsed().as_nanos() as u64;
        let report = SinkReport {
            sink_id: spec.id.to_string(),
            site_method: site.method.clone(),
            stmt_idx: site.stmt_idx,
            reachable: result.reachable,
            entries: result.ssg.entries().to_vec(),
            param_values: values,
            verdict,
            ssg_units: result.ssg.units().len(),
        };
        (report, slice_ns, verdict_ns)
    }

    /// The sink-task scheduler (see the module docs for the determinism
    /// contract). `started` is the caller's clock start, so
    /// `analysis_time` is measured exactly once per report — `analyze`
    /// includes its preprocessing span, the other entry points start
    /// here.
    fn run_scheduler(
        &self,
        program: &Program,
        manifest: &Manifest,
        engine: &SearchEngine,
        started: Instant,
    ) -> AppReport {
        let stats_before = engine.stats();

        let sinks = self.options.detectors.sink_registry();
        let mut locate_ctx = TaskContext::from_parts(program, manifest, engine.clone());
        let locate_started = Instant::now();
        let sites: Vec<SinkSite> = locate_sinks(
            &mut locate_ctx,
            &sinks,
            self.options.hierarchy_initial_search,
        );
        let mut phases = PhaseTimings {
            locate_ns: locate_started.elapsed().as_nanos() as u64,
            ..PhaseTimings::default()
        };
        let mut loop_stats = locate_ctx.loops;

        // Group sink sites by containing method: the §IV-F skip rule only
        // couples same-method sites, so serializing each method's sites
        // inside one task reproduces the sequential skip decisions
        // exactly while distinct methods run in parallel.
        let mut group_of: HashMap<&MethodSig, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let g = *group_of.entry(&site.method).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
        }

        // §IV-F sink API call caching: methods proven control-flow
        // unreachable skip their remaining sink sites. With the
        // per-method grouping above, each entry is only ever observed by
        // the group that wrote it; the set stays shared (two uncontended
        // lock ops per site) so the invariant — a site may over-run,
        // never under-run, with the post-pass settling the outcome —
        // holds for any finer-grained scheduling this may grow into.
        let proven_unreachable: Mutex<HashSet<MethodSig>> = Mutex::new(HashSet::new());

        let run_group = |group: &[usize]| -> TaskResult {
            let mut ctx = TaskContext::from_parts(program, manifest, engine.clone());
            let mut out = Vec::with_capacity(group.len());
            let (mut slice_ns, mut verdict_ns) = (0u64, 0u64);
            for &i in group {
                let site = &sites[i];
                let skip = proven_unreachable
                    .lock()
                    .expect("proven-unreachable set poisoned")
                    .contains(&site.method);
                if skip {
                    out.push((i, None));
                    continue;
                }
                let (report, site_slice_ns, site_verdict_ns) =
                    self.analyze_site(&mut ctx, site, &sinks);
                slice_ns += site_slice_ns;
                verdict_ns += site_verdict_ns;
                if !report.reachable {
                    proven_unreachable
                        .lock()
                        .expect("proven-unreachable set poisoned")
                        .insert(site.method.clone());
                }
                out.push((i, Some(report)));
            }
            (out, ctx.loops, slice_ns, verdict_ns)
        };

        let threads = self.options.intra_threads.clamp(1, groups.len().max(1));
        let task_results: Vec<TaskResult> = if threads <= 1 {
            groups.iter().map(|g| run_group(g)).collect()
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let gi = next.fetch_add(1, Ordering::Relaxed);
                                if gi >= groups.len() {
                                    break;
                                }
                                local.push(run_group(&groups[gi]));
                            }
                            local
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("sink task worker panicked"))
                    .collect()
            })
        };

        // Reassemble per-site outcomes in sink-site order and merge the
        // per-task loop counters (commutative sums).
        let mut outcomes: Vec<Option<SinkReport>> = (0..sites.len()).map(|_| None).collect();
        for (list, loops, slice_ns, verdict_ns) in task_results {
            loop_stats.merge(&loops);
            phases.slice_ns += slice_ns;
            phases.verdict_ns += verdict_ns;
            for (i, outcome) in list {
                outcomes[i] = outcome;
            }
        }

        // Deterministic §IV-F post-pass: replay the sequential skip rule
        // over sink-site order. A report produced for a site the rule
        // skips would be dropped here — unreachable under the per-method
        // grouping, load-bearing for any over-running scheduler.
        let mut seen_unreachable: HashSet<MethodSig> = HashSet::new();
        let mut sink_cache = SinkCacheStats {
            located: sites.len() as u64,
            skipped: 0,
        };
        let mut reports = Vec::with_capacity(sites.len());
        for (site, outcome) in sites.iter().zip(outcomes) {
            if seen_unreachable.contains(&site.method) {
                sink_cache.skipped += 1;
                continue;
            }
            let report = outcome.expect("non-skipped sink site must have been analyzed");
            if !report.reachable {
                seen_unreachable.insert(site.method.clone());
            }
            reports.push(report);
        }

        AppReport {
            sink_reports: reports,
            analysis_time: started.elapsed(),
            cache_stats: engine.stats().since(&stats_before),
            loop_stats,
            sink_cache,
            phases,
        }
    }
}
