//! Initial sink location by bytecode text search (paper §III step 2:
//! "BackDroid immediately locates the target sink API calls by performing
//! a text search of bytecode plaintext").
//!
//! The default exact-signature search reproduces the paper's behaviour —
//! including its two §VI-C false negatives, where an app class *extends*
//! the platform sink class and invokes the sink through its own signature
//! (`com.youzu...DefaultSSLSocketFactory.setHostnameVerifier`). The
//! `hierarchy_aware` extension implements the fix the paper proposes
//! ("we will address this issue by checking the class hierarchy also in
//! the initial search").

use crate::context::TaskContext;
use crate::sinks::SinkRegistry;
use backdroid_ir::MethodSig;
use backdroid_search::SearchCmd;

/// One located sink call site.
#[derive(Clone, PartialEq, Debug)]
pub struct SinkSite {
    /// Index into the registry's sink list.
    pub spec_idx: usize,
    /// The method containing the call.
    pub method: MethodSig,
    /// The statement index of the call inside that method.
    pub stmt_idx: usize,
    /// The *declared* callee at the site (differs from the spec API when
    /// found via the hierarchy-aware search).
    pub declared_callee: MethodSig,
}

/// Locates all sink call sites for `registry`.
pub fn locate_sinks(
    ctx: &mut TaskContext<'_>,
    registry: &SinkRegistry,
    hierarchy_aware: bool,
) -> Vec<SinkSite> {
    let mut out = Vec::new();
    for (spec_idx, spec) in registry.sinks().iter().enumerate() {
        // Exact-signature text search.
        let hits = ctx.engine.run(&SearchCmd::InvokeOf(spec.api.clone()));
        for hit in hits {
            let Some(body) = ctx.program.method(&hit.method).and_then(|m| m.body()) else {
                continue;
            };
            for stmt_idx in body.call_sites_of(&spec.api) {
                out.push(SinkSite {
                    spec_idx,
                    method: hit.method.clone(),
                    stmt_idx,
                    declared_callee: spec.api.clone(),
                });
            }
        }
        if !hierarchy_aware {
            continue;
        }
        // Hierarchy-aware extension: calls with the sink's *name* whose
        // declared class is an app subclass of the sink's platform class.
        let name_hits = ctx
            .engine
            .run(&SearchCmd::MethodNameCall(spec.api.name().to_string()));
        for hit in name_hits {
            let Some(body) = ctx.program.method(&hit.method).and_then(|m| m.body()) else {
                continue;
            };
            for (stmt_idx, stmt) in body.stmts().iter().enumerate() {
                let Some(ie) = stmt.invoke_expr() else {
                    continue;
                };
                if ie.callee.name() != spec.api.name() {
                    continue;
                }
                if ie.callee == spec.api {
                    continue; // already found by the exact search
                }
                // The declared class must be app-defined and inherit from
                // the platform sink class.
                if !ctx.program.defines(ie.callee.class()) {
                    continue;
                }
                let inherits = ctx
                    .program
                    .superclass_chain(ie.callee.class())
                    .contains(spec.api.class());
                if !inherits {
                    continue;
                }
                // The subclass must not override the sink method itself
                // (if it does, the call targets app code, not the
                // platform sink).
                let overridden = ctx
                    .program
                    .class(ie.callee.class())
                    .is_some_and(|c| c.find_method_by_sub_signature(&spec.api).is_some());
                if overridden {
                    continue;
                }
                out.push(SinkSite {
                    spec_idx,
                    method: hit.method.clone(),
                    stmt_idx,
                    declared_callee: ie.callee.clone(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.spec_idx, &a.method, a.stmt_idx).cmp(&(b.spec_idx, &b.method, b.stmt_idx))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, Program, Type, Value};
    use backdroid_manifest::Manifest;

    fn cipher_sig() -> MethodSig {
        MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        )
    }

    fn direct_sink_program() -> Program {
        let mut p = Program::new();
        let cls = ClassName::new("com.a.Crypto");
        let mut m = MethodBuilder::public(&cls, "encrypt", vec![], Type::Void);
        m.invoke(InvokeExpr::call_static(
            cipher_sig(),
            vec![Value::str("AES/ECB/PKCS5Padding")],
        ));
        // Two call sites in one method (if-else shape of §IV-F).
        m.invoke(InvokeExpr::call_static(
            cipher_sig(),
            vec![Value::str("AES/CBC/PKCS5Padding")],
        ));
        p.add_class(ClassBuilder::new(cls.as_str()).method(m.build()).build());
        p
    }

    #[test]
    fn exact_search_finds_all_call_sites() {
        let p = direct_sink_program();
        let man = Manifest::new("com.a");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let reg = crate::DetectorRegistry::paper().sink_registry();
        let sites = locate_sinks(&mut ctx, &reg, false);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert!(sites.iter().all(|s| s.method.name() == "encrypt"));
        assert_ne!(sites[0].stmt_idx, sites[1].stmt_idx);
    }

    /// The §VI-C FN shape: an app class extends the platform
    /// SSLSocketFactory and invokes setHostnameVerifier via its own class
    /// signature. Exact search misses it; hierarchy-aware finds it.
    fn subclassed_sink_program() -> Program {
        let mut p = Program::new();
        let factory =
            ClassName::new("com.youzu.android.framework.http.client.DefaultSSLSocketFactory");
        let mut setup = MethodBuilder::public(&factory, "setup", vec![], Type::Void);
        let this = setup.this();
        let verifier = setup.read_static_field(backdroid_ir::FieldSig::new(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "ALLOW_ALL_HOSTNAME_VERIFIER",
            Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
        ));
        setup.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                factory.as_str(),
                "setHostnameVerifier",
                vec![Type::object(
                    "org.apache.http.conn.ssl.X509HostnameVerifier",
                )],
                Type::Void,
            ),
            this,
            vec![Value::Local(verifier)],
        ));
        p.add_class(
            ClassBuilder::new(factory.as_str())
                .extends("org.apache.http.conn.ssl.SSLSocketFactory")
                .method(setup.build())
                .build(),
        );
        p
    }

    #[test]
    fn subclassed_sink_missed_without_hierarchy_search() {
        let p = subclassed_sink_program();
        let man = Manifest::new("com.gta.nslm2");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let reg = crate::DetectorRegistry::paper().sink_registry();
        let sites = locate_sinks(&mut ctx, &reg, false);
        assert!(sites.is_empty(), "paper's FN reproduced: {sites:?}");
    }

    #[test]
    fn subclassed_sink_found_with_hierarchy_search() {
        let p = subclassed_sink_program();
        let man = Manifest::new("com.gta.nslm2");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let reg = crate::DetectorRegistry::paper().sink_registry();
        let sites = locate_sinks(&mut ctx, &reg, true);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(
            sites[0].declared_callee.class().as_str(),
            "com.youzu.android.framework.http.client.DefaultSSLSocketFactory"
        );
    }

    #[test]
    fn overriding_subclass_is_not_a_platform_sink() {
        let mut p = subclassed_sink_program();
        // A second subclass that OVERRIDES setHostnameVerifier: its calls
        // target app code, not the platform sink.
        let own = ClassName::new("com.a.OwnFactory");
        let ssl_param = Type::object("org.apache.http.conn.ssl.X509HostnameVerifier");
        let mut set = MethodBuilder::public(
            &own,
            "setHostnameVerifier",
            vec![ssl_param.clone()],
            Type::Void,
        );
        set.ret_void();
        let mut caller = MethodBuilder::public(&own, "setup2", vec![], Type::Void);
        let this = caller.this();
        caller.invoke(InvokeExpr::call_virtual(
            MethodSig::new(
                own.as_str(),
                "setHostnameVerifier",
                vec![ssl_param.clone()],
                Type::Void,
            ),
            this,
            vec![Value::Const(backdroid_ir::Const::Null)],
        ));
        p.add_class(
            ClassBuilder::new(own.as_str())
                .extends("org.apache.http.conn.ssl.SSLSocketFactory")
                .method(set.build())
                .method(caller.build())
                .build(),
        );
        let man = Manifest::new("com.a");
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let reg = crate::DetectorRegistry::paper().sink_registry();
        let sites = locate_sinks(&mut ctx, &reg, true);
        assert_eq!(
            sites.len(),
            1,
            "only the non-overriding subclass: {sites:?}"
        );
    }
}
