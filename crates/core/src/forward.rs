//! Forward constant and points-to propagation over an SSG (paper §V-B).
//!
//! The traversal starts with the special static (`<clinit>`) track so
//! static fields referred to by the normal track resolve first, then
//! iterates the normal units to a fixpoint, modeling the six statement
//! expression kinds (`Binop`, `Cast`, `Invoke`, `New`, `NewArray`, `Phi`)
//! and a library of Java/Android API semantics. Object identity is kept
//! through `NewObj`-style facts (allocation-site keyed) and array contents
//! through `ArrayObj` facts, as §V-B describes.

use crate::sinks::SinkSpec;
use crate::ssg::{Ssg, SsgEdge};
use backdroid_ir::{
    BinOp, ClassName, Const, FieldSig, IdentityKind, InvokeExpr, LocalId, MethodSig, Place,
    Program, Rvalue, Stmt, Value,
};
use std::collections::HashMap;
use std::fmt;

/// The dataflow fact for one value: either a computed constant, a symbolic
/// platform constant, an allocation-site object (`NewObj`), an array
/// (`ArrayObj`), or an expression the analysis cannot fold.
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum DataflowValue {
    /// An integral constant.
    Int(i64),
    /// A string constant (possibly assembled via StringBuilder models).
    Str(String),
    /// A `const-class` literal.
    Class(ClassName),
    /// `null`.
    Null,
    /// A symbolic platform constant, e.g.
    /// `SSLSocketFactory.ALLOW_ALL_HOSTNAME_VERIFIER` — kept by name
    /// because the platform's value is opaque to the app analysis.
    PlatformConst(FieldSig),
    /// A `NewObj` fact: an object allocated at SSG unit `site`.
    Obj {
        /// The allocated class.
        class: ClassName,
        /// The allocation-site SSG unit id (object identity).
        site: usize,
    },
    /// An `ArrayObj` fact keyed by its allocation site.
    Arr {
        /// The allocation-site SSG unit id.
        site: usize,
    },
    /// A non-constant expression, rendered for the report.
    Expr(String),
    /// No information.
    Unknown,
}

impl DataflowValue {
    /// The string content, if this fact is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            DataflowValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the fact is a concrete constant (paper: "either a constant
    /// or an expression").
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            DataflowValue::Int(_)
                | DataflowValue::Str(_)
                | DataflowValue::Class(_)
                | DataflowValue::Null
                | DataflowValue::PlatformConst(_)
        )
    }
}

impl fmt::Display for DataflowValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowValue::Int(v) => write!(f, "{v}"),
            DataflowValue::Str(s) => write!(f, "\"{s}\""),
            DataflowValue::Class(c) => write!(f, "class {c}"),
            DataflowValue::Null => write!(f, "null"),
            DataflowValue::PlatformConst(c) => write!(f, "{c}"),
            DataflowValue::Obj { class, site } => write!(f, "new {class}@{site}"),
            DataflowValue::Arr { site } => write!(f, "array@{site}"),
            DataflowValue::Expr(e) => write!(f, "expr({e})"),
            DataflowValue::Unknown => write!(f, "?"),
        }
    }
}

/// The forward propagation state and driver.
pub struct ForwardAnalysis<'p> {
    program: &'p Program,
    /// Dependency recorder for the delta analyzer — forward propagation
    /// reads callee bodies when binding parameters, and those reads are
    /// part of a sink site's footprint.
    trace: Option<std::sync::Arc<std::sync::Mutex<crate::context::DepTrace>>>,
    /// Per-flow fact map: (method, local) → fact.
    locals: HashMap<(MethodSig, LocalId), DataflowValue>,
    /// One global fact map for static fields (§V-B).
    statics: HashMap<FieldSig, DataflowValue>,
    /// NewObj member maps: (allocation site, member name) → fact.
    members: HashMap<(usize, String), DataflowValue>,
    /// Field facts by signature, the fallback when the base object's
    /// allocation site is unknown.
    fields_by_sig: HashMap<FieldSig, DataflowValue>,
    /// ArrayObj contents: (allocation site, index) → fact.
    arrays: HashMap<(usize, i64), DataflowValue>,
    /// Return-value facts per method.
    rets: HashMap<MethodSig, DataflowValue>,
}

impl<'p> ForwardAnalysis<'p> {
    /// Creates an analysis over `program`.
    pub fn new(program: &'p Program) -> Self {
        ForwardAnalysis {
            program,
            trace: None,
            locals: HashMap::new(),
            statics: HashMap::new(),
            members: HashMap::new(),
            fields_by_sig: HashMap::new(),
            arrays: HashMap::new(),
            rets: HashMap::new(),
        }
    }

    /// Attaches the delta analyzer's dependency recorder; every callee
    /// body this analysis reads is added to the trace.
    pub fn set_trace(
        &mut self,
        trace: Option<std::sync::Arc<std::sync::Mutex<crate::context::DepTrace>>>,
    ) {
        self.trace = trace;
    }

    /// Runs the propagation over `ssg` and returns the dataflow values of
    /// the sink's tracked parameters.
    pub fn run(&mut self, ssg: &Ssg, spec: &SinkSpec) -> Vec<DataflowValue> {
        // The static track is analyzed first (§V-A/§V-B).
        for pass in 0..3 {
            let _ = pass;
            let mut changed = false;
            for &uid in ssg.static_track() {
                changed |= self.process_unit(ssg, uid);
            }
            if !changed {
                break;
            }
        }
        // Fixpoint over the normal track.
        for _pass in 0..16 {
            let mut changed = false;
            // Execution-ish order: units were discovered backward, so the
            // reverse of discovery order approximates forward order; the
            // fixpoint protects against residual misordering.
            for uid in (0..ssg.units().len()).rev() {
                if ssg.static_track().contains(&uid) {
                    continue;
                }
                changed |= self.process_unit(ssg, uid);
            }
            changed |= self.transfer_edges(ssg);
            if !changed {
                break;
            }
        }
        // Extract sink parameter facts.
        let Some(sink) = ssg.sink_unit() else {
            return spec
                .tracked_params
                .iter()
                .map(|_| DataflowValue::Unknown)
                .collect();
        };
        let Some(ie) = sink.stmt.invoke_expr() else {
            return spec
                .tracked_params
                .iter()
                .map(|_| DataflowValue::Unknown)
                .collect();
        };
        spec.tracked_params
            .iter()
            .map(|&k| match ie.args.get(k) {
                Some(v) => self.eval_value(&sink.method, v),
                None => DataflowValue::Unknown,
            })
            .collect()
    }

    /// Propagates facts across call and return edges.
    fn transfer_edges(&mut self, ssg: &Ssg) -> bool {
        let mut changed = false;
        for &(from, to, label) in ssg.edges() {
            let (fu, tu) = (&ssg.units()[from], &ssg.units()[to]);
            match label {
                SsgEdge::Call if fu.method != tu.method => {
                    // Caller call site → callee: bind parameters.
                    let Some(ie) = fu.stmt.invoke_expr() else {
                        continue;
                    };
                    changed |= self.bind_params(&fu.method, ie, &tu.method);
                }
                SsgEdge::Return if fu.method != tu.method => {
                    // Callee return → call-site result local.
                    let Some(ret) = self.rets.get(&fu.method).cloned() else {
                        continue;
                    };
                    if let Stmt::Assign {
                        place: Place::Local(l),
                        rvalue: Rvalue::Invoke(_),
                    } = &tu.stmt
                    {
                        changed |= self.set_local(&tu.method, *l, ret);
                    }
                }
                _ => {}
            }
        }
        changed
    }

    /// Binds caller arguments (and receiver) to the callee's identity
    /// locals.
    fn bind_params(&mut self, caller: &MethodSig, ie: &InvokeExpr, callee: &MethodSig) -> bool {
        if let Some(t) = &self.trace {
            t.lock()
                .unwrap_or_else(|e| e.into_inner())
                .methods
                .insert(callee.clone());
        }
        let Some(body) = self.program.method(callee).and_then(|m| m.body()) else {
            return false;
        };
        let mut changed = false;
        let stmts = body.stmts().to_vec();
        for stmt in &stmts {
            let Stmt::Identity { local, kind } = stmt else {
                continue;
            };
            match kind {
                IdentityKind::This(_) => {
                    if let Some(b) = ie.base {
                        let fact = self.eval_value(caller, &Value::Local(b));
                        changed |= self.set_local(callee, *local, fact);
                    }
                }
                IdentityKind::Param(k, _) => {
                    if let Some(a) = ie.args.get(*k) {
                        let fact = self.eval_value(caller, a);
                        changed |= self.set_local(callee, *local, fact);
                    }
                }
                IdentityKind::CaughtException => {}
            }
        }
        changed
    }

    fn set_local(&mut self, method: &MethodSig, l: LocalId, v: DataflowValue) -> bool {
        if v == DataflowValue::Unknown {
            return false;
        }
        let key = (method.clone(), l);
        if self.locals.get(&key) == Some(&v) {
            return false;
        }
        self.locals.insert(key, v);
        true
    }

    /// Processes one SSG unit; returns whether any fact changed.
    fn process_unit(&mut self, ssg: &Ssg, uid: usize) -> bool {
        let unit = &ssg.units()[uid];
        let method = unit.method.clone();
        match &unit.stmt {
            Stmt::Assign { place, rvalue } => {
                let fact = self.eval_rvalue(&method, rvalue, uid);
                match place {
                    Place::Local(l) => self.set_local(&method, *l, fact),
                    Place::InstanceField { base, field } => {
                        let mut changed = false;
                        if let DataflowValue::Obj { site, .. } =
                            self.eval_value(&method, &Value::Local(*base))
                        {
                            let key = (site, field.name().to_string());
                            if self.members.get(&key) != Some(&fact)
                                && fact != DataflowValue::Unknown
                            {
                                self.members.insert(key, fact.clone());
                                changed = true;
                            }
                        }
                        if self.fields_by_sig.get(field) != Some(&fact)
                            && fact != DataflowValue::Unknown
                        {
                            self.fields_by_sig.insert(field.clone(), fact);
                            changed = true;
                        }
                        changed
                    }
                    Place::StaticField(f) => {
                        if self.statics.get(f) != Some(&fact) && fact != DataflowValue::Unknown {
                            self.statics.insert(f.clone(), fact);
                            true
                        } else {
                            false
                        }
                    }
                    Place::ArrayElem { base, index } => {
                        let base_fact = self.eval_value(&method, &Value::Local(*base));
                        let idx_fact = self.eval_value(&method, index);
                        if let (DataflowValue::Arr { site }, DataflowValue::Int(i)) =
                            (base_fact, idx_fact)
                        {
                            if self.arrays.get(&(site, i)) != Some(&fact)
                                && fact != DataflowValue::Unknown
                            {
                                self.arrays.insert((site, i), fact);
                                return true;
                            }
                        }
                        false
                    }
                }
            }
            Stmt::Invoke(ie) => self.model_bare_invoke(&method, ie),
            Stmt::Return(Some(v)) => {
                let fact = self.eval_value(&method, v);
                if fact != DataflowValue::Unknown && self.rets.get(&method) != Some(&fact) {
                    self.rets.insert(method, fact);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Models side effects of bare invokes: constructors that initialize
    /// objects (`StringBuilder(String)`, `Intent(ctx, class)`) and
    /// accumulator APIs (`StringBuilder.append`).
    fn model_bare_invoke(&mut self, method: &MethodSig, ie: &InvokeExpr) -> bool {
        let Some(base) = ie.base else { return false };
        let DataflowValue::Obj { class, site } = self.eval_value(method, &Value::Local(base))
        else {
            return false;
        };
        let mut changed = false;
        let callee_class = ie.callee.class().as_str();
        if ie.callee.is_init() {
            match callee_class {
                "java.lang.StringBuilder" | "java.lang.StringBuffer" => {
                    let init = ie
                        .args
                        .first()
                        .map(|a| self.stringify(method, a))
                        .unwrap_or_default();
                    let key = (site, "__sb".to_string());
                    let v = DataflowValue::Str(init);
                    if self.members.get(&key) != Some(&v) {
                        self.members.insert(key, v);
                        changed = true;
                    }
                }
                "android.content.Intent" => {
                    // Explicit target (const-class) or implicit action.
                    for a in &ie.args {
                        let fact = self.eval_value(method, a);
                        match fact {
                            DataflowValue::Class(c) => {
                                let key = (site, "__target".to_string());
                                self.members.insert(key, DataflowValue::Class(c));
                                changed = true;
                            }
                            DataflowValue::Str(s) => {
                                let key = (site, "__action".to_string());
                                self.members.insert(key, DataflowValue::Str(s));
                                changed = true;
                            }
                            _ => {}
                        }
                    }
                }
                _ => {
                    // App constructors: positional-argument record, so
                    // simple value objects propagate their ctor args.
                    for (k, a) in ie.args.iter().enumerate() {
                        let fact = self.eval_value(method, a);
                        if fact != DataflowValue::Unknown {
                            let key = (site, format!("__ctor{k}"));
                            if self.members.get(&key) != Some(&fact) {
                                self.members.insert(key, fact);
                                changed = true;
                            }
                        }
                    }
                }
            }
            return changed;
        }
        match (class.as_str(), ie.callee.name()) {
            ("java.lang.StringBuilder" | "java.lang.StringBuffer", "append") => {
                let cur = self
                    .members
                    .get(&(site, "__sb".to_string()))
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default();
                let suffix = ie
                    .args
                    .first()
                    .map(|a| self.stringify(method, a))
                    .unwrap_or_default();
                let v = DataflowValue::Str(format!("{cur}{suffix}"));
                let key = (site, "__sb".to_string());
                if self.members.get(&key) != Some(&v) {
                    self.members.insert(key, v);
                    changed = true;
                }
            }
            ("android.content.Intent", "putExtra") => {
                if let (Some(k), Some(v)) = (ie.args.first(), ie.args.get(1)) {
                    if let DataflowValue::Str(key_s) = self.eval_value(method, k) {
                        let fact = self.eval_value(method, v);
                        let key = (site, format!("extra:{key_s}"));
                        if self.members.get(&key) != Some(&fact) && fact != DataflowValue::Unknown {
                            self.members.insert(key, fact);
                            changed = true;
                        }
                    }
                }
            }
            ("android.content.Intent", "setAction") => {
                if let Some(a) = ie.args.first() {
                    let fact = self.eval_value(method, a);
                    let key = (site, "__action".to_string());
                    if self.members.get(&key) != Some(&fact) && fact != DataflowValue::Unknown {
                        self.members.insert(key, fact);
                        changed = true;
                    }
                }
            }
            _ => {}
        }
        changed
    }

    /// Evaluates a value in a method context.
    pub fn eval_value(&self, method: &MethodSig, v: &Value) -> DataflowValue {
        match v {
            Value::Const(c) => match c {
                Const::Int(i) => DataflowValue::Int(*i),
                Const::Float(fl) => DataflowValue::Expr(format!("{fl}")),
                Const::Str(s) => DataflowValue::Str(s.clone()),
                Const::Class(c) => DataflowValue::Class(c.clone()),
                Const::Null => DataflowValue::Null,
            },
            Value::Local(l) => self
                .locals
                .get(&(method.clone(), *l))
                .cloned()
                .unwrap_or(DataflowValue::Unknown),
        }
    }

    fn stringify(&self, method: &MethodSig, v: &Value) -> String {
        match self.eval_value(method, v) {
            DataflowValue::Str(s) => s,
            DataflowValue::Int(i) => i.to_string(),
            DataflowValue::Null => "null".into(),
            other => format!("{other}"),
        }
    }

    /// Evaluates an rvalue. `uid` is the evaluating SSG unit (used as the
    /// allocation site for `New`/`NewArray`).
    fn eval_rvalue(&mut self, method: &MethodSig, rvalue: &Rvalue, uid: usize) -> DataflowValue {
        match rvalue {
            Rvalue::Use(v) => self.eval_value(method, v),
            Rvalue::Cast(_, v) => self.eval_value(method, v),
            Rvalue::Length(v) => match self.eval_value(method, v) {
                DataflowValue::Arr { .. } => DataflowValue::Expr("lengthof array".into()),
                _ => DataflowValue::Unknown,
            },
            Rvalue::InstanceOf(_, _) => DataflowValue::Unknown,
            Rvalue::Read(p) => self.eval_place(method, p),
            Rvalue::Binop(op, a, b) => {
                let fa = self.eval_value(method, a);
                let fb = self.eval_value(method, b);
                fold_binop(*op, &fa, &fb)
            }
            Rvalue::New(c) => DataflowValue::Obj {
                class: c.clone(),
                site: uid,
            },
            Rvalue::NewArray(_, _) => DataflowValue::Arr { site: uid },
            Rvalue::Phi(inputs) => {
                let facts: Vec<DataflowValue> = inputs
                    .iter()
                    .map(|l| self.eval_value(method, &Value::Local(*l)))
                    .collect();
                match facts.split_first() {
                    Some((first, rest)) if rest.iter().all(|f| f == first) => first.clone(),
                    _ => DataflowValue::Expr(format!(
                        "Phi({})",
                        facts
                            .iter()
                            .map(|f| f.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                }
            }
            Rvalue::Invoke(ie) => self.eval_invoke(method, ie),
        }
    }

    fn eval_place(&self, method: &MethodSig, p: &Place) -> DataflowValue {
        match p {
            Place::Local(l) => self.eval_value(method, &Value::Local(*l)),
            Place::StaticField(f) => {
                if let Some(v) = self.statics.get(f) {
                    return v.clone();
                }
                if f.class().is_platform() {
                    // Symbolic platform constant, e.g.
                    // ALLOW_ALL_HOSTNAME_VERIFIER.
                    return DataflowValue::PlatformConst(f.clone());
                }
                DataflowValue::Unknown
            }
            Place::InstanceField { base, field } => {
                if let DataflowValue::Obj { site, .. } =
                    self.eval_value(method, &Value::Local(*base))
                {
                    if let Some(v) = self.members.get(&(site, field.name().to_string())) {
                        return v.clone();
                    }
                }
                self.fields_by_sig
                    .get(field)
                    .cloned()
                    .unwrap_or(DataflowValue::Unknown)
            }
            Place::ArrayElem { base, index } => {
                let base_fact = self.eval_value(method, &Value::Local(*base));
                let idx_fact = self.eval_value(method, index);
                if let (DataflowValue::Arr { site }, DataflowValue::Int(i)) = (base_fact, idx_fact)
                {
                    if let Some(v) = self.arrays.get(&(site, i)) {
                        return v.clone();
                    }
                }
                DataflowValue::Unknown
            }
        }
    }

    /// Models the result of a value-returning invoke: Java string APIs and
    /// app-method return facts; everything else becomes an expression.
    fn eval_invoke(&mut self, method: &MethodSig, ie: &InvokeExpr) -> DataflowValue {
        let cls = ie.callee.class().as_str();
        let name = ie.callee.name();
        match (cls, name) {
            ("java.lang.StringBuilder" | "java.lang.StringBuffer", "toString") => {
                if let Some(base) = ie.base {
                    if let DataflowValue::Obj { site, .. } =
                        self.eval_value(method, &Value::Local(base))
                    {
                        if let Some(v) = self.members.get(&(site, "__sb".to_string())) {
                            return v.clone();
                        }
                    }
                }
                DataflowValue::Unknown
            }
            ("java.lang.StringBuilder" | "java.lang.StringBuffer", "append") => {
                // Chained-style append: result aliases the builder.
                if let Some(base) = ie.base {
                    return self.eval_value(method, &Value::Local(base));
                }
                DataflowValue::Unknown
            }
            ("java.lang.String", "valueOf") => ie
                .args
                .first()
                .map(|a| DataflowValue::Str(self.stringify(method, a)))
                .unwrap_or(DataflowValue::Unknown),
            ("java.lang.String", "concat") => {
                let (Some(base), Some(arg)) = (ie.base, ie.args.first()) else {
                    return DataflowValue::Unknown;
                };
                match (
                    self.eval_value(method, &Value::Local(base)),
                    self.eval_value(method, arg),
                ) {
                    (DataflowValue::Str(a), DataflowValue::Str(b)) => {
                        DataflowValue::Str(format!("{a}{b}"))
                    }
                    _ => DataflowValue::Unknown,
                }
            }
            ("java.lang.String", "toLowerCase") => ie
                .base
                .map(|b| match self.eval_value(method, &Value::Local(b)) {
                    DataflowValue::Str(s) => DataflowValue::Str(s.to_lowercase()),
                    _ => DataflowValue::Unknown,
                })
                .unwrap_or(DataflowValue::Unknown),
            ("java.lang.String", "toUpperCase") => ie
                .base
                .map(|b| match self.eval_value(method, &Value::Local(b)) {
                    DataflowValue::Str(s) => DataflowValue::Str(s.to_uppercase()),
                    _ => DataflowValue::Unknown,
                })
                .unwrap_or(DataflowValue::Unknown),
            ("java.lang.Integer", "parseInt") => match ie.args.first() {
                Some(a) => match self.eval_value(method, a) {
                    DataflowValue::Str(s) => s
                        .parse::<i64>()
                        .map(DataflowValue::Int)
                        .unwrap_or(DataflowValue::Unknown),
                    _ => DataflowValue::Unknown,
                },
                None => DataflowValue::Unknown,
            },
            ("android.content.Intent", "getStringExtra") => {
                let (Some(base), Some(k)) = (ie.base, ie.args.first()) else {
                    return DataflowValue::Unknown;
                };
                if let (DataflowValue::Obj { site, .. }, DataflowValue::Str(key)) = (
                    self.eval_value(method, &Value::Local(base)),
                    self.eval_value(method, k),
                ) {
                    if let Some(v) = self.members.get(&(site, format!("extra:{key}"))) {
                        return v.clone();
                    }
                }
                DataflowValue::Unknown
            }
            _ => {
                // App-defined methods: use their propagated return fact.
                if let Some(ret) = self.rets.get(&ie.callee) {
                    return ret.clone();
                }
                if self.program.defines(ie.callee.class()) {
                    if let Some(resolved) =
                        self.program.resolve_dispatch(ie.callee.class(), &ie.callee)
                    {
                        if let Some(ret) = self.rets.get(&resolved) {
                            return ret.clone();
                        }
                    }
                }
                DataflowValue::Unknown
            }
        }
    }
}

/// Constant-folds a binary operation (§V-B: "we mimic arithmetic
/// operations"). String `+` concatenates; unknown operands yield an
/// expression rendering.
pub fn fold_binop(op: BinOp, a: &DataflowValue, b: &DataflowValue) -> DataflowValue {
    use DataflowValue::{Expr, Int, Str};
    match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.wrapping_add(*y)),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.wrapping_sub(*y)),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.wrapping_mul(*y)),
        (BinOp::Div, Int(x), Int(y)) if *y != 0 => Int(x.wrapping_div(*y)),
        (BinOp::Rem, Int(x), Int(y)) if *y != 0 => Int(x.wrapping_rem(*y)),
        (BinOp::And, Int(x), Int(y)) => Int(x & y),
        (BinOp::Or, Int(x), Int(y)) => Int(x | y),
        (BinOp::Xor, Int(x), Int(y)) => Int(x ^ y),
        (BinOp::Shl, Int(x), Int(y)) => Int(x.wrapping_shl(*y as u32)),
        (BinOp::Shr, Int(x), Int(y)) => Int(x.wrapping_shr(*y as u32)),
        (BinOp::Ushr, Int(x), Int(y)) => Int(((*x as u64) >> (*y as u64 & 63)) as i64),
        (BinOp::Cmp, Int(x), Int(y)) => Int((x.cmp(y) as i8) as i64),
        (BinOp::Add, Str(x), Str(y)) => Str(format!("{x}{y}")),
        (BinOp::Add, Str(x), Int(y)) => Str(format!("{x}{y}")),
        (_, DataflowValue::Unknown, _) | (_, _, DataflowValue::Unknown) => DataflowValue::Unknown,
        (op, a, b) => Expr(format!("{a} {} {b}", op.token())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_folding() {
        use DataflowValue::{Int, Str};
        assert_eq!(fold_binop(BinOp::Add, &Int(2), &Int(3)), Int(5));
        assert_eq!(fold_binop(BinOp::Mul, &Int(4), &Int(5)), Int(20));
        assert_eq!(
            fold_binop(BinOp::Div, &Int(1), &Int(0)),
            DataflowValue::Expr("1 / 0".into())
        );
        assert_eq!(
            fold_binop(BinOp::Add, &Str("AES/".into()), &Str("ECB".into())),
            Str("AES/ECB".into())
        );
        assert_eq!(
            fold_binop(BinOp::Add, &DataflowValue::Unknown, &Int(1)),
            DataflowValue::Unknown
        );
        assert_eq!(
            fold_binop(BinOp::Xor, &Int(0b1010), &Int(0b0110)),
            Int(0b1100)
        );
    }

    #[test]
    fn dataflow_value_display_and_predicates() {
        assert_eq!(DataflowValue::Int(7).to_string(), "7");
        assert_eq!(DataflowValue::Str("x".into()).to_string(), "\"x\"");
        assert!(DataflowValue::Str("x".into()).is_constant());
        assert!(!DataflowValue::Unknown.is_constant());
        assert_eq!(DataflowValue::Str("ab".into()).as_str(), Some("ab"));
        assert_eq!(DataflowValue::Int(1).as_str(), None);
        let pc = DataflowValue::PlatformConst(FieldSig::new(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "ALLOW_ALL_HOSTNAME_VERIFIER",
            backdroid_ir::Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
        ));
        assert!(pc.is_constant());
        assert!(pc.to_string().contains("ALLOW_ALL_HOSTNAME_VERIFIER"));
    }
}
