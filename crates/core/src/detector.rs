//! The data-driven detector registry: detection as *data*, not code.
//!
//! The paper's evaluation hardwires two detectors (crypto misuse and
//! SSL misconfiguration, §VI-A); earlier revisions of this codebase
//! froze that choice into hardcoded constructors and a closed dispatch.
//! This module replaces both with a first-class abstraction:
//!
//! * [`DetectorSpec`] — one detector: a stable id, the [`SinkSpec`]s it
//!   targets, and a declarative [`VerdictRule`];
//! * [`VerdictRule`] — constant-pattern / threshold / presence rules
//!   expressible as plain data, plus a closure escape hatch
//!   ([`VerdictRule::Custom`]) for rules that cannot be;
//! * [`DetectorRegistry`] — the ordered set of detectors one run vets,
//!   with **typed errors** ([`DetectorError`]) for unknown ids instead
//!   of the old silent `Undetermined` fallback.
//!
//! The built-in registries preserve the historical sink lists exactly:
//! [`DetectorRegistry::paper`] flattens to the paper's three sinks (same
//! order, same ids), and its rules are verdict-for-verdict identical to
//! the standalone `judge_*` functions — the `detector_registry` property
//! test fuzzes that equivalence. [`DetectorRegistry::full`] adds the three
//! post-paper classes (WebView JS-interface exposure, weak PRNG seeding,
//! `Runtime.exec` command injection).

use crate::detect::Verdict;
use crate::forward::DataflowValue;
use crate::sinks::{SinkRegistry, SinkSpec};
use backdroid_ir::{MethodSig, Type};
use std::sync::Arc;

/// A closure-backed verdict rule (the [`VerdictRule::Custom`] escape
/// hatch). `Arc` so detector specs stay cheaply cloneable.
pub type RuleFn = Arc<dyn Fn(&[DataflowValue]) -> Verdict + Send + Sync>;

/// Fills the `{value}` placeholder of a reason template.
fn fill(template: &str, value: &str) -> String {
    template.replace("{value}", value)
}

/// A declarative verdict rule over the recovered sink parameter values.
///
/// Every data variant judges `values.first()` — the first tracked
/// parameter — and returns [`Verdict::Undetermined`] when the value is
/// not a decidable constant of the expected shape. Reason strings are
/// templates in which `{value}` is replaced by the matched constant.
#[derive(Clone)]
pub enum VerdictRule {
    /// Constant-pattern rule over a delimited string (the crypto
    /// transformation shape `ALGO/MODE/PADDING`): an explicit second
    /// segment in `vulnerable_modes` is flagged, a delimiter-free value
    /// in `vulnerable_bare` is flagged, anything else string-valued is
    /// safe. Matching is case-insensitive (values are uppercased first).
    DelimitedPattern {
        /// Segment separator (`'/'` for cipher transformations).
        delimiter: char,
        /// Flagged second-segment values (e.g. `ECB`).
        vulnerable_modes: Vec<String>,
        /// Flagged delimiter-free values (e.g. the ECB-default ciphers).
        vulnerable_bare: Vec<String>,
        /// Reason template for a flagged mode segment.
        mode_reason: String,
        /// Reason template for a flagged bare value.
        bare_reason: String,
    },
    /// Constant-pattern rule over platform constants and instance class
    /// names (the hostname-verifier shape): a platform-constant field
    /// named in `flagged_consts` is flagged (other platform constants
    /// are safe); an instance whose simple class name contains a
    /// `flagged_fragments` entry is flagged, one containing a
    /// `cleared_fragments` entry is safe, anything else is undetermined.
    ConstPattern {
        /// Flagged platform-constant field names.
        flagged_consts: Vec<String>,
        /// Reason for a flagged constant (no placeholder).
        const_reason: String,
        /// Flagged instance simple-name fragments.
        flagged_fragments: Vec<String>,
        /// Cleared (safe) instance simple-name fragments.
        cleared_fragments: Vec<String>,
        /// Reason template for a flagged instance (`{value}` = class).
        instance_reason: String,
    },
    /// Threshold rule over an integer constant: values inside
    /// `min..=max` are flagged, other integers are safe, non-integers
    /// are undetermined (the open-port shape).
    IntInRange {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
        /// Reason template (`{value}` = the integer).
        reason: String,
    },
    /// Presence rule over a string constant: *any* resolved string is
    /// itself the finding (the exposed-socket-name shape).
    StrPresence {
        /// Reason template (`{value}` = the string).
        reason: String,
    },
    /// Presence rule over an integer constant: *any* resolved integer
    /// is itself the finding (the constant-PRNG-seed shape).
    IntPresence {
        /// Reason template (`{value}` = the integer).
        reason: String,
    },
    /// Command-pattern rule over a string constant: the first
    /// whitespace-separated token's path basename is matched against
    /// `programs`; a match is flagged, other strings are safe (the
    /// `Runtime.exec` shell-injection shape).
    CommandPattern {
        /// Flagged program basenames (e.g. `su`, `sh`).
        programs: Vec<String>,
        /// Reason template (`{value}` = the full command string).
        reason: String,
    },
    /// Escape hatch: an arbitrary closure-backed rule for verdicts no
    /// data variant expresses.
    Custom(RuleFn),
}

impl std::fmt::Debug for VerdictRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerdictRule::DelimitedPattern {
                delimiter,
                vulnerable_modes,
                vulnerable_bare,
                ..
            } => f
                .debug_struct("DelimitedPattern")
                .field("delimiter", delimiter)
                .field("vulnerable_modes", vulnerable_modes)
                .field("vulnerable_bare", vulnerable_bare)
                .finish_non_exhaustive(),
            VerdictRule::ConstPattern {
                flagged_consts,
                flagged_fragments,
                cleared_fragments,
                ..
            } => f
                .debug_struct("ConstPattern")
                .field("flagged_consts", flagged_consts)
                .field("flagged_fragments", flagged_fragments)
                .field("cleared_fragments", cleared_fragments)
                .finish_non_exhaustive(),
            VerdictRule::IntInRange { min, max, .. } => f
                .debug_struct("IntInRange")
                .field("min", min)
                .field("max", max)
                .finish_non_exhaustive(),
            VerdictRule::StrPresence { .. } => {
                f.debug_struct("StrPresence").finish_non_exhaustive()
            }
            VerdictRule::IntPresence { .. } => {
                f.debug_struct("IntPresence").finish_non_exhaustive()
            }
            VerdictRule::CommandPattern { programs, .. } => f
                .debug_struct("CommandPattern")
                .field("programs", programs)
                .finish_non_exhaustive(),
            VerdictRule::Custom(_) => f.debug_struct("Custom").finish_non_exhaustive(),
        }
    }
}

impl VerdictRule {
    /// Wraps a closure as a rule (the escape hatch, without spelling the
    /// `Arc` at the call site).
    pub fn custom(f: impl Fn(&[DataflowValue]) -> Verdict + Send + Sync + 'static) -> Self {
        VerdictRule::Custom(Arc::new(f))
    }

    /// Evaluates the rule over the recovered parameter values.
    pub fn evaluate(&self, values: &[DataflowValue]) -> Verdict {
        match self {
            VerdictRule::DelimitedPattern {
                delimiter,
                vulnerable_modes,
                vulnerable_bare,
                mode_reason,
                bare_reason,
            } => match values.first() {
                Some(DataflowValue::Str(s)) => {
                    let upper = s.to_uppercase();
                    let mut parts = upper.split(*delimiter);
                    let bare = parts.next().unwrap_or("");
                    match parts.next() {
                        Some(mode) => {
                            if vulnerable_modes.iter().any(|m| m == mode) {
                                Verdict::Vulnerable(fill(mode_reason, s))
                            } else {
                                Verdict::Safe
                            }
                        }
                        None => {
                            if vulnerable_bare.iter().any(|b| b == bare) {
                                Verdict::Vulnerable(fill(bare_reason, s))
                            } else {
                                Verdict::Safe
                            }
                        }
                    }
                }
                _ => Verdict::Undetermined,
            },
            VerdictRule::ConstPattern {
                flagged_consts,
                const_reason,
                flagged_fragments,
                cleared_fragments,
                instance_reason,
            } => match values.first() {
                Some(DataflowValue::PlatformConst(field)) => {
                    if flagged_consts.iter().any(|c| c == field.name()) {
                        Verdict::Vulnerable(const_reason.clone())
                    } else {
                        Verdict::Safe
                    }
                }
                Some(DataflowValue::Obj { class, .. }) => {
                    let n = class.simple_name();
                    if flagged_fragments.iter().any(|p| n.contains(p.as_str())) {
                        Verdict::Vulnerable(fill(instance_reason, &class.to_string()))
                    } else if cleared_fragments.iter().any(|p| n.contains(p.as_str())) {
                        Verdict::Safe
                    } else {
                        Verdict::Undetermined
                    }
                }
                _ => Verdict::Undetermined,
            },
            VerdictRule::IntInRange { min, max, reason } => match values.first() {
                Some(DataflowValue::Int(v)) if v >= min && v <= max => {
                    Verdict::Vulnerable(fill(reason, &v.to_string()))
                }
                Some(DataflowValue::Int(_)) => Verdict::Safe,
                _ => Verdict::Undetermined,
            },
            VerdictRule::StrPresence { reason } => match values.first() {
                Some(DataflowValue::Str(s)) => Verdict::Vulnerable(fill(reason, s)),
                _ => Verdict::Undetermined,
            },
            VerdictRule::IntPresence { reason } => match values.first() {
                Some(DataflowValue::Int(v)) => Verdict::Vulnerable(fill(reason, &v.to_string())),
                _ => Verdict::Undetermined,
            },
            VerdictRule::CommandPattern { programs, reason } => match values.first() {
                Some(DataflowValue::Str(cmd)) => {
                    let program = cmd.split_whitespace().next().unwrap_or("");
                    let base = program.rsplit('/').next().unwrap_or(program);
                    if programs.iter().any(|p| p == base) {
                        Verdict::Vulnerable(fill(reason, cmd))
                    } else {
                        Verdict::Safe
                    }
                }
                _ => Verdict::Undetermined,
            },
            VerdictRule::Custom(f) => f(values),
        }
    }
}

/// One detector: a stable id (the request-level granularity the service
/// protocol speaks), the sink APIs it targets, and its verdict rule.
#[derive(Clone, Debug)]
pub struct DetectorSpec {
    /// Stable detector id (`crypto`, `ssl`, `webview`, …). This is what
    /// goes on the JSONL/socket protocol as a "sink class".
    pub id: String,
    /// The sink APIs this detector judges.
    pub sinks: Vec<SinkSpec>,
    /// The verdict rule applied to every one of this detector's sinks.
    pub rule: VerdictRule,
}

impl DetectorSpec {
    /// Creates a detector spec.
    pub fn new(id: impl Into<String>, sinks: Vec<SinkSpec>, rule: VerdictRule) -> Self {
        DetectorSpec {
            id: id.into(),
            sinks,
            rule,
        }
    }
}

/// Why a registry operation failed. Unknown ids are **typed errors** at
/// registration/query time — never a silent `Undetermined` verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DetectorError {
    /// No registered detector has this id.
    UnknownDetector(String),
    /// No registered detector targets this sink id.
    UnknownSink(String),
    /// A detector with this id is already registered.
    DuplicateDetector(String),
    /// Another detector already targets this sink id.
    DuplicateSink(String),
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::UnknownDetector(id) => write!(f, "unknown detector id {id:?}"),
            DetectorError::UnknownSink(id) => write!(f, "no detector targets sink id {id:?}"),
            DetectorError::DuplicateDetector(id) => {
                write!(f, "detector id {id:?} is already registered")
            }
            DetectorError::DuplicateSink(id) => {
                write!(f, "sink id {id:?} is already targeted by another detector")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// The ordered set of detectors one analysis run vets.
/// [`DetectorRegistry::sink_registry`] flattens the detectors (in
/// registration order) into the sink list the locate/slice pipeline
/// consumes, and [`DetectorRegistry::judge`] dispatches verdicts through
/// a registry lookup that fails typed on unknown sink ids.
#[derive(Clone, Debug, Default)]
pub struct DetectorRegistry {
    detectors: Vec<DetectorSpec>,
}

impl DetectorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's evaluation set (§VI-A): the `crypto` and `ssl`
    /// detectors, flattening to `Cipher.getInstance` plus the two
    /// `setHostnameVerifier` overloads.
    pub fn paper() -> Self {
        let mut r = Self::new();
        for spec in [crypto_detector(), ssl_detector()] {
            r.register(spec).expect("built-in detectors are disjoint");
        }
        r
    }

    /// The paper set plus the uncommon §VI-D detectors (`sms`,
    /// `socket.server`, `socket.local`).
    pub fn extended() -> Self {
        let mut r = Self::paper();
        for spec in [
            sms_detector(),
            server_socket_detector(),
            local_socket_detector(),
        ] {
            r.register(spec).expect("built-in detectors are disjoint");
        }
        r
    }

    /// Every built-in detector: the extended set plus the three
    /// post-paper classes — `webview` (JS-interface exposure), `prng`
    /// (weak seeding), and `exec` (command injection).
    pub fn full() -> Self {
        let mut r = Self::extended();
        for spec in [webview_detector(), prng_detector(), exec_detector()] {
            r.register(spec).expect("built-in detectors are disjoint");
        }
        r
    }

    /// Registers a detector. Duplicate detector ids and sink ids already
    /// targeted by another detector are typed errors.
    pub fn register(&mut self, spec: DetectorSpec) -> Result<(), DetectorError> {
        if self.detectors.iter().any(|d| d.id == spec.id) {
            return Err(DetectorError::DuplicateDetector(spec.id));
        }
        for sink in &spec.sinks {
            if self
                .detectors
                .iter()
                .flat_map(|d| &d.sinks)
                .any(|s| s.id == sink.id)
            {
                return Err(DetectorError::DuplicateSink(sink.id.clone()));
            }
        }
        self.detectors.push(spec);
        Ok(())
    }

    /// All detectors, in registration order.
    pub fn detectors(&self) -> &[DetectorSpec] {
        &self.detectors
    }

    /// The registered detector ids, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.detectors.iter().map(|d| d.id.as_str()).collect()
    }

    /// Whether a detector with this id is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.detectors.iter().any(|d| d.id == id)
    }

    /// The detector with this id, or a typed error.
    pub fn get(&self, id: &str) -> Result<&DetectorSpec, DetectorError> {
        self.detectors
            .iter()
            .find(|d| d.id == id)
            .ok_or_else(|| DetectorError::UnknownDetector(id.to_string()))
    }

    /// The verdict rule owning `sink_id`, or a typed error — an unknown
    /// sink id never degrades to a silent `Undetermined`.
    pub fn rule_for(&self, sink_id: &str) -> Result<&VerdictRule, DetectorError> {
        self.detectors
            .iter()
            .find(|d| d.sinks.iter().any(|s| s.id == sink_id))
            .map(|d| &d.rule)
            .ok_or_else(|| DetectorError::UnknownSink(sink_id.to_string()))
    }

    /// Judges recovered parameter values for `sink_id` through the
    /// owning detector's rule. Unknown sink ids are a typed error.
    pub fn judge(&self, sink_id: &str, values: &[DataflowValue]) -> Result<Verdict, DetectorError> {
        Ok(self.rule_for(sink_id)?.evaluate(values))
    }

    /// A sub-registry restricted to the requested detector ids, keeping
    /// this registry's order. Any unknown id is a typed error — the
    /// service layer turns it into a deterministic error response.
    pub fn select<S: AsRef<str>>(&self, ids: &[S]) -> Result<DetectorRegistry, DetectorError> {
        for id in ids {
            if !self.contains(id.as_ref()) {
                return Err(DetectorError::UnknownDetector(id.as_ref().to_string()));
            }
        }
        Ok(DetectorRegistry {
            detectors: self
                .detectors
                .iter()
                .filter(|d| ids.iter().any(|id| id.as_ref() == d.id))
                .cloned()
                .collect(),
        })
    }

    /// Flattens the detectors (registration order, then per-detector
    /// sink order) into the [`SinkRegistry`] the locate/slice pipeline
    /// consumes.
    pub fn sink_registry(&self) -> SinkRegistry {
        let mut r = SinkRegistry::new();
        for d in &self.detectors {
            for s in &d.sinks {
                r.add(s.clone());
            }
        }
        r
    }
}

// ---------------------------------------------------------------------
// Built-in detectors: each one is a datum, not a code path.
// ---------------------------------------------------------------------

fn crypto_detector() -> DetectorSpec {
    DetectorSpec::new(
        "crypto",
        vec![SinkSpec::new(
            "crypto.cipher",
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![0],
        )],
        VerdictRule::DelimitedPattern {
            delimiter: '/',
            vulnerable_modes: vec!["ECB".into()],
            // Block ciphers that default to ECB when no mode is given.
            vulnerable_bare: ["AES", "DES", "DESEDE", "BLOWFISH", "RC2"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            mode_reason: "explicit ECB mode in \"{value}\"".into(),
            bare_reason: "bare \"{value}\" defaults to ECB for block ciphers".into(),
        },
    )
}

fn ssl_detector() -> DetectorSpec {
    DetectorSpec::new(
        "ssl",
        vec![
            SinkSpec::new(
                "ssl.verifier.factory",
                MethodSig::new(
                    "org.apache.http.conn.ssl.SSLSocketFactory",
                    "setHostnameVerifier",
                    vec![Type::object(
                        "org.apache.http.conn.ssl.X509HostnameVerifier",
                    )],
                    Type::Void,
                ),
                vec![0],
            ),
            SinkSpec::new(
                "ssl.verifier.connection",
                MethodSig::new(
                    "javax.net.ssl.HttpsURLConnection",
                    "setHostnameVerifier",
                    vec![Type::object("javax.net.ssl.HostnameVerifier")],
                    Type::Void,
                ),
                vec![0],
            ),
        ],
        VerdictRule::ConstPattern {
            flagged_consts: vec!["ALLOW_ALL_HOSTNAME_VERIFIER".into()],
            const_reason: "ALLOW_ALL_HOSTNAME_VERIFIER disables hostname checks".into(),
            flagged_fragments: vec!["AllowAll".into(), "NullHostnameVerifier".into()],
            cleared_fragments: vec!["Strict".into(), "BrowserCompat".into()],
            instance_reason: "permissive verifier instance {value}".into(),
        },
    )
}

fn sms_detector() -> DetectorSpec {
    DetectorSpec::new(
        "sms",
        vec![SinkSpec::new(
            "sms.send",
            MethodSig::new(
                "android.telephony.SmsManager",
                "sendTextMessage",
                vec![
                    Type::string(),
                    Type::string(),
                    Type::string(),
                    Type::object("android.app.PendingIntent"),
                    Type::object("android.app.PendingIntent"),
                ],
                Type::Void,
            ),
            vec![0, 2],
        )],
        // The escape hatch in action: the premium-short-code check
        // (3–6 digits after an optional '+') needs string scanning no
        // data rule expresses, so it stays a closure.
        VerdictRule::custom(crate::detect::judge_sms),
    )
}

fn server_socket_detector() -> DetectorSpec {
    DetectorSpec::new(
        "socket.server",
        vec![SinkSpec::new(
            "socket.server",
            MethodSig::new(
                "java.net.ServerSocket",
                "<init>",
                vec![Type::Int],
                Type::Void,
            ),
            vec![0],
        )],
        VerdictRule::IntInRange {
            min: 1024,
            max: 65535,
            reason: "app opens TCP port {value} to the network".into(),
        },
    )
}

fn local_socket_detector() -> DetectorSpec {
    DetectorSpec::new(
        "socket.local",
        vec![SinkSpec::new(
            "socket.local",
            MethodSig::new(
                "android.net.LocalServerSocket",
                "<init>",
                vec![Type::string()],
                Type::Void,
            ),
            vec![0],
        )],
        VerdictRule::StrPresence {
            reason: "exposed Unix domain socket \"{value}\"".into(),
        },
    )
}

fn webview_detector() -> DetectorSpec {
    DetectorSpec::new(
        "webview",
        vec![SinkSpec::new(
            "webview.jsinterface",
            MethodSig::new(
                "android.webkit.WebView",
                "addJavascriptInterface",
                vec![Type::object("java.lang.Object"), Type::string()],
                Type::Void,
            ),
            // Track the exported bridge *name* (parameter 1), not the
            // bridge object.
            vec![1],
        )],
        VerdictRule::StrPresence {
            reason: "JavaScript bridge \"{value}\" exposed to WebView content".into(),
        },
    )
}

fn prng_detector() -> DetectorSpec {
    DetectorSpec::new(
        "prng",
        vec![SinkSpec::new(
            "prng.seed",
            MethodSig::new("java.util.Random", "<init>", vec![Type::Long], Type::Void),
            vec![0],
        )],
        VerdictRule::IntPresence {
            reason: "PRNG seeded with constant {value}".into(),
        },
    )
}

fn exec_detector() -> DetectorSpec {
    DetectorSpec::new(
        "exec",
        vec![SinkSpec::new(
            "exec.command",
            MethodSig::new(
                "java.lang.Runtime",
                "exec",
                vec![Type::string()],
                Type::object("java.lang.Process"),
            ),
            vec![0],
        )],
        VerdictRule::CommandPattern {
            programs: vec!["su".into(), "sh".into(), "bash".into()],
            reason: "shell command \"{value}\" passed to Runtime.exec".into(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Vec<DataflowValue> {
        vec![DataflowValue::Str(v.into())]
    }

    #[test]
    fn built_in_registries_nest_and_flatten_in_order() {
        let paper = DetectorRegistry::paper();
        assert_eq!(paper.ids(), ["crypto", "ssl"]);
        let paper_sinks = paper.sink_registry();
        let flat: Vec<&str> = paper_sinks.sinks().iter().map(|s| s.id.as_str()).collect();
        assert_eq!(
            flat,
            [
                "crypto.cipher",
                "ssl.verifier.factory",
                "ssl.verifier.connection"
            ]
        );
        let extended = DetectorRegistry::extended();
        assert_eq!(
            extended.ids(),
            ["crypto", "ssl", "sms", "socket.server", "socket.local"]
        );
        let full = DetectorRegistry::full();
        assert_eq!(full.detectors().len(), 8);
        assert_eq!(full.sink_registry().sinks().len(), 9);
    }

    #[test]
    fn unknown_ids_are_typed_errors_not_silent_verdicts() {
        let r = DetectorRegistry::paper();
        assert_eq!(
            r.judge("unknown.sink", &s("x")),
            Err(DetectorError::UnknownSink("unknown.sink".into()))
        );
        assert_eq!(
            r.get("sms").unwrap_err(),
            DetectorError::UnknownDetector("sms".into())
        );
        assert_eq!(
            r.select(&["crypto", "nope"]).unwrap_err(),
            DetectorError::UnknownDetector("nope".into())
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = DetectorRegistry::paper();
        assert_eq!(
            r.register(super::crypto_detector()).unwrap_err(),
            DetectorError::DuplicateDetector("crypto".into())
        );
        let clash = DetectorSpec::new(
            "crypto2",
            vec![SinkSpec::new(
                "crypto.cipher",
                MethodSig::new("x.Y", "z", vec![], Type::Void),
                vec![0],
            )],
            VerdictRule::StrPresence { reason: "x".into() },
        );
        assert_eq!(
            r.register(clash).unwrap_err(),
            DetectorError::DuplicateSink("crypto.cipher".into())
        );
    }

    #[test]
    fn select_preserves_registry_order_and_legacy_names_resolve() {
        let r = DetectorRegistry::extended();
        // Request order does not matter; registry order wins.
        let sub = r.select(&["ssl", "crypto"]).unwrap();
        assert_eq!(sub.ids(), ["crypto", "ssl"]);
        // The legacy wire names ARE detector ids, so they keep parsing.
        assert!(r.select(&["crypto"]).is_ok() && r.select(&["ssl"]).is_ok());
        let empty = r.select::<&str>(&[]).unwrap();
        assert!(empty.detectors().is_empty());
    }

    #[test]
    fn data_rules_reproduce_the_legacy_reason_strings() {
        let r = DetectorRegistry::full();
        assert_eq!(
            r.judge("crypto.cipher", &s("AES/ECB/PKCS5Padding"))
                .unwrap(),
            Verdict::Vulnerable("explicit ECB mode in \"AES/ECB/PKCS5Padding\"".into())
        );
        assert_eq!(
            r.judge("crypto.cipher", &s("des")).unwrap(),
            Verdict::Vulnerable("bare \"des\" defaults to ECB for block ciphers".into())
        );
        assert_eq!(
            r.judge("socket.local", &s("debug_port")).unwrap(),
            Verdict::Vulnerable("exposed Unix domain socket \"debug_port\"".into())
        );
        assert_eq!(
            r.judge("socket.server", &[DataflowValue::Int(8089)])
                .unwrap(),
            Verdict::Vulnerable("app opens TCP port 8089 to the network".into())
        );
        assert_eq!(
            r.judge("sms.send", &s("12345")).unwrap(),
            Verdict::Vulnerable("SMS to hard-coded premium short code 12345".into())
        );
    }

    #[test]
    fn new_class_rules_judge_their_shapes() {
        let r = DetectorRegistry::full();
        assert!(r
            .judge("webview.jsinterface", &s("jsBridge"))
            .unwrap()
            .is_vulnerable());
        assert_eq!(
            r.judge("webview.jsinterface", &[DataflowValue::Unknown])
                .unwrap(),
            Verdict::Undetermined
        );
        assert!(r
            .judge("prng.seed", &[DataflowValue::Int(42)])
            .unwrap()
            .is_vulnerable());
        assert_eq!(
            r.judge("prng.seed", &[DataflowValue::Unknown]).unwrap(),
            Verdict::Undetermined
        );
        assert!(r
            .judge("exec.command", &s("su -c id"))
            .unwrap()
            .is_vulnerable());
        assert!(r
            .judge("exec.command", &s("/system/xbin/su -c id"))
            .unwrap()
            .is_vulnerable());
        assert_eq!(
            r.judge("exec.command", &s("getprop ro.build.version.sdk"))
                .unwrap(),
            Verdict::Safe
        );
        assert_eq!(
            r.judge("exec.command", &[DataflowValue::Unknown]).unwrap(),
            Verdict::Undetermined
        );
    }

    #[test]
    fn custom_rule_escape_hatch_wraps_closures() {
        let rule = VerdictRule::custom(|vs| {
            if vs.is_empty() {
                Verdict::Undetermined
            } else {
                Verdict::Safe
            }
        });
        assert_eq!(rule.evaluate(&[]), Verdict::Undetermined);
        assert_eq!(rule.evaluate(&s("x")), Verdict::Safe);
        assert!(format!("{rule:?}").contains("Custom"));
    }
}
