//! # backdroid-core
//!
//! A from-scratch reproduction of **BackDroid** — "When Program Analysis
//! Meets Bytecode Search: Targeted and Efficient Inter-procedural Analysis
//! of Modern Android Apps" (Wu et al., DSN 2021).
//!
//! BackDroid avoids whole-app call-graph construction entirely. It greps
//! the disassembled bytecode *text* on the fly whenever a caller must be
//! located, steering a backward, targeted inter-procedural analysis from
//! security-sensitive sink API calls up to Android entry points:
//!
//! 1. **Locate sinks** by text search ([`locate_sinks`]).
//! 2. **Backtrack** with the basic signature search, child-class
//!    signatures, the advanced forward-object-taint search (for super
//!    classes / interfaces / callbacks / async flows), and the special
//!    `<clinit>` / ICC / lifecycle searches ([`find_callers`]).
//! 3. **Slice** backward into a self-contained slicing graph
//!    ([`Ssg`], [`slice_sink`]).
//! 4. **Propagate** constants and points-to facts forward over the SSG
//!    ([`ForwardAnalysis`]) and **judge** the recovered sink parameters
//!    through the [`DetectorRegistry`]'s verdict rules.
//!
//! ## Sessions and intra-app parallelism
//!
//! The preprocessing products — IR program, manifest, indexed dump —
//! live in an owned, `Send + Sync` [`AppArtifacts`] with no lifetime
//! parameter: build it once, share it by `Arc` (a resident app image
//! serving many queries), and start cheap per-task [`TaskContext`]s with
//! [`AppArtifacts::task`]. [`Backdroid::analyze`] schedules independent
//! sink sites over `BackdroidOptions::intra_threads` workers against one
//! shared search engine; reports and statistics are deterministic for
//! any thread count (see [`engine`]'s module docs for the contract).
//!
//! ```
//! use backdroid_core::{Backdroid, DetectorRegistry};
//! use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Program, Type, Value};
//! use backdroid_manifest::{Component, ComponentKind, Manifest};
//!
//! // An activity that creates an ECB cipher in onCreate().
//! let act = ClassName::new("com.example.Main");
//! let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
//! on_create.invoke(InvokeExpr::call_static(
//!     MethodSig::new("javax.crypto.Cipher", "getInstance",
//!                    vec![Type::string()], Type::object("javax.crypto.Cipher")),
//!     vec![Value::str("AES/ECB/PKCS5Padding")],
//! ));
//! let mut program = Program::new();
//! program.add_class(ClassBuilder::new("com.example.Main")
//!     .extends("android.app.Activity")
//!     .method(on_create.build())
//!     .build());
//! let mut manifest = Manifest::new("com.example");
//! manifest.register(Component::new(ComponentKind::Activity, "com.example.Main"));
//!
//! let report = Backdroid::new().analyze(&program, &manifest);
//! assert_eq!(report.vulnerable_sinks().len(), 1);
//! # assert!(DetectorRegistry::paper().contains("crypto"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;
pub mod backtrack;
pub mod chunks;
pub mod clinit;
pub mod context;
pub mod detect;
pub mod detector;
pub mod engine;
pub mod forward;
pub mod icc;
pub mod leak;
pub mod locate;
pub mod loops;
pub mod reflection;
pub mod sinks;
pub mod slicer;
pub mod snapshot;
pub mod ssg;

pub use backdroid_search::BackendChoice;
pub use backtrack::{find_callers, CallerEdge, ChainStep, EdgeKind, Reached};
pub use chunks::{
    apply_delta, chunk_key, class_chunk_bytes, classify_delta, ChunkError, ChunkManifest,
    ChunkStore, DeltaKind, DeltaManifest,
};
pub use context::{AppArtifacts, DepTrace, TaskContext};
pub use detect::{judge_cipher, judge_verifier, Verdict};
pub use detector::{DetectorError, DetectorRegistry, DetectorSpec, RuleFn, VerdictRule};
pub use engine::{
    AppReport, Backdroid, BackdroidOptions, DeltaBase, DeltaStats, PhaseTimings, SinkCacheStats,
    SinkReport, SiteTrace,
};
pub use forward::{fold_binop, DataflowValue, ForwardAnalysis};
pub use leak::{default_leak_sinks, default_sources, detect_leaks, Leak, LeakSinkSpec, SourceSpec};
pub use locate::{locate_sinks, SinkSite};
pub use loops::{LoopKind, LoopStats, PathGuard};
pub use reflection::{reflective_callers, resolve_reflective_calls, ReflectiveCall};
pub use sinks::{SinkRegistry, SinkSpec};
pub use slicer::{slice_sink, SliceResult, SlicerConfig};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use ssg::{AppSsg, Ssg, SsgEdge, SsgUnit, TaintSet};
