//! Dead method-loop detection (paper §IV-F, Fig 5).
//!
//! Four loop kinds are distinguished: cross/inner × backward/forward.
//! A *cross* loop repeats a method across inter-procedural steps; an
//! *inner* loop repeats a method within one maintained call chain. The
//! evaluation reports that at least one loop is detected in 60% of apps
//! and that `CrossBackward` is the most common kind.

use backdroid_ir::MethodSig;
use serde::Serialize;
use std::collections::BTreeMap;

/// The four loop kinds named by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize)]
pub enum LoopKind {
    /// Backward method search revisits a method already on the backtrack
    /// path (Fig 5: `C = A`).
    CrossBackward,
    /// A maintained backward call chain repeats a method (Fig 5: `B3 = B1`).
    InnerBackward,
    /// Forward object-taint propagation revisits a method on its path.
    CrossForward,
    /// A forward call chain repeats a method.
    InnerForward,
}

/// Per-app loop counters.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize)]
pub struct LoopStats {
    counts: BTreeMap<LoopKind, u64>,
}

impl LoopStats {
    /// Records one detected loop.
    pub fn record(&mut self, kind: LoopKind) {
        *self.counts.entry(kind).or_insert(0) += 1;
    }

    /// The count for one kind.
    pub fn count(&self, kind: LoopKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total loops detected.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether any loop was detected (the per-app "optimized" flag used by
    /// the 60%-of-apps statistic).
    pub fn any(&self) -> bool {
        self.total() > 0
    }

    /// The most common kind, if any loop was recorded.
    pub fn most_common(&self) -> Option<LoopKind> {
        self.counts.iter().max_by_key(|(_, c)| **c).map(|(k, _)| *k)
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &LoopStats) {
        for (k, c) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += c;
        }
    }
}

/// A path-scoped loop guard: detects when `candidate` already appears on
/// the current inter-procedural path.
#[derive(Clone, Debug, Default)]
pub struct PathGuard {
    path: Vec<MethodSig>,
}

impl PathGuard {
    /// An empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a guard seeded with an existing path.
    pub fn with_path(path: Vec<MethodSig>) -> Self {
        PathGuard { path }
    }

    /// The current path.
    pub fn path(&self) -> &[MethodSig] {
        &self.path
    }

    /// Current path depth.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Whether pushing `candidate` would close a loop.
    pub fn would_loop(&self, candidate: &MethodSig) -> bool {
        self.path.contains(candidate)
    }

    /// Pushes a method, returning `false` (and leaving the path unchanged)
    /// if it would close a loop.
    pub fn push(&mut self, m: MethodSig) -> bool {
        if self.would_loop(&m) {
            return false;
        }
        self.path.push(m);
        true
    }

    /// Pops the most recent method.
    pub fn pop(&mut self) -> Option<MethodSig> {
        self.path.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::Type;

    fn sig(name: &str) -> MethodSig {
        MethodSig::new("com.a.B", name, vec![], Type::Void)
    }

    #[test]
    fn stats_counting() {
        let mut s = LoopStats::default();
        assert!(!s.any());
        s.record(LoopKind::CrossBackward);
        s.record(LoopKind::CrossBackward);
        s.record(LoopKind::InnerForward);
        assert_eq!(s.count(LoopKind::CrossBackward), 2);
        assert_eq!(s.total(), 3);
        assert!(s.any());
        assert_eq!(s.most_common(), Some(LoopKind::CrossBackward));
    }

    #[test]
    fn stats_merge() {
        let mut a = LoopStats::default();
        a.record(LoopKind::CrossForward);
        let mut b = LoopStats::default();
        b.record(LoopKind::CrossForward);
        b.record(LoopKind::InnerBackward);
        a.merge(&b);
        assert_eq!(a.count(LoopKind::CrossForward), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn guard_detects_cycles() {
        let mut g = PathGuard::new();
        assert!(g.push(sig("a")));
        assert!(g.push(sig("b")));
        assert!(g.would_loop(&sig("a")));
        assert!(!g.push(sig("a")));
        assert_eq!(g.depth(), 2);
        assert_eq!(g.pop(), Some(sig("b")));
        assert!(g.push(sig("b")));
    }
}
