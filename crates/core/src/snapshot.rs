//! Persistent app-image snapshots: a compact, versioned, checksummed
//! binary encoding of [`AppArtifacts`].
//!
//! BackDroid's preprocessing — encode to DEX, disassemble, index the
//! plaintext (§III) — is the whole cost of a cold app load. A snapshot
//! captures every preprocessing product (IR program, manifest, indexed
//! [`BytecodeText`] *with* its posting lists), so restoring an app image
//! is a cheap decode instead of a re-parse: the disk tier of the
//! serving layer's two-tier store persists exactly this format.
//!
//! ## Container layout
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"BDSNAP\r\n"  (the \r\n catches text-mode mangling)
//!      8     4  format version, u32 LE   (SNAPSHOT_VERSION)
//!     12     8  payload length, u64 LE
//!     20     n  payload: section directory + section blobs
//!   20+n     8  checksum of the section directory, u64 LE
//! ```
//!
//! The payload opens with a **section directory** — a section count
//! byte, then per section its id byte, varint length, and a checksum of
//! the blob — followed by the blobs in id order. Checksums are
//! lane-widened FNV-1a ([`backdroid_ir::wire::fnv1a64_wide`]), and every
//! payload byte is covered by exactly one: blobs by their directory
//! entries, the directory itself by the trailer — so a restore makes a
//! single fast hash pass over the file.
//!
//! ```text
//! id  section   contents                                decoded
//!  0  program   class/method counts + wire IR program   on first touch
//!  1  manifest  wire-encoded manifest                   eagerly
//!  2  text      dump arena + line table + descs         on first touch
//!  3  spans     method spans + line → span map          on first touch
//!  4  symbols   interned search tokens                  on first touch
//!  5  postings  flattened posting lists + owners        on first touch
//!  6  chunks    per-class chunk manifest                eagerly
//! ```
//!
//! Each section is independently checksummed, but only the manifest is
//! *decoded* eagerly: the program section parks its blob behind a
//! `OnceLock` inside [`AppArtifacts`] (its count prefix answers the
//! store's `estimated_bytes` accounting up front), and the text and
//! index sections park inside [`BytecodeText::from_sections`] after
//! structural validation — a disk-warm load that only answers
//! manifest-level questions never pays the program decode, the arena
//! copy, or the posting-list build, so restore cost scales with what a
//! request reads, not with app size (the paper's §IV search-cost
//! argument applied to the persistence layer).
//!
//! The payload uses the deterministic wire vocabulary of
//! [`backdroid_ir::wire`], so **equal artifacts encode byte-identically**
//! — `to_snapshot(from_snapshot(b)) == b` — and CI can diff snapshots
//! across runs. Decoding is total: truncation, magic/version/checksum
//! mismatches, and structurally corrupt payloads all surface as
//! [`SnapshotError`], never as a panic, which is what lets the app store
//! fall back to a fresh parse when a disk snapshot has rotted.
//!
//! The search **backend choice is runtime configuration, not data**: it
//! is deliberately excluded from the format, and the restorer picks it —
//! both backends are hit-for-hit identical over the same text, so one
//! snapshot serves either.
//!
//! [`BytecodeText`]: backdroid_search::BytecodeText
//! [`BytecodeText::from_sections`]: backdroid_search::BytecodeText::from_sections

use crate::context::AppArtifacts;
use backdroid_ir::wire::{self, fnv1a64_wide, WireError, WireReader, WireWriter};
use backdroid_manifest::snapshot::{read_manifest, write_manifest};
use backdroid_search::{BackendChoice, BytecodeText};
use std::fmt;

/// The 8-byte container magic. `\r\n` inside the magic makes any
/// CRLF-translating copy fail loudly at the first check.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BDSNAP\r\n";

/// The current snapshot format version. Bump on **any** payload layout
/// change: readers reject other versions and the store re-parses.
/// Version 2 introduced the section directory and the interned,
/// arena-backed text sections; version 3 added the per-class chunk
/// manifest section that anchors incremental updates
/// (see [`crate::chunks`]).
pub const SNAPSHOT_VERSION: u32 = 3;

/// Bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Number of payload sections; ids `0..SECTION_COUNT` in order.
const SECTION_COUNT: usize = 7;

/// Why a snapshot failed to load. Every variant is an expected runtime
/// condition for the disk tier (partially written file, stale format,
/// bit rot), so loading is total and the caller can fall back to a
/// fresh parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The input ends before the container it promises.
    Truncated,
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container is a different format version.
    VersionMismatch {
        /// Version found in the container.
        found: u32,
        /// Version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The payload (or one of its sections) does not hash to the stored
    /// checksum.
    ChecksumMismatch,
    /// Bytes follow the checksum — the file is not one clean container.
    TrailingBytes,
    /// The checksummed payload decoded to something structurally invalid
    /// (possible only on a hash collision or a buggy writer, so it is
    /// still reported, never trusted).
    Decode(WireError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a BackDroid snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            SnapshotError::Decode(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Decode(e)
    }
}

fn malformed(m: &str) -> SnapshotError {
    SnapshotError::Decode(WireError::Malformed(m.to_string()))
}

/// Decodes one fully-consumed section blob.
fn decode_section<T>(
    blob: &[u8],
    read: impl FnOnce(&mut WireReader<'_>) -> Result<T, WireError>,
) -> Result<T, SnapshotError> {
    let mut r = WireReader::new(blob);
    let value = read(&mut r)?;
    if !r.is_empty() {
        return Err(malformed("unconsumed section bytes"));
    }
    Ok(value)
}

impl AppArtifacts {
    /// Serializes these artifacts into one self-contained snapshot:
    /// header, section directory, wire-encoded section blobs (program,
    /// manifest, text arena, method spans, symbol table, posting
    /// lists), checksum. Forces the lazy posting-list index first, so a
    /// restored image never re-tokenizes.
    ///
    /// Deterministic: equal artifacts produce byte-identical snapshots,
    /// and `AppArtifacts::from_snapshot(&a.to_snapshot(), _)` followed
    /// by `to_snapshot` reproduces the input bytes exactly.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let text = self.engine().text();
        let mut sections: Vec<Vec<u8>> = Vec::with_capacity(SECTION_COUNT);
        for id in 0..SECTION_COUNT {
            let mut w = WireWriter::new();
            match id {
                0 => {
                    // Count prefix: lets a restore answer
                    // `estimated_bytes` without decoding the program.
                    let program = self.program();
                    w.put_len(program.class_count());
                    w.put_len(program.method_count());
                    wire::write_program(&mut w, program);
                }
                1 => write_manifest(&mut w, self.manifest()),
                2 => text.write_text_section(&mut w),
                3 => text.write_spans_section(&mut w),
                4 => text.write_symbols_section(&mut w),
                5 => text.write_postings_section(&mut w),
                _ => self.chunk_manifest().write(&mut w),
            }
            sections.push(w.into_bytes());
        }

        let mut dir = WireWriter::new();
        dir.put_u8(SECTION_COUNT as u8);
        for (id, blob) in sections.iter().enumerate() {
            dir.put_u8(id as u8);
            dir.put_len(blob.len());
            dir.put_u64(fnv1a64_wide(blob));
        }
        let dir = dir.into_bytes();
        let dir_sum = fnv1a64_wide(&dir);
        let payload_len = dir.len() + sections.iter().map(Vec::len).sum::<usize>();

        let mut out = Vec::with_capacity(HEADER_LEN + payload_len + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload_len as u64).to_le_bytes());
        out.extend_from_slice(&dir);
        for blob in &sections {
            out.extend_from_slice(blob);
        }
        out.extend_from_slice(&dir_sum.to_le_bytes());
        out
    }

    /// Restores artifacts from a snapshot produced by
    /// [`AppArtifacts::to_snapshot`], wrapping the decoded text in a
    /// fresh engine on `backend` (the backend is runtime configuration
    /// and not part of the format). Total: every corruption mode maps
    /// to a [`SnapshotError`].
    ///
    /// **Lazy**: only the manifest section decodes now (plus the
    /// program section's count prefix). The program blob and the
    /// structurally-validated text/index sections materialize when
    /// something first reads them — see the module docs and
    /// [`BytecodeText::from_sections`].
    pub fn from_snapshot(
        bytes: &[u8],
        backend: BackendChoice,
    ) -> Result<AppArtifacts, SnapshotError> {
        if bytes.len() < HEADER_LEN + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len).map_err(|_| SnapshotError::Truncated)?;
        let total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapshotError::Truncated)?;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::TrailingBytes);
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let stored = u64::from_le_bytes(bytes[total - 8..].try_into().expect("8 bytes"));

        // Section directory: count, then (id, len, checksum) per
        // section, ids dense and in order. The trailing checksum covers
        // exactly these directory bytes; each blob is covered by its
        // entry — one hash pass over the file in total.
        let mut r = WireReader::new(payload);
        if r.get_u8()? as usize != SECTION_COUNT {
            return Err(malformed("unexpected section count"));
        }
        let mut entries = Vec::with_capacity(SECTION_COUNT);
        for id in 0..SECTION_COUNT {
            if r.get_u8()? as usize != id {
                return Err(malformed("section directory out of order"));
            }
            let len = r.get_len(1)?;
            let sum = r.get_u64()?;
            entries.push((len, sum));
        }
        let mut off = payload.len() - r.remaining();
        if fnv1a64_wide(&payload[..off]) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut blobs: Vec<&[u8]> = Vec::with_capacity(SECTION_COUNT);
        for &(len, sum) in &entries {
            let end = off.checked_add(len).ok_or(SnapshotError::Truncated)?;
            if end > payload.len() {
                return Err(SnapshotError::Truncated);
            }
            let blob = &payload[off..end];
            if fnv1a64_wide(blob) != sum {
                return Err(SnapshotError::ChecksumMismatch);
            }
            blobs.push(blob);
            off = end;
        }
        if off != payload.len() {
            return Err(malformed("unconsumed payload bytes"));
        }

        // Program section: read the count prefix now, defer the decode.
        let mut pr = WireReader::new(blobs[0]);
        let class_count = pr.get_len(1)?;
        let method_count = pr.get_len(1)?;
        let program_blob = blobs[0][blobs[0].len() - pr.remaining()..].to_vec();
        let manifest = decode_section(blobs[1], read_manifest)?;
        let text = BytecodeText::from_sections(
            blobs[2].to_vec(),
            blobs[3].to_vec(),
            blobs[4].to_vec(),
            blobs[5].to_vec(),
        )?;
        let chunk_manifest = decode_section(blobs[6], crate::chunks::ChunkManifest::read)?;
        if chunk_manifest.len() != class_count {
            return Err(malformed("chunk manifest disagrees with class count"));
        }
        Ok(AppArtifacts::from_deferred_parts(
            program_blob,
            class_count,
            method_count,
            manifest,
            text,
            backend,
            chunk_manifest,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backdroid, BackdroidOptions};
    use backdroid_ir::{
        ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Type, Value,
    };
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    fn sample_artifacts() -> AppArtifacts {
        let act = ClassName::new("com.snap.Main");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        on_create.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::str("AES/ECB/PKCS5Padding")],
        ));
        let mut program = backdroid_ir::Program::new();
        program.add_class(
            ClassBuilder::new("com.snap.Main")
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut manifest = Manifest::new("com.snap");
        manifest.register(Component::new(ComponentKind::Activity, "com.snap.Main"));
        AppArtifacts::new(program, manifest)
    }

    #[test]
    fn snapshot_round_trips_byte_identically_and_preserves_analysis() {
        let a = sample_artifacts();
        let bytes = a.to_snapshot();
        assert_eq!(bytes, a.to_snapshot(), "encoding is deterministic");
        let b = AppArtifacts::from_snapshot(&bytes, BackendChoice::default()).unwrap();
        assert_eq!(b.to_snapshot(), bytes, "re-snapshot is byte-identical");
        assert_eq!(b.estimated_bytes(), a.estimated_bytes());
        let tool = Backdroid::with_options(BackdroidOptions::default());
        let fresh = tool.analyze_artifacts(&a);
        let restored = tool.analyze_artifacts(&b);
        assert_eq!(fresh.sink_reports, restored.sink_reports);
        assert_eq!(restored.vulnerable_sinks().len(), 1);
    }

    #[test]
    fn restore_is_lazy_until_first_search() {
        let a = sample_artifacts();
        let bytes = a.to_snapshot();
        let b = AppArtifacts::from_snapshot(&bytes, BackendChoice::default()).unwrap();
        // Manifest-level facts are served without touching the program,
        // text, or posting sections.
        let text = b.engine().text();
        assert!(!b.is_program_materialized());
        assert!(!text.is_body_materialized());
        assert!(!text.is_index_materialized());
        assert_eq!(b.manifest().package(), a.manifest().package());
        assert_eq!(b.estimated_bytes(), a.estimated_bytes());
        assert!(!b.is_program_materialized());
        assert!(!text.is_body_materialized());
        assert!(!text.is_index_materialized());
        // Running an analysis materializes on demand — and answers
        // exactly as a fresh parse does.
        let tool = Backdroid::with_options(BackdroidOptions::default());
        let restored = tool.analyze_artifacts(&b);
        assert!(b.is_program_materialized());
        assert!(b.engine().text().is_index_materialized());
        assert_eq!(
            restored.sink_reports,
            tool.analyze_artifacts(&a).sink_reports
        );
    }

    #[test]
    fn one_snapshot_serves_both_backends_identically() {
        let a = sample_artifacts();
        let bytes = a.to_snapshot();
        let indexed = AppArtifacts::from_snapshot(&bytes, BackendChoice::Indexed).unwrap();
        let linear = AppArtifacts::from_snapshot(&bytes, BackendChoice::LinearScan).unwrap();
        let tool = Backdroid::with_options(BackdroidOptions::default());
        assert_eq!(
            tool.analyze_artifacts(&indexed).sink_reports,
            tool.analyze_artifacts(&linear).sink_reports
        );
    }

    #[test]
    fn every_corruption_mode_is_detected() {
        let bytes = sample_artifacts().to_snapshot();

        // Truncation: every strict prefix fails.
        for cut in (0..bytes.len()).step_by(11) {
            assert!(
                AppArtifacts::from_snapshot(&bytes[..cut], BackendChoice::default()).is_err(),
                "prefix of {cut} bytes loaded"
            );
        }

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::BadMagic
        );

        // Version bump.
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(matches!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: 4,
                expected: 3
            }
        ));

        // A version-2 file (the pre-chunk-manifest format) is stale,
        // not corrupt — still rejected with a version mismatch.
        let mut bad = bytes.clone();
        bad[8] = 2;
        assert!(matches!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: 2,
                expected: 3
            }
        ));

        // Payload bit flip.
        let mut bad = bytes.clone();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - 8) / 2;
        bad[mid] ^= 0x01;
        assert_eq!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );

        // Checksum bit flip.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );

        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            AppArtifacts::from_snapshot(&bad, BackendChoice::default()).unwrap_err(),
            SnapshotError::TrailingBytes
        );

        // The pristine bytes still load after all that.
        assert!(AppArtifacts::from_snapshot(&bytes, BackendChoice::default()).is_ok());
    }

    #[test]
    fn errors_render_usefully() {
        for (e, needle) in [
            (SnapshotError::Truncated, "truncated"),
            (SnapshotError::BadMagic, "magic"),
            (
                SnapshotError::VersionMismatch {
                    found: 9,
                    expected: 2,
                },
                "version 9",
            ),
            (SnapshotError::ChecksumMismatch, "checksum"),
            (SnapshotError::TrailingBytes, "trailing"),
            (SnapshotError::Decode(WireError::Truncated), "payload"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
