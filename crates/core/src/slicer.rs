//! Adjusted backward slicing: builds the self-contained slicing graph for
//! one sink API call during search-driven backtracking (paper §V-A).
//!
//! Differences from classical slicing, as the paper lists them:
//! * inter-procedural steps come from *bytecode search*, not a call graph;
//! * instance fields are tainted together with their base object;
//! * newly tainted static fields trigger a field-signature search so only
//!   the "contained methods" that actually access them are analyzed;
//! * off-path `<clinit>` methods are added into a special static track on
//!   demand after the main pass;
//! * raw typed statements are preserved in the SSG for the forward phase.

use crate::backtrack::{find_callers, CallerEdge, Reached};
use crate::context::TaskContext;
use crate::loops::{LoopKind, PathGuard};
use crate::sinks::SinkSpec;
use crate::ssg::{Ssg, SsgEdge, TaintSet};
use backdroid_ir::{
    FieldSig, IdentityKind, InvokeExpr, LocalId, MethodSig, Place, Rvalue, Stmt, Value,
};
use backdroid_search::SearchCmd;
use std::collections::{BTreeSet, HashSet};

/// Tuning knobs for the slicer.
#[derive(Clone, Copy, Debug)]
pub struct SlicerConfig {
    /// Maximum inter-procedural backtracking depth.
    pub max_depth: usize,
    /// Maximum number of SSG units before the slice is cut off
    /// (defensive bound; never hit by the evaluation workloads).
    pub max_units: usize,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            max_depth: 48,
            max_units: 200_000,
        }
    }
}

/// The result of slicing one sink call.
#[derive(Debug)]
pub struct SliceResult {
    /// The generated SSG (entries recorded inside).
    pub ssg: Ssg,
    /// Whether the sink call is control-flow reachable from an entry point.
    pub reachable: bool,
}

/// Slices backward from the sink call at `(sink_method, sink_stmt)`.
pub fn slice_sink(
    ctx: &mut TaskContext<'_>,
    config: SlicerConfig,
    sink_method: &MethodSig,
    sink_stmt: usize,
    spec: &SinkSpec,
) -> SliceResult {
    let mut s = BackwardSlicer {
        ctx,
        config,
        ssg: Ssg::new(spec.api.clone()),
        reachable: false,
        seen_frames: HashSet::new(),
    };
    s.run(sink_method, sink_stmt, spec);
    SliceResult {
        reachable: s.reachable,
        ssg: s.ssg,
    }
}

struct BackwardSlicer<'c, 'p> {
    ctx: &'c mut TaskContext<'p>,
    config: SlicerConfig,
    ssg: Ssg,
    reachable: bool,
    /// Deduplicates (method, scan-start, taint digest) frames.
    seen_frames: HashSet<(MethodSig, usize, String)>,
}

impl BackwardSlicer<'_, '_> {
    fn run(&mut self, sink_method: &MethodSig, sink_stmt: usize, spec: &SinkSpec) {
        let Some(body) = self.ctx.method(sink_method).and_then(|m| m.body()).cloned() else {
            return;
        };
        let Some(stmt) = body.stmt(sink_stmt).cloned() else {
            return;
        };
        let Some(ie) = stmt.invoke_expr().cloned() else {
            return;
        };
        let sink_unit = self
            .ssg
            .add_unit(sink_method.clone(), sink_stmt, stmt.clone());
        self.ssg.set_sink_unit(sink_unit);

        // Taint the tracked sink parameters.
        let mut taints = TaintSet::default();
        for &k in &spec.tracked_params {
            if let Some(Value::Local(l)) = ie.args.get(k) {
                taints.taint_local(*l);
            }
        }

        let mut guard = PathGuard::new();
        guard.push(sink_method.clone());
        self.walk(sink_method, sink_stmt, taints, sink_unit, &mut guard, 0);

        // Off-path static initializers, added on demand (§V-A).
        self.add_off_path_clinits();
    }

    /// Scans `method` backwards from statement `from` (exclusive),
    /// carrying the taint set; on reaching the method head, continues into
    /// callers or records an entry.
    fn walk(
        &mut self,
        method: &MethodSig,
        from: usize,
        mut taints: TaintSet,
        link_unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        if depth > self.config.max_depth || self.ssg.units().len() > self.config.max_units {
            return;
        }
        let digest = format!("{taints:?}");
        if !self.seen_frames.insert((method.clone(), from, digest)) {
            return;
        }
        let Some(body) = self.ctx.method(method).and_then(|m| m.body()).cloned() else {
            return;
        };

        let mut last_unit = link_unit;
        let mut leftover_params: BTreeSet<usize> = BTreeSet::new();
        let mut this_tainted = false;
        let mut leftover_fields: BTreeSet<FieldSig> = BTreeSet::new();

        for idx in (0..from).rev() {
            let stmt = body.stmt(idx).expect("index in range").clone();
            match &stmt {
                Stmt::Identity { local, kind } if taints.is_tainted(*local) => {
                    // Record which implicit inputs stay tainted past
                    // the head.
                    match kind {
                        IdentityKind::This(_) => {
                            this_tainted = true;
                            for (b, f) in taints.instance_fields.clone() {
                                if b == *local {
                                    leftover_fields.insert(f);
                                }
                            }
                        }
                        IdentityKind::Param(k, _) => {
                            leftover_params.insert(*k);
                        }
                        IdentityKind::CaughtException => {}
                    }
                    let u = self.ssg.add_unit(method.clone(), idx, stmt.clone());
                    self.ssg.add_edge(u, last_unit, SsgEdge::Intra);
                    last_unit = u;
                    taints.untaint_local(*local);
                }
                Stmt::Assign { place, rvalue } => {
                    let relevant = self.assign_relevant(place, rvalue, &taints);
                    if !relevant {
                        continue;
                    }
                    let u = self.ssg.add_unit(method.clone(), idx, stmt.clone());
                    self.ssg.add_edge(u, last_unit, SsgEdge::Intra);
                    self.transfer_assign(method, idx, place, rvalue, &mut taints, u, guard, depth);
                    last_unit = u;
                }
                Stmt::Invoke(ie) => {
                    // A bare invoke matters when its receiver is tainted:
                    // constructors initialize the tainted object's state,
                    // and API calls on tainted objects (StringBuilder
                    // .append) feed it.
                    let base_tainted = ie.base.is_some_and(|b| taints.is_tainted(b));
                    if base_tainted {
                        let u = self.ssg.add_unit(method.clone(), idx, stmt.clone());
                        self.ssg.add_edge(u, last_unit, SsgEdge::Intra);
                        for a in &ie.args {
                            if let Value::Local(l) = a {
                                taints.taint_local(*l);
                            }
                        }
                        // Dive into an app-defined constructor to capture
                        // the field writes that initialize the object.
                        if ie.callee.is_init() {
                            self.dive_into_contained(method, ie, u, guard, depth);
                        }
                        last_unit = u;
                    }
                }
                _ => {}
            }
            // Track taints over array writes (weak updates).
            if let Stmt::Assign {
                place: Place::ArrayElem { base, .. },
                rvalue,
            } = &stmt
            {
                if taints.is_tainted(*base) {
                    for l in rvalue.operand_locals() {
                        taints.taint_local(l);
                    }
                }
            }
        }

        // Head reached. Entry point?
        if self.ctx.manifest.is_entry_method(method) {
            self.reachable = true;
            self.ssg.add_entry(method.clone());
            // §IV-E: if dataflow is not finished at this handler, earlier
            // lifecycle handlers of the same component may define the
            // leftover fields — analyze them on demand.
            if !leftover_fields.is_empty() {
                self.scan_lifecycle_predecessors(method, &leftover_fields, last_unit, guard, depth);
            }
            return;
        }

        // Nothing left to trace and not an entry: the path is complete in
        // data terms, but control-flow reachability still needs an entry;
        // continue climbing with an empty taint set.
        match find_callers(self.ctx, method) {
            Reached::EntryPoint => {
                self.reachable = true;
                self.ssg.add_entry(method.clone());
            }
            Reached::NoCaller => {}
            Reached::Callers(edges) => {
                for edge in edges {
                    self.continue_in_caller(
                        method,
                        &edge,
                        &leftover_params,
                        this_tainted,
                        &leftover_fields,
                        last_unit,
                        guard,
                        depth,
                    );
                }
            }
        }
    }

    /// Whether an assignment interacts with the current taints.
    fn assign_relevant(&self, place: &Place, rvalue: &Rvalue, taints: &TaintSet) -> bool {
        let _ = rvalue;
        match place {
            Place::Local(l) => taints.is_tainted(*l),
            Place::InstanceField { base, field } => {
                taints.instance_fields.contains(&(*base, field.clone()))
                    || taints.field_tainted(field)
            }
            Place::StaticField(f) => self.ssg.static_taints().contains(f),
            Place::ArrayElem { base, .. } => taints.is_tainted(*base),
        }
    }

    /// Backward transfer for one relevant assignment.
    #[allow(clippy::too_many_arguments)]
    fn transfer_assign(
        &mut self,
        method: &MethodSig,
        _idx: usize,
        place: &Place,
        rvalue: &Rvalue,
        taints: &mut TaintSet,
        unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        // Strong update of the defined place.
        match place {
            Place::Local(l) => taints.untaint_local(*l),
            Place::InstanceField { base, field } => {
                taints.untaint_instance_field(*base, field);
            }
            Place::StaticField(f) => {
                self.ssg.resolve_static(f);
            }
            Place::ArrayElem { .. } => {}
        }
        // Propagate into the rvalue.
        match rvalue {
            Rvalue::Use(v) | Rvalue::Cast(_, v) | Rvalue::Length(v) => {
                if let Value::Local(l) = v {
                    taints.taint_local(*l);
                }
            }
            Rvalue::Phi(inputs) => {
                for l in inputs {
                    taints.taint_local(*l);
                }
            }
            Rvalue::Read(p) => match p {
                Place::Local(l) => taints.taint_local(*l),
                Place::InstanceField { base, field } => {
                    taints.taint_instance_field(*base, field.clone());
                }
                Place::StaticField(f) => {
                    self.taint_static_with_search(f, unit, guard, depth);
                }
                Place::ArrayElem { base, index } => {
                    taints.taint_local(*base);
                    if let Value::Local(l) = index {
                        taints.taint_local(*l);
                    }
                }
            },
            Rvalue::Binop(_, a, b) => {
                for v in [a, b] {
                    if let Value::Local(l) = v {
                        taints.taint_local(*l);
                    }
                }
            }
            Rvalue::InstanceOf(_, v) => {
                if let Value::Local(l) = v {
                    taints.taint_local(*l);
                }
            }
            Rvalue::New(_) => {
                // Allocation found: the object's origin is resolved; its
                // constructor (a separate bare invoke) initializes state.
            }
            Rvalue::NewArray(_, len) => {
                if let Value::Local(l) = len {
                    taints.taint_local(*l);
                }
            }
            Rvalue::Invoke(ie) => {
                // The tainted value is a call result: taint its inputs and
                // dive into the contained method's return slice.
                if let Some(b) = ie.base {
                    taints.taint_local(b);
                }
                for a in &ie.args {
                    if let Value::Local(l) = a {
                        taints.taint_local(*l);
                    }
                }
                self.dive_into_contained(method, ie, unit, guard, depth);
            }
        }
    }

    /// Taints a static field; platform fields stay symbolic, app fields
    /// trigger the §V-A accessor search so only matched contained methods
    /// are analyzed.
    fn taint_static_with_search(
        &mut self,
        field: &FieldSig,
        link_unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        if self.ssg.static_taints().contains(field) {
            return;
        }
        self.ssg.taint_static(field.clone());
        if field.class().is_platform() && !self.ctx.program.defines(field.class()) {
            // Platform constants (e.g. ALLOW_ALL_HOSTNAME_VERIFIER) are
            // resolved symbolically by the forward phase.
            self.ssg.resolve_static(field);
            return;
        }
        // Search all accessors of the field; analyze the writers.
        // `<clinit>` writers are excluded here: static initializers are
        // never on a call path (the VM runs them implicitly), so their
        // statements belong to the special off-path static track added
        // after the main pass (§V-A).
        let hits = self
            .ctx
            .engine
            .run(&SearchCmd::StaticFieldAccess(field.clone()));
        for hit in hits {
            if hit.method.is_clinit() {
                continue;
            }
            let Some(body) = self.ctx.method(&hit.method).and_then(|m| m.body()).cloned() else {
                continue;
            };
            for (idx, stmt) in body.stmts().iter().enumerate() {
                let Stmt::Assign { place, rvalue } = stmt else {
                    continue;
                };
                let Place::StaticField(f) = place else {
                    continue;
                };
                if f != field {
                    continue;
                }
                self.ssg.resolve_static(field);
                let u = self.ssg.add_unit(hit.method.clone(), idx, stmt.clone());
                self.ssg.add_edge(u, link_unit, SsgEdge::Intra);
                // Slice the writer's inputs backward within its method.
                let mut t = TaintSet::default();
                for l in rvalue.operand_locals() {
                    t.taint_local(l);
                }
                if !t.is_empty() {
                    if guard.would_loop(&hit.method) {
                        self.ctx.loops.record(LoopKind::CrossBackward);
                        continue;
                    }
                    guard.push(hit.method.clone());
                    self.walk(&hit.method.clone(), idx, t, u, guard, depth + 1);
                    guard.pop();
                }
            }
        }
    }

    /// Dives into an app-defined contained method: for a constructor, the
    /// parameter-to-field writes; for a value-returning call, the return
    /// slice. Connects call and return edges (§V-A).
    fn dive_into_contained(
        &mut self,
        caller: &MethodSig,
        ie: &InvokeExpr,
        call_unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        let _ = caller;
        let resolved = if self.ctx.program.method(&ie.callee).is_some() {
            Some(ie.callee.clone())
        } else if self.ctx.program.defines(ie.callee.class()) {
            self.ctx
                .program
                .resolve_dispatch(ie.callee.class(), &ie.callee)
        } else {
            None
        };
        let Some(callee) = resolved else { return };
        if guard.would_loop(&callee) {
            self.ctx.loops.record(LoopKind::InnerBackward);
            return;
        }
        let Some(body) = self.ctx.method(&callee).and_then(|m| m.body()).cloned() else {
            return;
        };
        guard.push(callee.clone());
        // Return slice: trace each returned value backward.
        for (idx, stmt) in body.stmts().iter().enumerate() {
            if let Stmt::Return(Some(Value::Local(l))) = stmt {
                let ret_unit = self.ssg.add_unit(callee.clone(), idx, stmt.clone());
                self.ssg.add_edge(ret_unit, call_unit, SsgEdge::Return);
                let mut t = TaintSet::default();
                t.taint_local(*l);
                self.walk(&callee, idx, t, ret_unit, guard, depth + 1);
            }
        }
        // Constructor/field-writer slice: trace writes to `this` fields so
        // the forward phase can reconstruct object state.
        if ie.callee.is_init() || ie.base.is_some() {
            let mut this_local: Option<LocalId> = None;
            for stmt in body.stmts() {
                if let Stmt::Identity {
                    local,
                    kind: IdentityKind::This(_),
                } = stmt
                {
                    this_local = Some(*local);
                    break;
                }
            }
            if let Some(this) = this_local {
                for (idx, stmt) in body.stmts().iter().enumerate() {
                    let Stmt::Assign {
                        place: Place::InstanceField { base, .. },
                        rvalue,
                    } = stmt
                    else {
                        continue;
                    };
                    if *base != this {
                        continue;
                    }
                    let u = self.ssg.add_unit(callee.clone(), idx, stmt.clone());
                    self.ssg.add_edge(call_unit, u, SsgEdge::Call);
                    let mut t = TaintSet::default();
                    for l in rvalue.operand_locals() {
                        if l != this {
                            t.taint_local(l);
                        }
                    }
                    if !t.is_empty() {
                        self.walk(&callee, idx, t, u, guard, depth + 1);
                    }
                }
            }
        }
        guard.pop();
    }

    /// Continues the slice in a caller found by search.
    #[allow(clippy::too_many_arguments)]
    fn continue_in_caller(
        &mut self,
        callee: &MethodSig,
        edge: &CallerEdge,
        leftover_params: &BTreeSet<usize>,
        this_tainted: bool,
        leftover_fields: &BTreeSet<FieldSig>,
        callee_top_unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        let _ = callee;
        if guard.would_loop(&edge.caller) {
            self.ctx.loops.record(LoopKind::CrossBackward);
            return;
        }
        let Some(body) = self
            .ctx
            .method(&edge.caller)
            .and_then(|m| m.body())
            .cloned()
        else {
            // Callers without IR bodies (shouldn't happen for app code)
            // still count for reachability if they are entries.
            if self.ctx.manifest.is_entry_method(&edge.caller) {
                self.reachable = true;
                self.ssg.add_entry(edge.caller.clone());
            }
            return;
        };
        let site = edge.site_stmt.unwrap_or(body.len());
        // Record the call site and the maintained chain into the SSG.
        let mut link = callee_top_unit;
        if let Some(site_stmt) = edge.site_stmt.and_then(|s| body.stmt(s).cloned()) {
            let u = self.ssg.add_unit(
                edge.caller.clone(),
                edge.site_stmt.expect("some"),
                site_stmt,
            );
            self.ssg.add_edge(u, callee_top_unit, SsgEdge::Call);
            link = u;
        }
        for step in &edge.via_chain {
            if let (Some(s), Some(b)) = (
                step.site_stmt,
                self.ctx.method(&step.method).and_then(|m| m.body()),
            ) {
                if let Some(stmt) = b.stmt(s).cloned() {
                    let u = self.ssg.add_unit(step.method.clone(), s, stmt);
                    self.ssg.add_edge(u, link, SsgEdge::Call);
                }
            }
        }

        // Map leftover taints through the call site.
        let mut t = TaintSet::default();
        let mut scan_from = site;
        match edge.site_stmt.and_then(|i| body.stmt(i)) {
            // Object-flow edges point at the allocation site: the callee's
            // `this` is the object allocated here. Taint the allocated
            // local (and its fields) and rescan the whole caller, because
            // the defining statements — notably the constructor call —
            // come *after* the allocation.
            Some(Stmt::Assign {
                place: Place::Local(l),
                rvalue: Rvalue::New(_),
            }) => {
                if this_tainted {
                    t.taint_local(*l);
                    for f in leftover_fields {
                        t.taint_instance_field(*l, f.clone());
                    }
                }
                scan_from = body.len();
            }
            Some(stmt) => {
                if let Some(ie) = stmt.invoke_expr() {
                    for &k in leftover_params {
                        if let Some(Value::Local(l)) = ie.args.get(k) {
                            t.taint_local(*l);
                        }
                    }
                    if this_tainted {
                        if let Some(b) = ie.base {
                            t.taint_local(b);
                            for f in leftover_fields {
                                t.taint_instance_field(b, f.clone());
                            }
                        }
                    }
                }
            }
            None => {}
        }

        guard.push(edge.caller.clone());
        self.walk(&edge.caller.clone(), scan_from, t, link, guard, depth + 1);
        guard.pop();
    }

    /// §IV-E: on-demand search over earlier lifecycle handlers that may
    /// define fields still tainted when an entry handler is reached.
    fn scan_lifecycle_predecessors(
        &mut self,
        handler: &MethodSig,
        fields: &BTreeSet<FieldSig>,
        link_unit: usize,
        guard: &mut PathGuard,
        depth: usize,
    ) {
        let Some(component) = self.ctx.manifest.component(handler.class()) else {
            return;
        };
        let preds = component.kind().predecessors_of(handler.name());
        for pred in preds {
            let sig = MethodSig::new(
                handler.class().clone(),
                pred,
                vec![],
                backdroid_ir::Type::Void,
            );
            let Some(body) = self.ctx.method(&sig).and_then(|m| m.body()).cloned() else {
                continue;
            };
            // Scan the predecessor for writes to the leftover fields.
            for (idx, stmt) in body.stmts().iter().enumerate() {
                let Stmt::Assign {
                    place: Place::InstanceField { field, .. },
                    rvalue,
                } = stmt
                else {
                    continue;
                };
                if !fields.contains(field) {
                    continue;
                }
                let u = self.ssg.add_unit(sig.clone(), idx, stmt.clone());
                self.ssg.add_edge(u, link_unit, SsgEdge::Intra);
                self.ssg.add_entry(sig.clone());
                self.reachable = true;
                let mut t = TaintSet::default();
                for l in rvalue.operand_locals() {
                    t.taint_local(l);
                }
                if !t.is_empty() && !guard.would_loop(&sig) {
                    guard.push(sig.clone());
                    self.walk(&sig.clone(), idx, t, u, guard, depth + 1);
                    guard.pop();
                }
            }
        }
    }

    /// After the main pass: resolve remaining static fields from their
    /// classes' `<clinit>` methods, into the special static track (§V-A).
    fn add_off_path_clinits(&mut self) {
        let unresolved: Vec<FieldSig> = self.ssg.unresolved_statics().iter().cloned().collect();
        for field in unresolved {
            let Some(class) = self.ctx.class(field.class()) else {
                continue;
            };
            let Some(clinit) = class.clinit() else {
                continue;
            };
            let sig = clinit.sig().clone();
            let Some(body) = clinit.body().cloned() else {
                continue;
            };
            // Only relevant statements enter the static track.
            let mut local_taints: BTreeSet<LocalId> = BTreeSet::new();
            let mut track_units: Vec<usize> = Vec::new();
            for (idx, stmt) in body.stmts().iter().enumerate().rev() {
                let relevant = match stmt {
                    Stmt::Assign {
                        place: Place::StaticField(f),
                        ..
                    } => f == &field,
                    Stmt::Assign {
                        place: Place::Local(l),
                        ..
                    } => local_taints.contains(l),
                    _ => false,
                };
                if !relevant {
                    continue;
                }
                if let Stmt::Assign { rvalue, .. } = stmt {
                    for l in rvalue.operand_locals() {
                        local_taints.insert(l);
                    }
                }
                let u = self.ssg.add_unit(sig.clone(), idx, stmt.clone());
                track_units.push(u);
            }
            if !track_units.is_empty() {
                self.ssg.resolve_static(&field);
                // Discovery was backward: reverse into execution order.
                for u in track_units.into_iter().rev() {
                    self.ssg.push_static_track(u);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AppArtifacts;
    use backdroid_ir::{ClassBuilder, ClassName, Const, Modifiers, Program, Type};
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    fn cipher_spec() -> SinkSpec {
        crate::DetectorRegistry::paper().sink_registry().sinks()[0].clone()
    }

    fn cipher_sig() -> MethodSig {
        MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        )
    }

    /// onCreate stores the mode in a field; onResume reads it and calls
    /// the sink: the §IV-E lifecycle-predecessor scan must pull the
    /// onCreate write into the slice.
    #[test]
    fn lifecycle_predecessor_writes_enter_the_slice() {
        let act = ClassName::new("com.s.Main");
        let field = FieldSig::new(act.clone(), "mode", Type::string());
        let mut on_create =
            backdroid_ir::MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let this = on_create.this();
        let v = on_create.assign_const(Const::str("AES/ECB/PKCS5Padding"));
        on_create.write_instance_field(this, field.clone(), Value::Local(v));
        let mut on_resume =
            backdroid_ir::MethodBuilder::public(&act, "onResume", vec![], Type::Void);
        let this = on_resume.this();
        let m = on_resume.read_instance_field(this, field.clone());
        on_resume.invoke(InvokeExpr::call_static(cipher_sig(), vec![Value::Local(m)]));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .field("mode", Type::string(), Modifiers::private())
                .method(on_create.build())
                .method(on_resume.build())
                .build(),
        );
        let mut man = Manifest::new("com.s");
        man.register(Component::new(ComponentKind::Activity, act.as_str()));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let sink_m = MethodSig::new(act.as_str(), "onResume", vec![], Type::Void);
        let body = p.method(&sink_m).unwrap().body().unwrap();
        let sink_idx = body.call_sites_of(&cipher_sig())[0];
        let r = slice_sink(
            &mut ctx,
            SlicerConfig::default(),
            &sink_m,
            sink_idx,
            &cipher_spec(),
        );
        assert!(r.reachable);
        // The onCreate field write is in the SSG.
        assert!(
            r.ssg.units().iter().any(|u| u.method.name() == "onCreate"),
            "predecessor handler statements present: {:#?}",
            r.ssg
                .units()
                .iter()
                .map(|u| u.method.to_string())
                .collect::<Vec<_>>()
        );
        // Both onCreate and onResume are recorded as entries.
        assert!(r.ssg.entries().iter().any(|e| e.name() == "onResume"));
        assert!(r.ssg.entries().iter().any(|e| e.name() == "onCreate"));
    }

    /// The NanoHTTPD shape: the static field's only write lives in
    /// <clinit>; the slicer must add it to the special static track.
    #[test]
    fn off_path_clinit_enters_static_track() {
        let cfg_cls = ClassName::new("com.s.Config");
        let field = FieldSig::new(cfg_cls.clone(), "MODE", Type::string());
        let mut clinit = backdroid_ir::MethodBuilder::clinit(&cfg_cls);
        let v = clinit.assign_const(Const::str("AES/ECB/PKCS5Padding"));
        clinit.write_static_field(field.clone(), Value::Local(v));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new(cfg_cls.as_str())
                .field("MODE", Type::string(), Modifiers::public_static())
                .method(clinit.build())
                .build(),
        );
        let act = ClassName::new("com.s.Main");
        let mut on_create =
            backdroid_ir::MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let m = on_create.read_static_field(field.clone());
        on_create.invoke(InvokeExpr::call_static(cipher_sig(), vec![Value::Local(m)]));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut man = Manifest::new("com.s");
        man.register(Component::new(ComponentKind::Activity, act.as_str()));
        let art = AppArtifacts::new(p.clone(), man.clone());
        let mut ctx = art.task();
        let sink_m = MethodSig::new(act.as_str(), "onCreate", vec![], Type::Void);
        let body = p.method(&sink_m).unwrap().body().unwrap();
        let sink_idx = body.call_sites_of(&cipher_sig())[0];
        let r = slice_sink(
            &mut ctx,
            SlicerConfig::default(),
            &sink_m,
            sink_idx,
            &cipher_spec(),
        );
        assert!(r.reachable);
        assert!(
            !r.ssg.static_track().is_empty(),
            "off-path <clinit> statements must be on the static track"
        );
        assert!(r
            .ssg
            .static_track()
            .iter()
            .all(|&u| r.ssg.units()[u].method.is_clinit()));
        assert!(r.ssg.unresolved_statics().is_empty(), "field resolved");
    }

    /// Depth limiting cuts runaway recursion without panicking.
    #[test]
    fn depth_limit_is_respected() {
        // a() -> b() -> ... -> sink with a chain longer than max_depth.
        let mut p = Program::new();
        let cls = ClassName::new("com.s.Chain");
        let n = 12usize;
        for k in 0..n {
            let mut mb = backdroid_ir::MethodBuilder::new(
                MethodSig::new(
                    cls.as_str(),
                    format!("f{k}"),
                    vec![Type::string()],
                    Type::Void,
                ),
                Modifiers::public_static(),
            );
            let arg = mb.param(0);
            if k + 1 < n {
                mb.invoke(InvokeExpr::call_static(
                    MethodSig::new(
                        cls.as_str(),
                        format!("f{}", k + 1),
                        vec![Type::string()],
                        Type::Void,
                    ),
                    vec![Value::Local(arg)],
                ));
            } else {
                mb.invoke(InvokeExpr::call_static(
                    cipher_sig(),
                    vec![Value::Local(arg)],
                ));
            }
            p = {
                // add methods one class: build incrementally via single class
                p
            };
            // defer: collect methods below
            let _ = &mb;
            // NOTE: built below
            drop(mb);
        }
        // Rebuild properly: single class with all methods.
        let mut cb = ClassBuilder::new(cls.as_str());
        for k in 0..n {
            let mut mb = backdroid_ir::MethodBuilder::new(
                MethodSig::new(
                    cls.as_str(),
                    format!("f{k}"),
                    vec![Type::string()],
                    Type::Void,
                ),
                Modifiers::public_static(),
            );
            let arg = mb.param(0);
            if k + 1 < n {
                mb.invoke(InvokeExpr::call_static(
                    MethodSig::new(
                        cls.as_str(),
                        format!("f{}", k + 1),
                        vec![Type::string()],
                        Type::Void,
                    ),
                    vec![Value::Local(arg)],
                ));
            } else {
                mb.invoke(InvokeExpr::call_static(
                    cipher_sig(),
                    vec![Value::Local(arg)],
                ));
            }
            cb = cb.method(mb.build());
        }
        let mut p2 = Program::new();
        p2.add_class(cb.build());
        let man = Manifest::new("com.s");
        let art = AppArtifacts::new(p2.clone(), man.clone());
        let mut ctx = art.task();
        let sink_m = MethodSig::new(
            cls.as_str(),
            format!("f{}", n - 1),
            vec![Type::string()],
            Type::Void,
        );
        let body = p2.method(&sink_m).unwrap().body().unwrap();
        let sink_idx = body.call_sites_of(&cipher_sig())[0];
        let tight = SlicerConfig {
            max_depth: 3,
            max_units: 10_000,
        };
        let r = slice_sink(&mut ctx, tight, &sink_m, sink_idx, &cipher_spec());
        // Path cannot reach beyond depth 3; nothing is an entry anyway.
        assert!(!r.reachable);
        assert!(r.ssg.units().len() < 50);
    }
}
