//! Security-sensitive sink API specifications.
//!
//! A *sink* is a platform API whose parameters decide a security property:
//! the evaluation targets `Cipher.getInstance()` (crypto misuse) and the
//! two `setHostnameVerifier()` overloads (SSL misconfiguration), the same
//! sinks the paper stress-tests (§VI-A). Sink specs are owned by
//! detectors — build a [`crate::DetectorRegistry`] and flatten it with
//! [`crate::DetectorRegistry::sink_registry`].

use backdroid_ir::MethodSig;

/// One sink API specification.
#[derive(Clone, PartialEq, Debug)]
pub struct SinkSpec {
    /// Stable identifier used in reports (`crypto.cipher`, `ssl.verifier`…).
    pub id: String,
    /// The platform API signature as invoked in bytecode.
    pub api: MethodSig,
    /// Indices of the parameters whose dataflow must be recovered.
    pub tracked_params: Vec<usize>,
}

impl SinkSpec {
    /// Creates a spec tracking the given parameter indices.
    pub fn new(id: impl Into<String>, api: MethodSig, tracked_params: Vec<usize>) -> Self {
        SinkSpec {
            id: id.into(),
            api,
            tracked_params,
        }
    }
}

/// The set of sinks one analysis run targets.
#[derive(Clone, Debug, Default)]
pub struct SinkRegistry {
    sinks: Vec<SinkSpec>,
}

impl SinkRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink spec.
    pub fn add(&mut self, spec: SinkSpec) {
        self.sinks.push(spec);
    }

    /// All sink specs.
    pub fn sinks(&self) -> &[SinkSpec] {
        &self.sinks
    }

    /// The spec whose API matches `sig` exactly, if any.
    pub fn spec_for(&self, sig: &MethodSig) -> Option<&SinkSpec> {
        self.sinks.iter().find(|s| &s.api == sig)
    }

    /// Specs whose API *name* matches — the hierarchy-aware initial search
    /// (the §VI-C fix for subclassed sink wrappers) needs the name before
    /// it can check the class hierarchy.
    pub fn specs_named(&self, name: &str) -> Vec<&SinkSpec> {
        self.sinks.iter().filter(|s| s.api.name() == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::Type;

    #[test]
    fn default_registry_matches_paper_sinks() {
        let r = crate::DetectorRegistry::paper().sink_registry();
        assert_eq!(r.sinks().len(), 3);
        assert!(r
            .sinks()
            .iter()
            .any(|s| s.api.class().as_str() == "javax.crypto.Cipher"));
        let by_name = r.specs_named("setHostnameVerifier");
        assert_eq!(by_name.len(), 2);
    }

    #[test]
    fn extended_registry_adds_uncommon_sinks() {
        let r = crate::DetectorRegistry::extended().sink_registry();
        assert!(r.sinks().len() >= 6);
        assert!(r.sinks().iter().any(|s| s.id == "sms.send"));
    }

    #[test]
    fn spec_lookup_is_exact() {
        let r = crate::DetectorRegistry::paper().sink_registry();
        let cipher = MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        );
        assert!(r.spec_for(&cipher).is_some());
        let wrong = MethodSig::new("javax.crypto.Cipher", "getInstance", vec![], Type::Void);
        assert!(r.spec_for(&wrong).is_none());
    }
}
