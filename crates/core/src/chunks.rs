//! Content-addressed per-class chunks and version-to-version deltas.
//!
//! An app update rarely rewrites the whole program: most classes of
//! v(n+1) are byte-identical to v(n). This module gives the snapshot
//! container and the serving layer a shared vocabulary for exploiting
//! that:
//!
//! * **Chunk** — one class definition encoded with
//!   [`backdroid_ir::wire::write_class`]. The encoding is canonical
//!   (deterministic field/method order as declared), so a class's
//!   *chunk key* — [`fnv1a64_wide`] over exactly those bytes — is a
//!   content address: equal classes collide, different classes don't
//!   (modulo hash collision, which the decoder still validates
//!   structurally).
//! * **[`ChunkManifest`]** — the `class name → chunk key` map of one
//!   program version. Stored as snapshot section 6 so a restore can
//!   diff two versions without decoding either program.
//! * **[`DeltaManifest`]** — the diff of two manifests: which classes
//!   are unchanged / changed / added / removed across an update.
//! * **[`ChunkStore`]** — a directory of checksummed chunk files keyed
//!   by content hash, deduplicated across versions. Reads are total:
//!   a missing, truncated, or bit-rotted chunk surfaces as an error
//!   and the caller falls back to a full re-parse.
//! * **[`classify_delta`]** — the soundness gate for verdict reuse:
//!   only *pure method-body* deltas (identical class set, hierarchy,
//!   fields, modifiers, and method signatures — just different
//!   statements) allow the analysis engine to replay prior sink
//!   verdicts selectively; anything structural forces a full
//!   re-analysis (still cheap, because chunks and the token cache
//!   still carry the unchanged classes).
//!
//! The invariant the whole path maintains (enforced by
//! `tests/delta_equivalence.rs` alongside `parallel_equivalence` and
//! `snapshot_roundtrip`): a program rebuilt by [`apply_delta`] is
//! **equal** to the from-scratch v(n+1) program, so every downstream
//! artifact — dump text, index, analysis report — is byte-identical.

use backdroid_ir::wire::{self, fnv1a64_wide, WireError, WireReader, WireWriter};
use backdroid_ir::{Class, ClassName, MethodSig, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Canonical wire encoding of one class — the byte string a chunk key
/// addresses. Two classes have equal chunk bytes iff they are equal
/// values (the encoder is injective over the IR).
pub fn class_chunk_bytes(class: &Class) -> Vec<u8> {
    let mut w = WireWriter::new();
    wire::write_class(&mut w, class);
    w.into_bytes()
}

/// The content address of a class: [`fnv1a64_wide`] over
/// [`class_chunk_bytes`].
pub fn chunk_key(class: &Class) -> u64 {
    fnv1a64_wide(&class_chunk_bytes(class))
}

/// The `class name → chunk key` map of one program version.
///
/// Deterministic by construction (`BTreeMap` name order), so equal
/// programs produce byte-identical encoded manifests and the snapshot
/// round-trip stays exact.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChunkManifest {
    entries: BTreeMap<ClassName, u64>,
}

impl ChunkManifest {
    /// Computes the manifest of a program by hashing every class chunk.
    pub fn of_program(program: &Program) -> ChunkManifest {
        ChunkManifest {
            entries: program
                .classes()
                .map(|c| (c.name().clone(), chunk_key(c)))
                .collect(),
        }
    }

    /// The chunk key recorded for `name`, if the version defines it.
    pub fn key_of(&self, name: &ClassName) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Number of classes in this version.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the version defines no classes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in class-name order.
    pub fn entries(&self) -> impl Iterator<Item = (&ClassName, u64)> + '_ {
        self.entries.iter().map(|(n, &k)| (n, k))
    }

    /// Wire-encodes the manifest: count, then (name, key) in name
    /// order.
    pub fn write(&self, w: &mut WireWriter) {
        w.put_len(self.entries.len());
        for (name, &key) in &self.entries {
            wire::write_class_name(w, name);
            w.put_u64(key);
        }
    }

    /// Decodes a manifest, rejecting duplicate or out-of-order names
    /// so the encoding stays canonical.
    pub fn read(r: &mut WireReader<'_>) -> Result<ChunkManifest, WireError> {
        let count = r.get_len(1)?;
        let mut entries = BTreeMap::new();
        let mut prev: Option<ClassName> = None;
        for _ in 0..count {
            let name = wire::read_class_name(r)?;
            let key = r.get_u64()?;
            if let Some(p) = &prev {
                if *p >= name {
                    return Err(WireError::Malformed(
                        "chunk manifest names out of order".to_string(),
                    ));
                }
            }
            prev = Some(name.clone());
            entries.insert(name, key);
        }
        Ok(ChunkManifest { entries })
    }

    /// Diffs this (prior) manifest against `next`, producing the
    /// update's [`DeltaManifest`].
    pub fn diff(&self, next: &ChunkManifest) -> DeltaManifest {
        let mut delta = DeltaManifest::default();
        for (name, &key) in &next.entries {
            match self.entries.get(name) {
                Some(&prior) if prior == key => delta.unchanged.push(name.clone()),
                Some(_) => delta.changed.push(name.clone()),
                None => delta.added.push(name.clone()),
            }
        }
        for name in self.entries.keys() {
            if !next.entries.contains_key(name) {
                delta.removed.push(name.clone());
            }
        }
        delta
    }
}

/// How v(n+1) differs from v(n), class by class. All four lists are in
/// class-name order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeltaManifest {
    /// Classes whose chunk keys match — carried over verbatim.
    pub unchanged: Vec<ClassName>,
    /// Classes present in both versions with different chunk keys.
    pub changed: Vec<ClassName>,
    /// Classes only the new version defines.
    pub added: Vec<ClassName>,
    /// Classes only the old version defines.
    pub removed: Vec<ClassName>,
}

impl DeltaManifest {
    /// Whether the update changes nothing.
    pub fn is_identity(&self) -> bool {
        self.changed.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// Every class touched by the update (changed + added + removed).
    pub fn touched_classes(&self) -> BTreeSet<ClassName> {
        self.changed
            .iter()
            .chain(&self.added)
            .chain(&self.removed)
            .cloned()
            .collect()
    }
}

/// The soundness classification of an update, from the analysis
/// engine's point of view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeltaKind {
    /// The two versions are equal programs.
    Identity,
    /// Only method *statements* changed: the class set, hierarchy,
    /// interfaces, fields, modifiers, and every method signature are
    /// identical. Hierarchy- and signature-level search results are
    /// provably unchanged, so prior sink verdicts whose dependency
    /// traces avoid the changed methods may be reused.
    BodyOnly {
        /// Exactly the methods whose bodies differ.
        changed_methods: BTreeSet<MethodSig>,
    },
    /// Anything else — classes or members added/removed/re-typed.
    /// Verdict reuse is off; the delta path still wins through chunk
    /// and token-cache reuse, and re-analysis is byte-identical to a
    /// cold run by determinism.
    Structural,
}

/// Classifies an update by structural comparison of the two programs.
pub fn classify_delta(old: &Program, new: &Program) -> DeltaKind {
    let old_names: Vec<&ClassName> = old.classes().map(Class::name).collect();
    let new_names: Vec<&ClassName> = new.classes().map(Class::name).collect();
    if old_names != new_names {
        return DeltaKind::Structural;
    }
    let mut changed_methods = BTreeSet::new();
    for (oc, nc) in old.classes().zip(new.classes()) {
        if oc.superclass() != nc.superclass()
            || oc.interfaces() != nc.interfaces()
            || oc.modifiers() != nc.modifiers()
            || oc.fields() != nc.fields()
        {
            return DeltaKind::Structural;
        }
        if oc.methods().len() != nc.methods().len() {
            return DeltaKind::Structural;
        }
        for (om, nm) in oc.methods().iter().zip(nc.methods()) {
            if om.sig() != nm.sig()
                || om.modifiers() != nm.modifiers()
                || om.body().is_some() != nm.body().is_some()
            {
                return DeltaKind::Structural;
            }
            if om.body() != nm.body() {
                changed_methods.insert(nm.sig().clone());
            }
        }
    }
    if changed_methods.is_empty() {
        DeltaKind::Identity
    } else {
        DeltaKind::BodyOnly { changed_methods }
    }
}

/// Why a chunk failed to load. Every variant is an expected disk-tier
/// condition; callers fall back to a full re-parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChunkError {
    /// No chunk file for this key.
    Missing(u64),
    /// The chunk file exists but is truncated, has a bad checksum, or
    /// carries trailing bytes.
    Corrupt(u64),
    /// The checksummed payload decoded to something invalid, or the
    /// decoded class does not belong where the manifest placed it.
    Decode(WireError),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Missing(k) => write!(f, "chunk {k:016x} missing"),
            ChunkError::Corrupt(k) => write!(f, "chunk {k:016x} corrupt"),
            ChunkError::Decode(e) => write!(f, "chunk payload: {e}"),
        }
    }
}

impl std::error::Error for ChunkError {}

impl From<WireError> for ChunkError {
    fn from(e: WireError) -> Self {
        ChunkError::Decode(e)
    }
}

/// Per-chunk file overhead: payload length (u64) + checksum trailer
/// (u64).
const CHUNK_FILE_OVERHEAD: usize = 16;

/// Monotonic suffix for temp files, so concurrent writers of the same
/// chunk never collide before their atomic renames.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of content-addressed chunk files.
///
/// Each chunk lives at `<dir>/<key:016x>.chunk` as
/// `[payload len, u64 LE][payload][fnv1a64_wide(payload), u64 LE]`.
/// Because the key *is* the payload hash, the trailer equals the key
/// for a well-formed file — it exists to make torn writes and bit rot
/// detectable with one sequential read. Writes go through a temp file
/// and an atomic rename, and an existing file is never rewritten
/// (content-addressing makes rewrites pointless), so concurrent
/// writers are safe by construction.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    dir: PathBuf,
}

impl ChunkStore {
    /// Opens (creating if needed) a chunk store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ChunkStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ChunkStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.chunk"))
    }

    /// Whether a chunk file for `key` exists (without validating it).
    pub fn contains(&self, key: u64) -> bool {
        self.path_for(key).exists()
    }

    /// Stores `payload` under its content hash, returning `(key, true)`
    /// if a new file was written or `(key, false)` if the chunk was
    /// already present (dedup across versions).
    pub fn put(&self, payload: &[u8]) -> io::Result<(u64, bool)> {
        let key = fnv1a64_wide(payload);
        let path = self.path_for(key);
        if path.exists() {
            return Ok((key, false));
        }
        let mut bytes = Vec::with_capacity(payload.len() + CHUNK_FILE_OVERHEAD);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&key.to_le_bytes());
        let tmp = self.dir.join(format!(
            ".tmp-{:016x}-{}-{}",
            key,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok((key, true)),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                // A concurrent writer may have won the rename race;
                // content-addressing means its bytes are ours.
                if path.exists() {
                    Ok((key, false))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Loads and validates the chunk for `key`. Total: every corruption
    /// mode (missing file, truncation, checksum or length mismatch,
    /// trailing bytes, payload not hashing to its own key) maps to a
    /// [`ChunkError`].
    pub fn get(&self, key: u64) -> Result<Vec<u8>, ChunkError> {
        let bytes = std::fs::read(self.path_for(key)).map_err(|_| ChunkError::Missing(key))?;
        if bytes.len() < CHUNK_FILE_OVERHEAD {
            return Err(ChunkError::Corrupt(key));
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| ChunkError::Corrupt(key))?;
        if bytes.len() != len + CHUNK_FILE_OVERHEAD {
            return Err(ChunkError::Corrupt(key));
        }
        let payload = &bytes[8..8 + len];
        let stored = u64::from_le_bytes(bytes[8 + len..].try_into().expect("8 bytes"));
        if stored != key || fnv1a64_wide(payload) != key {
            return Err(ChunkError::Corrupt(key));
        }
        Ok(payload.to_vec())
    }

    /// Writes every class chunk of `program`, returning
    /// `(chunks_written, chunks_deduped)`.
    pub fn put_program(&self, program: &Program) -> io::Result<(usize, usize)> {
        let mut written = 0;
        let mut deduped = 0;
        for class in program.classes() {
            let (_, fresh) = self.put(&class_chunk_bytes(class))?;
            if fresh {
                written += 1;
            } else {
                deduped += 1;
            }
        }
        Ok((written, deduped))
    }
}

/// Rebuilds the v(n+1) program named by `next`: classes whose keys
/// match `prior`'s manifest are cloned from the resident prior
/// program; everything else is fetched from the chunk store and
/// decoded (the decoder re-validates structure, so a hash collision
/// cannot smuggle in a malformed class).
///
/// Errors — a missing or corrupt chunk — leave the caller to fall
/// back to a full re-parse; on success the result is **equal** to the
/// from-scratch v(n+1) program, which is what makes every downstream
/// byte identical.
pub fn apply_delta(
    prior: &Program,
    prior_manifest: &ChunkManifest,
    next: &ChunkManifest,
    store: &ChunkStore,
) -> Result<Program, ChunkError> {
    let mut program = Program::new();
    for (name, key) in next.entries() {
        if prior_manifest.key_of(name) == Some(key) {
            let class = prior.class(name).ok_or(ChunkError::Missing(key))?.clone();
            program.add_class(class);
            continue;
        }
        let payload = store.get(key)?;
        let mut r = WireReader::new(&payload);
        let class = wire::read_class(&mut r)?;
        if !r.is_empty() {
            return Err(ChunkError::Decode(WireError::Malformed(
                "unconsumed chunk bytes".to_string(),
            )));
        }
        if class.name() != name {
            return Err(ChunkError::Decode(WireError::Malformed(format!(
                "chunk {key:016x} decodes to {}, manifest says {name}",
                class.name()
            ))));
        }
        program.add_class(class);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, Const, MethodBuilder, Type};

    fn two_class_program(greeting: &str) -> Program {
        let a = ClassName::new("com.chunk.A");
        let mut go = MethodBuilder::public(&a, "go", vec![], Type::Void);
        go.assign_const(Const::str(greeting));
        go.ret_void();
        let b = ClassName::new("com.chunk.B");
        let mut run = MethodBuilder::public(&b, "run", vec![], Type::Void);
        run.ret_void();
        let mut p = Program::new();
        p.add_class(ClassBuilder::new("com.chunk.A").method(go.build()).build());
        p.add_class(ClassBuilder::new("com.chunk.B").method(run.build()).build());
        p
    }

    #[test]
    fn chunk_keys_are_content_addresses() {
        let p1 = two_class_program("hello");
        let p2 = two_class_program("hello");
        let p3 = two_class_program("world");
        let name = ClassName::new("com.chunk.A");
        let other = ClassName::new("com.chunk.B");
        assert_eq!(
            chunk_key(p1.class(&name).unwrap()),
            chunk_key(p2.class(&name).unwrap())
        );
        assert_ne!(
            chunk_key(p1.class(&name).unwrap()),
            chunk_key(p3.class(&name).unwrap())
        );
        // The untouched class keeps its key across the edit.
        assert_eq!(
            chunk_key(p1.class(&other).unwrap()),
            chunk_key(p3.class(&other).unwrap())
        );
    }

    #[test]
    fn manifest_round_trips_and_diffs() {
        let old = ChunkManifest::of_program(&two_class_program("hello"));
        let mut w = WireWriter::new();
        old.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(ChunkManifest::read(&mut r).unwrap(), old);
        assert!(r.is_empty());

        let new = ChunkManifest::of_program(&two_class_program("world"));
        let delta = old.diff(&new);
        assert_eq!(delta.unchanged, vec![ClassName::new("com.chunk.B")]);
        assert_eq!(delta.changed, vec![ClassName::new("com.chunk.A")]);
        assert!(delta.added.is_empty() && delta.removed.is_empty());
        assert!(old.diff(&old).is_identity());
    }

    #[test]
    fn classify_distinguishes_body_only_from_structural() {
        let old = two_class_program("hello");
        assert_eq!(classify_delta(&old, &old), DeltaKind::Identity);

        let new = two_class_program("world");
        match classify_delta(&old, &new) {
            DeltaKind::BodyOnly { changed_methods } => {
                assert_eq!(changed_methods.len(), 1);
                assert_eq!(
                    changed_methods.iter().next().unwrap().to_string(),
                    "<com.chunk.A: void go()>"
                );
            }
            other => panic!("expected BodyOnly, got {other:?}"),
        }

        let mut extra = two_class_program("hello");
        let c = ClassName::new("com.chunk.C");
        let mut m = MethodBuilder::public(&c, "x", vec![], Type::Void);
        m.ret_void();
        extra.add_class(ClassBuilder::new("com.chunk.C").method(m.build()).build());
        assert_eq!(classify_delta(&old, &extra), DeltaKind::Structural);
    }

    #[test]
    fn store_round_trips_dedups_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "backdroid-chunks-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = ChunkStore::open(&dir).unwrap();
        let p = two_class_program("hello");
        let class = p.class(&ClassName::new("com.chunk.A")).unwrap();
        let payload = class_chunk_bytes(class);
        let (key, fresh) = store.put(&payload).unwrap();
        assert!(fresh);
        let (key2, fresh2) = store.put(&payload).unwrap();
        assert_eq!(key, key2);
        assert!(!fresh2, "second put dedups");
        assert_eq!(store.get(key).unwrap(), payload);

        // Truncation and bit flips are detected, never decoded.
        let path = store.path_for(key);
        let good = std::fs::read(&path).unwrap();
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert_eq!(store.get(key), Err(ChunkError::Corrupt(key)));
        let mut flipped = good.clone();
        flipped[9] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(store.get(key), Err(ChunkError::Corrupt(key)));
        std::fs::write(&path, &good).unwrap();
        assert!(store.get(key).is_ok());
        assert_eq!(store.get(key ^ 1), Err(ChunkError::Missing(key ^ 1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_delta_rebuilds_the_exact_new_program() {
        let dir = std::env::temp_dir().join(format!(
            "backdroid-chunks-apply-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = ChunkStore::open(&dir).unwrap();
        let old = two_class_program("hello");
        let new = two_class_program("world");
        let old_m = ChunkManifest::of_program(&old);
        let new_m = ChunkManifest::of_program(&new);
        let (written, deduped) = store.put_program(&new).unwrap();
        assert_eq!((written, deduped), (2, 0));
        let rebuilt = apply_delta(&old, &old_m, &new_m, &store).unwrap();
        assert_eq!(rebuilt, new);
        // A store missing the changed chunk forces the fallback path.
        let changed_key = new_m.key_of(&ClassName::new("com.chunk.A")).unwrap();
        std::fs::remove_file(store.path_for(changed_key)).unwrap();
        assert_eq!(
            apply_delta(&old, &old_m, &new_m, &store),
            Err(ChunkError::Missing(changed_key))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
