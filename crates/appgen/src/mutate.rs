//! Deterministic app-update synthesis: derive version v(n+1) from v(n).
//!
//! Real app stores see a stream of *updates*: most releases touch a
//! handful of method bodies (string/config tweaks, small logic changes),
//! some add or drop methods, and a few restructure whole classes. The
//! incremental analysis path is exercised against exactly that mix:
//! [`mutate_version`] applies a seeded, weighted set of edits to a
//! program and returns ground-truth diff labels ([`VersionMutation`])
//! stating which methods/classes changed and whether the update was
//! body-only — the precondition for verdict reuse in
//! `backdroid_core::Backdroid::analyze_delta`.
//!
//! Same input program + same seed ⇒ identical update, so golden replay
//! tests and CI smoke jobs can regenerate any version chain from seeds.

use std::collections::BTreeSet;

use backdroid_ir::{
    BinOp, ClassBuilder, ClassName, Const, MethodBuilder, MethodSig, Program, Rvalue, Stmt, Type,
    Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth labels for one synthesized update.
#[derive(Clone, Debug, Default)]
pub struct VersionMutation {
    /// Methods whose bodies were edited in place (signature unchanged).
    pub body_edits: Vec<MethodSig>,
    /// Methods added to existing classes.
    pub added_methods: Vec<MethodSig>,
    /// Methods removed from existing classes.
    pub removed_methods: Vec<MethodSig>,
    /// Classes added whole.
    pub added_classes: Vec<ClassName>,
    /// Classes removed whole.
    pub removed_classes: Vec<ClassName>,
}

impl VersionMutation {
    /// Whether the update only edited method bodies — the shape
    /// `classify_delta` labels `BodyOnly`, eligible for verdict reuse.
    pub fn is_body_only(&self) -> bool {
        !self.body_edits.is_empty()
            && self.added_methods.is_empty()
            && self.removed_methods.is_empty()
            && self.added_classes.is_empty()
            && self.removed_classes.is_empty()
    }

    /// Whether nothing changed at all.
    pub fn is_identity(&self) -> bool {
        self.body_edits.is_empty()
            && self.added_methods.is_empty()
            && self.removed_methods.is_empty()
            && self.added_classes.is_empty()
            && self.removed_classes.is_empty()
    }

    /// Every class the update touched (owning classes of method edits
    /// plus whole-class additions/removals).
    pub fn touched_classes(&self) -> BTreeSet<ClassName> {
        let mut out = BTreeSet::new();
        for m in self
            .body_edits
            .iter()
            .chain(&self.added_methods)
            .chain(&self.removed_methods)
        {
            out.insert(m.class().clone());
        }
        out.extend(self.added_classes.iter().cloned());
        out.extend(self.removed_classes.iter().cloned());
        out
    }
}

/// Derives the next version of `base` by applying `1..=3` seeded edits.
///
/// Edit mix (per edit): ~70% body tweak, ~8% method addition, ~7%
/// method removal, ~8% class addition, ~7% class removal. Body tweaks
/// prefer flipping an assigned cipher-mode string between its secure
/// and insecure variants — so updates genuinely flip verdicts, not just
/// bytes — then fall back to integer-constant bumps and finally to an
/// appended no-op. Class removal only targets generated filler/update
/// classes, never scenario or entry classes, keeping the manifest
/// coherent across a version chain.
pub fn mutate_version(base: &Program, seed: u64) -> (Program, VersionMutation) {
    let mut next = base.clone();
    let mut label = VersionMutation::default();
    let names: Vec<ClassName> = base.classes().map(|c| c.name().clone()).collect();
    if names.is_empty() {
        return (next, label);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_u64.rotate_left(17));
    let edits = rng.gen_range(1..4usize);
    for i in 0..edits {
        let roll = rng.gen_range(0..100u8);
        if roll < 70 {
            edit_body(&mut next, &mut rng, &mut label);
        } else if roll < 78 {
            add_method(&mut next, &mut rng, seed, i, &mut label);
        } else if roll < 85 {
            remove_method(&mut next, &mut rng, &mut label);
        } else if roll < 93 {
            add_class(&mut next, &mut rng, seed, i, &mut label);
        } else {
            remove_class(&mut next, &mut rng, &mut label);
        }
    }
    (next, label)
}

/// Classes current in `p`, in deterministic (BTreeMap) order.
fn class_names(p: &Program) -> Vec<ClassName> {
    p.classes().map(|c| c.name().clone()).collect()
}

fn edit_body(p: &mut Program, rng: &mut StdRng, label: &mut VersionMutation) {
    let names = class_names(p);
    // Collect editable (sig, class) pairs: concrete methods only.
    let mut candidates: Vec<MethodSig> = Vec::new();
    for name in &names {
        let class = p.class(name).expect("listed class exists");
        for m in class.methods() {
            if m.body().is_some() {
                candidates.push(m.sig().clone());
            }
        }
    }
    if candidates.is_empty() {
        return;
    }
    let sig = candidates[rng.gen_range(0..candidates.len())].clone();
    let mut class = p.remove_class(sig.class()).expect("owner exists");
    {
        let body = class
            .find_method_mut(&sig)
            .and_then(|m| m.body_mut())
            .expect("candidate has a body");
        let mut edited = false;
        for stmt in body.stmts_mut() {
            if let Stmt::Assign {
                rvalue: Rvalue::Use(Value::Const(c)),
                ..
            } = stmt
            {
                match c {
                    Const::Str(s) => {
                        // Flip cipher-mode strings between their secure and
                        // insecure variants so verdicts actually change;
                        // perturb other strings in place.
                        *s = if s.contains("/ECB/") {
                            s.replace("/ECB/", "/GCM/")
                                .replace("PKCS5Padding", "NoPadding")
                        } else if s.contains("/GCM/") {
                            s.replace("/GCM/", "/ECB/")
                                .replace("NoPadding", "PKCS5Padding")
                        } else {
                            format!("{s}+")
                        };
                        edited = true;
                        break;
                    }
                    Const::Int(v) => {
                        *v = v.wrapping_add(1);
                        edited = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        if !edited {
            // Always-applicable fallback: a trailing no-op still changes
            // the body (and its chunk) without touching semantics.
            body.push(Stmt::Nop);
        }
    }
    p.add_class(class);
    label.body_edits.push(sig);
}

fn add_method(p: &mut Program, rng: &mut StdRng, seed: u64, i: usize, label: &mut VersionMutation) {
    let names = class_names(p);
    let concrete: Vec<&ClassName> = names
        .iter()
        .filter(|n| p.class(n).is_some_and(|c| !c.is_interface()))
        .collect();
    if concrete.is_empty() {
        return;
    }
    let target = concrete[rng.gen_range(0..concrete.len())].clone();
    let mname = format!("upd{seed:x}n{i}");
    let sig = MethodSig::new(target.clone(), mname.clone(), vec![Type::Int], Type::Int);
    if p.class(&target)
        .is_some_and(|c| c.find_method(&sig).is_some())
    {
        return;
    }
    let mut mb = MethodBuilder::public_static(&target, &mname, vec![Type::Int], Type::Int);
    let a = mb.param(0);
    let r = mb.binop(
        BinOp::Add,
        Value::Local(a),
        Value::int(rng.gen_range(1..100i64)),
        Type::Int,
    );
    mb.ret(Value::Local(r));
    let mut class = p.remove_class(&target).expect("target exists");
    class.add_method(mb.build());
    p.add_class(class);
    label.added_methods.push(sig);
}

fn remove_method(p: &mut Program, rng: &mut StdRng, label: &mut VersionMutation) {
    let names = class_names(p);
    // Only prune methods from generated filler/update classes with at
    // least two methods, so entry points and scenario wiring survive.
    let mut candidates: Vec<MethodSig> = Vec::new();
    for name in &names {
        if !is_generated_class(name) {
            continue;
        }
        let class = p.class(name).expect("listed class exists");
        if class.methods().len() < 2 {
            continue;
        }
        // Keep m0: it roots the filler call web from the bootstrap
        // activity; pruning interior methods still breaks real edges.
        for m in class.methods().iter().skip(1) {
            candidates.push(m.sig().clone());
        }
    }
    if candidates.is_empty() {
        return;
    }
    let sig = candidates[rng.gen_range(0..candidates.len())].clone();
    let mut class = p.remove_class(sig.class()).expect("owner exists");
    class.remove_method(&sig).expect("candidate exists");
    p.add_class(class);
    label.removed_methods.push(sig);
}

fn add_class(p: &mut Program, rng: &mut StdRng, seed: u64, i: usize, label: &mut VersionMutation) {
    let name = ClassName::new(format!("com.app.upd.U{seed:x}n{i}"));
    if p.class(&name).is_some() {
        return;
    }
    let mut cb = ClassBuilder::new(name.as_str());
    let methods = rng.gen_range(1..3usize);
    for k in 0..methods {
        let mut mb =
            MethodBuilder::public_static(&name, &format!("m{k}"), vec![Type::Int], Type::Int);
        let a = mb.param(0);
        let r = mb.binop(
            BinOp::Xor,
            Value::Local(a),
            Value::int(rng.gen_range(1..64i64)),
            Type::Int,
        );
        mb.ret(Value::Local(r));
        cb = cb.method(mb.build());
    }
    p.add_class(cb.build());
    label.added_classes.push(name);
}

fn remove_class(p: &mut Program, rng: &mut StdRng, label: &mut VersionMutation) {
    let candidates: Vec<ClassName> = class_names(p)
        .into_iter()
        .filter(is_generated_class_owned)
        .collect();
    if candidates.is_empty() {
        return;
    }
    let name = candidates[rng.gen_range(0..candidates.len())].clone();
    p.remove_class(&name).expect("candidate exists");
    label.removed_classes.push(name);
}

/// Whether `name` is a generated filler (`<pkg>.F<i>`) or update
/// (`com.app.upd.*`) class — safe to prune without orphaning the
/// manifest or scenario wiring.
fn is_generated_class(name: &ClassName) -> bool {
    let s = name.as_str();
    if s.starts_with("com.app.upd.") {
        return true;
    }
    match s.rsplit_once('.') {
        Some((_, last)) => {
            let mut chars = last.chars();
            chars.next() == Some('F')
                && chars.as_str().chars().all(|c| c.is_ascii_digit())
                && !chars.as_str().is_empty()
        }
        None => false,
    }
}

fn is_generated_class_owned(name: &ClassName) -> bool {
    is_generated_class(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppSpec, Mechanism, Scenario, SinkKind};

    fn base() -> Program {
        AppSpec::named("mut")
            .with_seed(3)
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(6, 4, 5)
            .generate()
            .program
    }

    #[test]
    fn mutation_is_deterministic() {
        let p = base();
        let (a, la) = mutate_version(&p, 11);
        let (b, lb) = mutate_version(&p, 11);
        assert_eq!(a, b);
        assert_eq!(format!("{la:?}"), format!("{lb:?}"));
    }

    #[test]
    fn mutation_changes_the_program() {
        let p = base();
        for seed in 0..20u64 {
            let (next, label) = mutate_version(&p, seed);
            if !label.is_identity() {
                assert_ne!(next, p, "seed {seed} labeled a change but program is equal");
            }
        }
    }

    #[test]
    fn labels_match_program_diff() {
        let p = base();
        for seed in 0..30u64 {
            let (next, label) = mutate_version(&p, seed);
            for c in &label.added_classes {
                assert!(p.class(c).is_none() && next.class(c).is_some());
            }
            for c in &label.removed_classes {
                assert!(p.class(c).is_some() && next.class(c).is_none());
            }
            for m in &label.added_methods {
                if label.removed_classes.contains(m.class()) {
                    continue;
                }
                assert!(next.method(m).is_some());
            }
            for m in &label.removed_methods {
                if label.removed_classes.contains(m.class()) {
                    continue;
                }
                assert!(next.method(m).is_none());
            }
            for m in &label.body_edits {
                if label.removed_classes.contains(m.class()) || label.removed_methods.contains(m) {
                    continue;
                }
                assert!(p.method(m).is_some() && next.method(m).is_some());
            }
        }
    }

    #[test]
    fn seeds_cover_body_only_and_structural() {
        let p = base();
        let mut body_only = 0;
        let mut structural = 0;
        for seed in 0..60u64 {
            let (_, label) = mutate_version(&p, seed);
            if label.is_body_only() {
                body_only += 1;
            } else if !label.is_identity() {
                structural += 1;
            }
        }
        assert!(body_only > 5, "body-only updates should dominate");
        assert!(structural > 2, "structural updates must occur");
    }

    #[test]
    fn chains_stay_valid() {
        let mut p = base();
        for seed in 100..110u64 {
            let (next, _) = mutate_version(&p, seed);
            assert!(next.class_count() > 0);
            p = next;
        }
    }
}
