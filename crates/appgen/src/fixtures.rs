//! Deterministic snapshot fixtures: small generated apps whose shape is
//! pinned, built for exercising the artifact persistence layer.
//!
//! The benchset ([`crate::benchset`]) scales with its config, which is
//! what throughput work wants — but serialization tests want the
//! opposite: a *fixed*, mechanism-diverse corpus where every IR
//! construct the wire format must carry (constructors, statics, inner
//! classes, `<clinit>` bodies, interface callbacks, intent strings,
//! unregistered components) is guaranteed present whatever the test's
//! parameters. Each fixture is a pure function of its index, so snapshot
//! bytes for fixture `i` are byte-identical across processes and runs —
//! exactly what a CI job needs to diff.

use crate::scenario::{Mechanism, Scenario, SinkKind};
use crate::{AndroidApp, AppSpec};

/// Number of distinct snapshot fixtures ([`snapshot_fixture`] accepts
/// `0..FIXTURE_COUNT`). One per sink-path mechanism: every mechanism
/// exercises a different slice of the IR + manifest vocabulary.
pub fn fixture_count() -> usize {
    Mechanism::all().len()
}

/// Generates the `i`-th snapshot fixture (`i % fixture_count()`):
/// a compact app whose characteristic path uses one mechanism, plus a
/// little filler so bodies, fields, and multiple classes always exist.
/// Deterministic and independent of every other fixture.
pub fn snapshot_fixture(i: usize) -> AndroidApp {
    let mechs = Mechanism::all();
    let i = i % mechs.len();
    let mech = mechs[i];
    let sink = if i.is_multiple_of(2) {
        SinkKind::Cipher
    } else {
        SinkKind::SslVerifier
    };
    // Alternate vulnerable/secure parameter shapes so both verdict paths
    // cross the snapshot boundary.
    let vulnerable = i % 3 != 2;
    AppSpec::named(format!("com.fixture.snap{i:02}"))
        .with_seed(4242 + i as u64)
        .with_filler(3 + i % 4, 2 + i % 3, 5)
        .with_scenario(Scenario::new(mech, sink, vulnerable))
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_cover_every_mechanism() {
        assert_eq!(fixture_count(), Mechanism::all().len());
        for i in 0..fixture_count() {
            let a = snapshot_fixture(i);
            let b = snapshot_fixture(i);
            assert_eq!(a.dump(), b.dump(), "fixture {i} must be reproducible");
            assert!(a.program.class_count() >= 3, "fixture {i} too small");
        }
        // Distinct fixtures are actually distinct apps.
        assert_ne!(snapshot_fixture(0).dump(), snapshot_fixture(1).dump());
        // Indices wrap instead of panicking.
        let wrapped = snapshot_fixture(fixture_count());
        assert_eq!(wrapped.dump(), snapshot_fixture(0).dump());
    }
}
