//! Yearly app-size datasets reproducing Table I.
//!
//! The paper measured 22,687 popular Google-Play apps and reports, per
//! year, the average and median APK size (Table I). Sizes in such corpora
//! are approximately log-normal; given the paper's mean `m` and median
//! `med` we calibrate `mu = ln(med)` and `sigma = sqrt(2 ln(m / med))`
//! (since the log-normal mean is `exp(mu + sigma²/2)`), then draw
//! deterministic quantile samples. The Table I harness regenerates the
//! table from these samples.

/// One year's corpus statistics from Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YearStats {
    /// Calendar year.
    pub year: u32,
    /// Average APK size in MB.
    pub avg_mb: f64,
    /// Median APK size in MB.
    pub median_mb: f64,
    /// Number of samples the paper had for that year.
    pub samples: usize,
}

/// Table I, verbatim.
pub const PAPER_TABLE1: [YearStats; 5] = [
    YearStats {
        year: 2014,
        avg_mb: 13.8,
        median_mb: 8.4,
        samples: 2840,
    },
    YearStats {
        year: 2015,
        avg_mb: 18.8,
        median_mb: 12.4,
        samples: 1375,
    },
    YearStats {
        year: 2016,
        avg_mb: 21.6,
        median_mb: 16.2,
        samples: 3510,
    },
    YearStats {
        year: 2017,
        avg_mb: 32.9,
        median_mb: 30.0,
        samples: 1706,
    },
    YearStats {
        year: 2018,
        avg_mb: 42.6,
        median_mb: 38.0,
        samples: 3178,
    },
];

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9) — used to draw deterministic log-normal quantiles.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// Draws `n` deterministic APK sizes (bytes) whose distribution matches a
/// year's Table I statistics: quantile samples of the calibrated
/// log-normal.
pub fn year_sizes_bytes(stats: YearStats, n: usize) -> Vec<u64> {
    assert!(n > 0, "need at least one sample");
    let mu = stats.median_mb.ln();
    let ratio = (stats.avg_mb / stats.median_mb).max(1.0001);
    let sigma = (2.0 * ratio.ln()).sqrt();
    (0..n)
        .map(|i| {
            let q = (i as f64 + 0.5) / n as f64;
            let mb = (mu + sigma * probit(q)).exp();
            (mb * 1_048_576.0) as u64
        })
        .collect()
}

/// Summarizes sizes (bytes) into (average MB, median MB).
pub fn summarize_mb(sizes: &[u64]) -> (f64, f64) {
    assert!(!sizes.is_empty(), "empty dataset");
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let avg = sorted.iter().map(|&b| b as f64).sum::<f64>() / sorted.len() as f64 / 1_048_576.0;
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2] as f64
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) as f64 / 2.0
    } / 1_048_576.0;
    (avg, median)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_matches_known_values() {
        assert!((probit(0.5)).abs() < 1e-8);
        assert!((probit(0.975) - 1.959_964).abs() < 1e-4);
        assert!((probit(0.025) + 1.959_964).abs() < 1e-4);
        assert!((probit(0.8413) - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn probit_rejects_out_of_range() {
        let _ = probit(0.0);
    }

    #[test]
    fn year_samples_match_paper_stats() {
        for stats in PAPER_TABLE1 {
            let sizes = year_sizes_bytes(stats, 2001);
            let (avg, median) = summarize_mb(&sizes);
            let avg_err = (avg - stats.avg_mb).abs() / stats.avg_mb;
            let med_err = (median - stats.median_mb).abs() / stats.median_mb;
            assert!(
                avg_err < 0.05,
                "{}: avg {avg:.1} vs paper {}",
                stats.year,
                stats.avg_mb
            );
            assert!(
                med_err < 0.02,
                "{}: median {median:.1} vs paper {}",
                stats.year,
                stats.median_mb
            );
        }
    }

    #[test]
    fn sizes_grow_over_years() {
        let per_year: Vec<f64> = PAPER_TABLE1
            .iter()
            .map(|s| summarize_mb(&year_sizes_bytes(*s, 501)).0)
            .collect();
        for w in per_year.windows(2) {
            assert!(w[1] > w[0], "average size must grow year over year");
        }
    }

    #[test]
    fn deterministic_sampling() {
        let a = year_sizes_bytes(PAPER_TABLE1[4], 144);
        let b = year_sizes_bytes(PAPER_TABLE1[4], 144);
        assert_eq!(a, b);
    }
}
