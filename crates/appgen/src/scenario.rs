//! Scenario generators — one per search mechanism the paper's analysis
//! must defeat.
//!
//! Every generator wires one sink path of a particular *shape* into the
//! program + manifest and appends the matching [`GroundTruth`]. The shapes
//! mirror the paper's running examples: the LG-TV Runnable/Executor chain
//! (Fig 4), the Heyzap `<clinit>` (§IV-C), the NanoHTTPD off-path static
//! field (Fig 6), the ArmSeedCheck unregistered-component FP, the youzu
//! subclassed-sink FN, and the skipped-library / AsyncTask / onClick blind
//! spots of §VI-C.

use crate::{BaselineBlindSpot, GroundTruth};
use backdroid_ir::{
    ClassBuilder, ClassName, Const, FieldSig, InvokeExpr, MethodBuilder, MethodSig, Modifiers,
    Program, Type, Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};

/// The sink family a scenario targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SinkKind {
    /// `javax.crypto.Cipher.getInstance(String)`.
    Cipher,
    /// `org.apache.http.conn.ssl.SSLSocketFactory.setHostnameVerifier(..)`.
    SslVerifier,
    /// `android.webkit.WebView.addJavascriptInterface(Object, String)`.
    WebViewJsInterface,
    /// `new java.util.Random(long)` — constant-seed weak PRNG.
    PrngSeed,
    /// `java.lang.Runtime.exec(String)` — shell command injection.
    ExecCommand,
}

impl SinkKind {
    /// The sink id as reported by `backdroid-core`.
    pub fn sink_id(self) -> &'static str {
        match self {
            SinkKind::Cipher => "crypto.cipher",
            SinkKind::SslVerifier => "ssl.verifier.factory",
            SinkKind::WebViewJsInterface => "webview.jsinterface",
            SinkKind::PrngSeed => "prng.seed",
            SinkKind::ExecCommand => "exec.command",
        }
    }
}

/// The code shape wiring a sink to (or away from) an entry point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    /// Sink directly inside a registered activity's `onCreate`.
    DirectEntry,
    /// Sink behind a chain of private methods (basic signature search).
    PrivateChain,
    /// Sink behind static utility methods (basic signature search).
    StaticChain,
    /// Sink called through a non-overriding child class's signature
    /// (child-class search, §IV-A).
    ChildClass,
    /// Sink in an override invoked through the super-class signature
    /// (advanced search, §IV-B).
    SuperClassPoly,
    /// Sink in a `Runnable.run()` handed through wrappers to
    /// `Executor.execute` (Fig 4; advanced search + async blind spot).
    InterfaceRunnable,
    /// Sink in an `OnClickListener.onClick()` callback.
    CallbackOnClick,
    /// Sink in an `AsyncTask.doInBackground()`.
    AsyncTask,
    /// Sink on a path through a reachable `<clinit>` (Heyzap, §IV-C).
    ClinitReachable,
    /// Sink parameter defined in an off-path `<clinit>` (NanoHTTPD/Fig 6).
    ClinitOffPath,
    /// Sink in a service started by explicit ICC (const-class Intent).
    IccExplicit,
    /// Sink in a service started by implicit ICC (action string).
    IccImplicit,
    /// Sink parameter defined in an earlier lifecycle handler (§IV-E).
    LifecycleChain,
    /// Two sink calls inside one shared utility method reached from
    /// several activities — the §IV-F cache-hit shape ("similar paths are
    /// explored across different sinks").
    SharedUtility,
    /// Sink in dead code: never invoked from anywhere (two calls in the
    /// same method, the §IV-F if-else sink-cache shape).
    DeadCode,
    /// Sink in an activity class that is *not* registered in the manifest
    /// (the Amandroid false-positive shape, §VI-C).
    UnregisteredComponent,
    /// Sink inside a package on the baseline's skipped-library list.
    SkippedLibrary,
    /// Sink invoked through an app subclass of the platform sink class
    /// (the BackDroid false-negative shape, §VI-C).
    IndirectSubclassedSink,
}

impl Mechanism {
    /// All mechanisms, for exhaustive tests and mixed workloads.
    pub fn all() -> &'static [Mechanism] {
        use Mechanism::*;
        &[
            DirectEntry,
            PrivateChain,
            StaticChain,
            ChildClass,
            SuperClassPoly,
            InterfaceRunnable,
            CallbackOnClick,
            AsyncTask,
            ClinitReachable,
            ClinitOffPath,
            IccExplicit,
            IccImplicit,
            LifecycleChain,
            SharedUtility,
            DeadCode,
            UnregisteredComponent,
            SkippedLibrary,
            IndirectSubclassedSink,
        ]
    }
}

/// One sink scenario: a mechanism, a sink kind, and whether the parameter
/// is insecure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// The wiring shape.
    pub mechanism: Mechanism,
    /// The sink family.
    pub sink: SinkKind,
    /// Whether the sink parameter is the insecure variant.
    pub insecure: bool,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(mechanism: Mechanism, sink: SinkKind, insecure: bool) -> Self {
        Scenario {
            mechanism,
            sink,
            insecure,
        }
    }
}

/// The `Cipher.getInstance` transformation string per variant.
pub fn mode_string(insecure: bool) -> &'static str {
    if insecure {
        "AES/ECB/PKCS5Padding"
    } else {
        "AES/GCM/NoPadding"
    }
}

/// The hostname-verifier platform constant per variant.
pub fn verifier_field(insecure: bool) -> FieldSig {
    FieldSig::new(
        "org.apache.http.conn.ssl.SSLSocketFactory",
        if insecure {
            "ALLOW_ALL_HOSTNAME_VERIFIER"
        } else {
            "STRICT_HOSTNAME_VERIFIER"
        },
        Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
    )
}

/// The JavaScript interface name the insecure WebView variant exports.
pub const JS_BRIDGE_NAME: &str = "jsBridge";

/// The constant seed of the insecure PRNG variant.
pub const PRNG_SEED: i64 = 20210621;

/// The `Runtime.exec` command string per variant.
pub fn exec_command(insecure: bool) -> &'static str {
    if insecure {
        "su -c id"
    } else {
        "getprop ro.build.version.sdk"
    }
}

/// The sink API signature of a kind.
pub fn sink_api(kind: SinkKind) -> MethodSig {
    match kind {
        SinkKind::Cipher => MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        ),
        SinkKind::SslVerifier => MethodSig::new(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "setHostnameVerifier",
            vec![Type::object(
                "org.apache.http.conn.ssl.X509HostnameVerifier",
            )],
            Type::Void,
        ),
        SinkKind::WebViewJsInterface => MethodSig::new(
            "android.webkit.WebView",
            "addJavascriptInterface",
            vec![Type::object("java.lang.Object"), Type::string()],
            Type::Void,
        ),
        SinkKind::PrngSeed => {
            MethodSig::new("java.util.Random", "<init>", vec![Type::Long], Type::Void)
        }
        SinkKind::ExecCommand => MethodSig::new(
            "java.lang.Runtime",
            "exec",
            vec![Type::string()],
            Type::object("java.lang.Process"),
        ),
    }
}

/// Emits a sink call whose tracked parameter is `param`.
fn emit_sink_with_value(mb: &mut MethodBuilder, kind: SinkKind, param: Value) {
    match kind {
        SinkKind::Cipher => {
            mb.invoke(InvokeExpr::call_static(sink_api(kind), vec![param]));
        }
        SinkKind::SslVerifier => {
            let factory =
                mb.new_object("org.apache.http.conn.ssl.SSLSocketFactory", vec![], vec![]);
            mb.invoke(InvokeExpr::call_virtual(
                sink_api(kind),
                factory,
                vec![param],
            ));
        }
        SinkKind::WebViewJsInterface => {
            let webview = mb.new_object("android.webkit.WebView", vec![], vec![]);
            let bridge = mb.new_object("java.lang.Object", vec![], vec![]);
            mb.invoke(InvokeExpr::call_virtual(
                sink_api(kind),
                webview,
                vec![Value::Local(bridge), param],
            ));
        }
        SinkKind::PrngSeed => {
            let _rng = mb.new_object("java.util.Random", vec![Type::Long], vec![param]);
        }
        SinkKind::ExecCommand => {
            let rt = mb.invoke_assign(InvokeExpr::call_static(
                MethodSig::new(
                    "java.lang.Runtime",
                    "getRuntime",
                    vec![],
                    Type::object("java.lang.Runtime"),
                ),
                vec![],
            ));
            mb.invoke(InvokeExpr::call_virtual(sink_api(kind), rt, vec![param]));
        }
    }
}

/// Emits a sink call with the literal insecure/secure parameter inline.
fn emit_sink_literal(mb: &mut MethodBuilder, kind: SinkKind, insecure: bool) {
    let v = sink_param_local(mb, kind, insecure);
    emit_sink_with_value(mb, kind, Value::Local(v));
}

/// The tracked parameter value type of a sink kind.
fn param_type(kind: SinkKind) -> Type {
    match kind {
        SinkKind::Cipher | SinkKind::WebViewJsInterface | SinkKind::ExecCommand => Type::string(),
        SinkKind::SslVerifier => Type::object("org.apache.http.conn.ssl.X509HostnameVerifier"),
        SinkKind::PrngSeed => Type::Long,
    }
}

/// Adds the default launcher activity every generated app carries.
pub fn add_launcher(pkg: &str, program: &mut Program, manifest: &mut Manifest) {
    let main = ClassName::new(format!("{pkg}.MainActivity"));
    let mut on_create = MethodBuilder::public(&main, "onCreate", vec![], Type::Void);
    on_create.ret_void();
    program.add_class(
        ClassBuilder::new(main.as_str())
            .extends("android.app.Activity")
            .method(on_create.build())
            .build(),
    );
    manifest.register(
        Component::new(ComponentKind::Activity, main.as_str())
            .with_action("android.intent.action.MAIN")
            .exported(),
    );
}

/// Emits scenario `s` (the `idx`-th of the app) into the program/manifest
/// and appends its ground truth.
pub fn emit(
    s: &Scenario,
    idx: usize,
    pkg: &str,
    program: &mut Program,
    manifest: &mut Manifest,
    ground_truth: &mut Vec<GroundTruth>,
) {
    let p = format!("{pkg}.s{idx}");
    let mut gt = GroundTruth {
        sink_id: s.sink.sink_id().to_string(),
        insecure_param: s.insecure,
        reachable: true,
        mechanism: s.mechanism,
        backdroid_can_locate: true,
        baseline_blind_spot: None,
    };
    match s.mechanism {
        Mechanism::DirectEntry => {
            let act = entry_activity(&p, program, manifest, |mb| {
                emit_sink_literal(mb, s.sink, s.insecure);
            });
            let _ = act;
        }
        Mechanism::PrivateChain => {
            let act = ClassName::new(format!("{p}.EntryActivity"));
            let pt = param_type(s.sink);
            let mut step2 = MethodBuilder::private(&act, "step2", vec![pt.clone()], Type::Void);
            let arg = step2.param(0);
            emit_sink_with_value(&mut step2, s.sink, Value::Local(arg));
            let mut step1 = MethodBuilder::private(&act, "step1", vec![pt.clone()], Type::Void);
            let this = step1.this();
            let arg = step1.param(0);
            step1.invoke(InvokeExpr::call_special(
                MethodSig::new(act.as_str(), "step2", vec![pt.clone()], Type::Void),
                this,
                vec![Value::Local(arg)],
            ));
            let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
            let this = on_create.this();
            let v = sink_param_local(&mut on_create, s.sink, s.insecure);
            on_create.invoke(InvokeExpr::call_special(
                MethodSig::new(act.as_str(), "step1", vec![pt.clone()], Type::Void),
                this,
                vec![Value::Local(v)],
            ));
            program.add_class(
                ClassBuilder::new(act.as_str())
                    .extends("android.app.Activity")
                    .method(on_create.build())
                    .method(step1.build())
                    .method(step2.build())
                    .build(),
            );
            manifest.register(Component::new(ComponentKind::Activity, act.as_str()));
        }
        Mechanism::StaticChain => {
            let act = ClassName::new(format!("{p}.EntryActivity"));
            let util = ClassName::new(format!("{p}.CryptoUtil"));
            let pt = param_type(s.sink);
            let mut inner =
                MethodBuilder::public_static(&util, "inner", vec![pt.clone()], Type::Void);
            let arg = inner.param(0);
            emit_sink_with_value(&mut inner, s.sink, Value::Local(arg));
            let mut run = MethodBuilder::public_static(&util, "run", vec![pt.clone()], Type::Void);
            let arg = run.param(0);
            run.invoke(InvokeExpr::call_static(
                MethodSig::new(util.as_str(), "inner", vec![pt.clone()], Type::Void),
                vec![Value::Local(arg)],
            ));
            program.add_class(
                ClassBuilder::new(util.as_str())
                    .method(inner.build())
                    .method(run.build())
                    .build(),
            );
            let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
            let v = sink_param_local(&mut on_create, s.sink, s.insecure);
            on_create.invoke(InvokeExpr::call_static(
                MethodSig::new(util.as_str(), "run", vec![pt.clone()], Type::Void),
                vec![Value::Local(v)],
            ));
            program.add_class(
                ClassBuilder::new(act.as_str())
                    .extends("android.app.Activity")
                    .method(on_create.build())
                    .build(),
            );
            manifest.register(Component::new(ComponentKind::Activity, act.as_str()));
        }
        Mechanism::ChildClass => {
            let base = ClassName::new(format!("{p}.Worker"));
            let child = ClassName::new(format!("{p}.ChildWorker"));
            let pt = param_type(s.sink);
            let mut do_work = MethodBuilder::public(&base, "doWork", vec![pt.clone()], Type::Void);
            let arg = do_work.param(0);
            emit_sink_with_value(&mut do_work, s.sink, Value::Local(arg));
            let mut bctor = MethodBuilder::constructor(&base, vec![]);
            bctor.ret_void();
            program.add_class(
                ClassBuilder::new(base.as_str())
                    .method(do_work.build())
                    .method(bctor.build())
                    .build(),
            );
            let mut cctor = MethodBuilder::constructor(&child, vec![]);
            cctor.ret_void();
            program.add_class(
                ClassBuilder::new(child.as_str())
                    .extends(base.as_str())
                    .method(cctor.build())
                    .build(),
            );
            let act = entry_activity(&p, program, manifest, |mb| {
                let w = mb.new_object(child.as_str(), vec![], vec![]);
                let v = sink_param_local(mb, s.sink, s.insecure);
                // Invocation through the CHILD class signature.
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(child.as_str(), "doWork", vec![pt.clone()], Type::Void),
                    w,
                    vec![Value::Local(v)],
                ));
            });
            let _ = act;
        }
        Mechanism::SuperClassPoly => {
            let base = ClassName::new(format!("{p}.SuperServer"));
            let child = ClassName::new(format!("{p}.HttpServer"));
            let mut b_start = MethodBuilder::public(&base, "start", vec![], Type::Void);
            b_start.ret_void();
            let mut bctor = MethodBuilder::constructor(&base, vec![]);
            bctor.ret_void();
            program.add_class(
                ClassBuilder::new(base.as_str())
                    .method(b_start.build())
                    .method(bctor.build())
                    .build(),
            );
            // Child override contains the sink.
            let mut c_start = MethodBuilder::public(&child, "start", vec![], Type::Void);
            emit_sink_literal(&mut c_start, s.sink, s.insecure);
            let mut cctor = MethodBuilder::constructor(&child, vec![]);
            cctor.ret_void();
            program.add_class(
                ClassBuilder::new(child.as_str())
                    .extends(base.as_str())
                    .method(c_start.build())
                    .method(cctor.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, |mb| {
                let obj = mb.new_object(child.as_str(), vec![], vec![]);
                let up = mb.cast(Type::Object(base.clone()), Value::Local(obj));
                // Invocation through the SUPER class signature.
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(base.as_str(), "start", vec![], Type::Void),
                    up,
                    vec![],
                ));
            });
        }
        Mechanism::InterfaceRunnable => {
            gt.baseline_blind_spot = Some(BaselineBlindSpot::AsyncCallback);
            let task = ClassName::new(format!("{p}.FetchTask"));
            let util = ClassName::new(format!("{p}.Util"));
            let pt = param_type(s.sink);
            let field = FieldSig::new(task.clone(), "mode", pt.clone());
            let mut ctor = MethodBuilder::constructor(&task, vec![pt.clone()]);
            let this = ctor.this();
            let arg = ctor.param(0);
            ctor.write_instance_field(this, field.clone(), Value::Local(arg));
            let mut run = MethodBuilder::public(&task, "run", vec![], Type::Void);
            let this = run.this();
            let v = run.read_instance_field(this, field.clone());
            emit_sink_with_value(&mut run, s.sink, Value::Local(v));
            program.add_class(
                ClassBuilder::new(task.as_str())
                    .implements("java.lang.Runnable")
                    .field("mode", pt.clone(), Modifiers::private())
                    .method(ctor.build())
                    .method(run.build())
                    .build(),
            );
            // Util.runInBackground(Runnable) → Executor.execute(Runnable).
            let runnable = Type::object("java.lang.Runnable");
            let mut rib = MethodBuilder::public_static(
                &util,
                "runInBackground",
                vec![runnable.clone()],
                Type::Void,
            );
            let exec = rib.local(Type::object("java.util.concurrent.Executor"));
            let p0 = rib.param(0);
            rib.invoke(InvokeExpr::call_interface(
                MethodSig::new(
                    "java.util.concurrent.Executor",
                    "execute",
                    vec![runnable.clone()],
                    Type::Void,
                ),
                exec,
                vec![Value::Local(p0)],
            ));
            program.add_class(ClassBuilder::new(util.as_str()).method(rib.build()).build());
            entry_activity(&p, program, manifest, |mb| {
                let v = sink_param_local(mb, s.sink, s.insecure);
                let t = mb.new_object(task.as_str(), vec![pt.clone()], vec![Value::Local(v)]);
                mb.invoke(InvokeExpr::call_static(
                    MethodSig::new(
                        util.as_str(),
                        "runInBackground",
                        vec![runnable.clone()],
                        Type::Void,
                    ),
                    vec![Value::Local(t)],
                ));
            });
        }
        Mechanism::CallbackOnClick => {
            gt.baseline_blind_spot = Some(BaselineBlindSpot::AsyncCallback);
            let handler = ClassName::new(format!("{p}.ClickHandler"));
            let mut ctor = MethodBuilder::constructor(&handler, vec![]);
            ctor.ret_void();
            let mut on_click = MethodBuilder::public(
                &handler,
                "onClick",
                vec![Type::object("android.view.View")],
                Type::Void,
            );
            emit_sink_literal(&mut on_click, s.sink, s.insecure);
            program.add_class(
                ClassBuilder::new(handler.as_str())
                    .implements("android.view.View$OnClickListener")
                    .method(ctor.build())
                    .method(on_click.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, |mb| {
                let h = mb.new_object(handler.as_str(), vec![], vec![]);
                let view = mb.new_object("android.view.View", vec![], vec![]);
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(
                        "android.view.View",
                        "setOnClickListener",
                        vec![Type::object("android.view.View$OnClickListener")],
                        Type::Void,
                    ),
                    view,
                    vec![Value::Local(h)],
                ));
            });
        }
        Mechanism::AsyncTask => {
            gt.baseline_blind_spot = Some(BaselineBlindSpot::AsyncCallback);
            let task = ClassName::new(format!("{p}.SyncTask"));
            let mut ctor = MethodBuilder::constructor(&task, vec![]);
            ctor.ret_void();
            let mut dib = MethodBuilder::public(&task, "doInBackground", vec![], Type::Void);
            emit_sink_literal(&mut dib, s.sink, s.insecure);
            program.add_class(
                ClassBuilder::new(task.as_str())
                    .extends("android.os.AsyncTask")
                    .method(ctor.build())
                    .method(dib.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, |mb| {
                let t = mb.new_object(task.as_str(), vec![], vec![]);
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new("android.os.AsyncTask", "execute", vec![], Type::Void),
                    t,
                    vec![],
                ));
            });
        }
        Mechanism::ClinitReachable => {
            // Heyzap shape: the sink sits under ApiClient.<clinit>; the
            // class is used by AdModel, which is used by the registered
            // entry activity.
            let api = ClassName::new(format!("{p}.ApiClient"));
            let model = ClassName::new(format!("{p}.AdModel"));
            let mut setup = MethodBuilder::new(
                MethodSig::new(api.as_str(), "setup", vec![], Type::Void),
                Modifiers::private().with_static(),
            );
            emit_sink_literal(&mut setup, s.sink, s.insecure);
            let mut clinit = MethodBuilder::clinit(&api);
            clinit.invoke(InvokeExpr::call_static(
                MethodSig::new(api.as_str(), "setup", vec![], Type::Void),
                vec![],
            ));
            let mut get = MethodBuilder::public_static(&api, "endpoint", vec![], Type::string());
            get.ret(Value::str("https://ads.example.com"));
            program.add_class(
                ClassBuilder::new(api.as_str())
                    .method(setup.build())
                    .method(clinit.build())
                    .method(get.build())
                    .build(),
            );
            let mut mctor = MethodBuilder::constructor(&model, vec![]);
            mctor.ret_void();
            let mut fetch = MethodBuilder::public(&model, "fetch", vec![], Type::Void);
            let _e = fetch.invoke_assign(InvokeExpr::call_static(
                MethodSig::new(api.as_str(), "endpoint", vec![], Type::string()),
                vec![],
            ));
            program.add_class(
                ClassBuilder::new(model.as_str())
                    .method(mctor.build())
                    .method(fetch.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, |mb| {
                let m = mb.new_object(model.as_str(), vec![], vec![]);
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(model.as_str(), "fetch", vec![], Type::Void),
                    m,
                    vec![],
                ));
            });
        }
        Mechanism::ClinitOffPath => {
            // NanoHTTPD shape: the sink parameter comes from a static
            // field whose defining write lives only in <clinit>.
            let config = ClassName::new(format!("{p}.Config"));
            let pt = param_type(s.sink);
            let field = FieldSig::new(config.clone(), "MODE", pt.clone());
            let mut clinit = MethodBuilder::clinit(&config);
            let v = sink_param_local(&mut clinit, s.sink, s.insecure);
            clinit.write_static_field(field.clone(), Value::Local(v));
            program.add_class(
                ClassBuilder::new(config.as_str())
                    .field("MODE", pt.clone(), Modifiers::public_static().with_final())
                    .method(clinit.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, |mb| {
                let v = mb.read_static_field(field.clone());
                emit_sink_with_value(mb, s.sink, Value::Local(v));
            });
        }
        Mechanism::IccExplicit | Mechanism::IccImplicit => {
            let svc = ClassName::new(format!("{p}.WorkService"));
            let action = format!("{p}.action.WORK");
            let mut osc = MethodBuilder::public(&svc, "onStartCommand", vec![], Type::Void);
            emit_sink_literal(&mut osc, s.sink, s.insecure);
            program.add_class(
                ClassBuilder::new(svc.as_str())
                    .extends("android.app.Service")
                    .method(osc.build())
                    .build(),
            );
            let mut comp = Component::new(ComponentKind::Service, svc.as_str());
            if s.mechanism == Mechanism::IccImplicit {
                comp = comp.with_action(action.clone());
            }
            manifest.register(comp);
            let explicit = s.mechanism == Mechanism::IccExplicit;
            entry_activity(&p, program, manifest, move |mb| {
                let this = mb.this();
                let intent = if explicit {
                    let cls = mb.assign_const(Const::Class(svc.clone()));
                    mb.new_object(
                        "android.content.Intent",
                        vec![
                            Type::object("android.content.Context"),
                            Type::object("java.lang.Class"),
                        ],
                        vec![Value::Local(this), Value::Local(cls)],
                    )
                } else {
                    let a = mb.assign_const(Const::str(action.clone()));
                    mb.new_object(
                        "android.content.Intent",
                        vec![Type::string()],
                        vec![Value::Local(a)],
                    )
                };
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(
                        "android.content.Context",
                        "startService",
                        vec![Type::object("android.content.Intent")],
                        Type::object("android.content.ComponentName"),
                    ),
                    this,
                    vec![Value::Local(intent)],
                ));
            });
        }
        Mechanism::LifecycleChain => {
            let act = ClassName::new(format!("{p}.EntryActivity"));
            let pt = param_type(s.sink);
            let field = FieldSig::new(act.clone(), "mode", pt.clone());
            let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
            let this = on_create.this();
            let v = sink_param_local(&mut on_create, s.sink, s.insecure);
            on_create.write_instance_field(this, field.clone(), Value::Local(v));
            let mut on_resume = MethodBuilder::public(&act, "onResume", vec![], Type::Void);
            let this = on_resume.this();
            let v = on_resume.read_instance_field(this, field.clone());
            emit_sink_with_value(&mut on_resume, s.sink, Value::Local(v));
            program.add_class(
                ClassBuilder::new(act.as_str())
                    .extends("android.app.Activity")
                    .field("mode", pt, Modifiers::private())
                    .method(on_create.build())
                    .method(on_resume.build())
                    .build(),
            );
            manifest.register(Component::new(ComponentKind::Activity, act.as_str()));
        }
        Mechanism::DeadCode => {
            gt.reachable = false;
            let dead = ClassName::new(format!("{p}.UnusedHelper"));
            let mut m = MethodBuilder::public(&dead, "neverCalled", vec![], Type::Void);
            // Two sink calls in one unreachable method — once the first is
            // proven unreachable, the §IV-F sink cache skips the second.
            emit_sink_literal(&mut m, s.sink, s.insecure);
            emit_sink_literal(&mut m, s.sink, false);
            program.add_class(ClassBuilder::new(dead.as_str()).method(m.build()).build());
        }
        Mechanism::SharedUtility => {
            let util = ClassName::new(format!("{p}.SharedCrypto"));
            let pt = param_type(s.sink);
            // helper(mode) contains TWO sink calls (if-else shape): the
            // second backtrack replays the first's searches → cache hits.
            let mut helper = MethodBuilder::new(
                MethodSig::new(util.as_str(), "helper", vec![pt.clone()], Type::Void),
                Modifiers::private().with_static(),
            );
            let arg = helper.param(0);
            emit_sink_with_value(&mut helper, s.sink, Value::Local(arg));
            emit_sink_literal(&mut helper, s.sink, false);
            // Retry-style recursion back into run(): the backtrack path
            // run -> helper -> run closes a cycle, exercising the §IV-F
            // CrossBackward dead-loop detection.
            helper.invoke(InvokeExpr::call_static(
                MethodSig::new(util.as_str(), "run", vec![pt.clone()], Type::Void),
                vec![Value::Local(arg)],
            ));
            let mut run = MethodBuilder::public_static(&util, "run", vec![pt.clone()], Type::Void);
            let arg = run.param(0);
            run.invoke(InvokeExpr::call_static(
                MethodSig::new(util.as_str(), "helper", vec![pt.clone()], Type::Void),
                vec![Value::Local(arg)],
            ));
            program.add_class(
                ClassBuilder::new(util.as_str())
                    .method(helper.build())
                    .method(run.build())
                    .build(),
            );
            // Three distinct registered activities all call run(...).
            for k in 0..3 {
                let act = ClassName::new(format!("{p}.Caller{k}Activity"));
                let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
                let v = sink_param_local(&mut on_create, s.sink, s.insecure);
                on_create.invoke(InvokeExpr::call_static(
                    MethodSig::new(util.as_str(), "run", vec![pt.clone()], Type::Void),
                    vec![Value::Local(v)],
                ));
                program.add_class(
                    ClassBuilder::new(act.as_str())
                        .extends("android.app.Activity")
                        .method(on_create.build())
                        .build(),
                );
                manifest.register(Component::new(ComponentKind::Activity, act.as_str()));
            }
        }
        Mechanism::UnregisteredComponent => {
            gt.reachable = false;
            // ArmSeedCheck/qihoopay FP shape: an Activity-derived class
            // with a sink in onCreate, deliberately NOT in the manifest.
            let hidden = ClassName::new(format!("{p}.TstoreActivation"));
            let mut on_create = MethodBuilder::public(&hidden, "onCreate", vec![], Type::Void);
            emit_sink_literal(&mut on_create, s.sink, s.insecure);
            program.add_class(
                ClassBuilder::new(hidden.as_str())
                    .extends("android.app.Activity")
                    .method(on_create.build())
                    .build(),
            );
        }
        Mechanism::SkippedLibrary => {
            gt.baseline_blind_spot = Some(BaselineBlindSpot::SkippedLibrary);
            // The sink lives in a library package from the baseline's
            // liblist (Amazon/Tencent/Facebook shapes of §VI-C).
            let helper = ClassName::new(format!("com.facebook.s{idx}.EncryptionHelper"));
            let pt = param_type(s.sink);
            let mut enc =
                MethodBuilder::public_static(&helper, "encrypt", vec![pt.clone()], Type::Void);
            let arg = enc.param(0);
            emit_sink_with_value(&mut enc, s.sink, Value::Local(arg));
            program.add_class(
                ClassBuilder::new(helper.as_str())
                    .method(enc.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, move |mb| {
                let v = sink_param_local(mb, s.sink, s.insecure);
                mb.invoke(InvokeExpr::call_static(
                    MethodSig::new(helper.as_str(), "encrypt", vec![pt.clone()], Type::Void),
                    vec![Value::Local(v)],
                ));
            });
        }
        Mechanism::IndirectSubclassedSink => {
            gt.backdroid_can_locate = false;
            // youzu shape: a subclass of the platform sink class invokes
            // the sink through its own signature.
            let factory = ClassName::new(format!("{p}.DefaultSSLSocketFactory"));
            let mut ctor = MethodBuilder::constructor(&factory, vec![]);
            ctor.ret_void();
            let mut setup = MethodBuilder::public(&factory, "setup", vec![], Type::Void);
            let this = setup.this();
            let v = setup.read_static_field(verifier_field(s.insecure));
            setup.invoke(InvokeExpr::call_virtual(
                MethodSig::new(
                    factory.as_str(),
                    "setHostnameVerifier",
                    vec![Type::object(
                        "org.apache.http.conn.ssl.X509HostnameVerifier",
                    )],
                    Type::Void,
                ),
                this,
                vec![Value::Local(v)],
            ));
            program.add_class(
                ClassBuilder::new(factory.as_str())
                    .extends("org.apache.http.conn.ssl.SSLSocketFactory")
                    .method(ctor.build())
                    .method(setup.build())
                    .build(),
            );
            entry_activity(&p, program, manifest, move |mb| {
                let f = mb.new_object(factory.as_str(), vec![], vec![]);
                mb.invoke(InvokeExpr::call_virtual(
                    MethodSig::new(factory.as_str(), "setup", vec![], Type::Void),
                    f,
                    vec![],
                ));
            });
            // Report under the SSL id regardless of `s.sink` — this shape
            // only exists for the SSL sink.
            gt.sink_id = SinkKind::SslVerifier.sink_id().to_string();
        }
    }
    ground_truth.push(gt);
}

/// Allocates the literal sink-parameter value in the current method and
/// returns its local.
fn sink_param_local(
    mb: &mut MethodBuilder,
    kind: SinkKind,
    insecure: bool,
) -> backdroid_ir::LocalId {
    match kind {
        SinkKind::Cipher => mb.assign_const(Const::str(mode_string(insecure))),
        SinkKind::SslVerifier => mb.read_static_field(verifier_field(insecure)),
        SinkKind::WebViewJsInterface => {
            if insecure {
                mb.assign_const(Const::str(JS_BRIDGE_NAME))
            } else {
                // A runtime-derived name: unresolvable by constant
                // propagation, so the verdict stays Undetermined.
                mb.invoke_assign(InvokeExpr::call_static(
                    MethodSig::new(
                        "java.lang.System",
                        "getProperty",
                        vec![Type::string()],
                        Type::string(),
                    ),
                    vec![Value::str("bridge.name")],
                ))
            }
        }
        SinkKind::PrngSeed => {
            if insecure {
                mb.assign_const(Const::Int(PRNG_SEED))
            } else {
                // A time-derived seed: unresolvable, verdict Undetermined.
                mb.invoke_assign(InvokeExpr::call_static(
                    MethodSig::new("java.lang.System", "nanoTime", vec![], Type::Long),
                    vec![],
                ))
            }
        }
        SinkKind::ExecCommand => mb.assign_const(Const::str(exec_command(insecure))),
    }
}

/// Creates and registers `{p}.EntryActivity` whose `onCreate` body is
/// produced by `body`.
fn entry_activity(
    p: &str,
    program: &mut Program,
    manifest: &mut Manifest,
    body: impl FnOnce(&mut MethodBuilder),
) -> ClassName {
    let act = ClassName::new(format!("{p}.EntryActivity"));
    let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
    body(&mut on_create);
    program.add_class(
        ClassBuilder::new(act.as_str())
            .extends("android.app.Activity")
            .method(on_create.build())
            .build(),
    );
    manifest.register(Component::new(ComponentKind::Activity, act.as_str()));
    act
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mechanism_generates_a_valid_program() {
        for (i, &m) in Mechanism::all().iter().enumerate() {
            let mut program = Program::new();
            let mut manifest = Manifest::new("com.t");
            let mut gt = Vec::new();
            add_launcher("com.t", &mut program, &mut manifest);
            let s = Scenario::new(m, SinkKind::Cipher, true);
            emit(&s, i, "com.t", &mut program, &mut manifest, &mut gt);
            assert_eq!(gt.len(), 1, "{m:?}");
            assert!(program.class_count() >= 2, "{m:?}");
            // Encoding/dumping must succeed for every shape.
            let dump = backdroid_dex::dump_image(&backdroid_dex::DexImage::encode(&program));
            assert!(!dump.is_empty());
        }
    }

    #[test]
    fn reachability_flags_match_shapes() {
        for (m, expected) in [
            (Mechanism::DirectEntry, true),
            (Mechanism::DeadCode, false),
            (Mechanism::UnregisteredComponent, false),
            (Mechanism::SkippedLibrary, true),
        ] {
            let mut program = Program::new();
            let mut manifest = Manifest::new("com.t");
            let mut gt = Vec::new();
            add_launcher("com.t", &mut program, &mut manifest);
            emit(
                &Scenario::new(m, SinkKind::Cipher, true),
                0,
                "com.t",
                &mut program,
                &mut manifest,
                &mut gt,
            );
            assert_eq!(gt[0].reachable, expected, "{m:?}");
        }
    }

    #[test]
    fn blind_spots_are_labeled() {
        let mut program = Program::new();
        let mut manifest = Manifest::new("com.t");
        let mut gt = Vec::new();
        add_launcher("com.t", &mut program, &mut manifest);
        emit(
            &Scenario::new(Mechanism::AsyncTask, SinkKind::Cipher, true),
            0,
            "com.t",
            &mut program,
            &mut manifest,
            &mut gt,
        );
        assert_eq!(
            gt[0].baseline_blind_spot,
            Some(BaselineBlindSpot::AsyncCallback)
        );
        let mut gt2 = Vec::new();
        emit(
            &Scenario::new(
                Mechanism::IndirectSubclassedSink,
                SinkKind::SslVerifier,
                true,
            ),
            1,
            "com.t",
            &mut program,
            &mut manifest,
            &mut gt2,
        );
        assert!(!gt2[0].backdroid_can_locate);
    }

    #[test]
    fn secure_variant_uses_safe_parameters() {
        assert_eq!(mode_string(false), "AES/GCM/NoPadding");
        assert_eq!(mode_string(true), "AES/ECB/PKCS5Padding");
        assert_eq!(verifier_field(true).name(), "ALLOW_ALL_HOSTNAME_VERIFIER");
        assert_eq!(verifier_field(false).name(), "STRICT_HOSTNAME_VERIFIER");
        assert_eq!(exec_command(true), "su -c id");
        assert_eq!(exec_command(false), "getprop ro.build.version.sdk");
    }

    #[test]
    fn new_sink_kinds_generate_valid_programs_across_mechanisms() {
        for kind in [
            SinkKind::WebViewJsInterface,
            SinkKind::PrngSeed,
            SinkKind::ExecCommand,
        ] {
            for (i, &m) in [
                Mechanism::DirectEntry,
                Mechanism::PrivateChain,
                Mechanism::StaticChain,
                Mechanism::ClinitOffPath,
                Mechanism::DeadCode,
            ]
            .iter()
            .enumerate()
            {
                for insecure in [true, false] {
                    let mut program = Program::new();
                    let mut manifest = Manifest::new("com.t");
                    let mut gt = Vec::new();
                    add_launcher("com.t", &mut program, &mut manifest);
                    let s = Scenario::new(m, kind, insecure);
                    emit(&s, i, "com.t", &mut program, &mut manifest, &mut gt);
                    assert_eq!(gt[0].sink_id, kind.sink_id(), "{kind:?}/{m:?}");
                    let dump =
                        backdroid_dex::dump_image(&backdroid_dex::DexImage::encode(&program));
                    assert!(!dump.is_empty(), "{kind:?}/{m:?}");
                }
            }
        }
    }
}
