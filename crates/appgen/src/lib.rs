//! # backdroid-appgen
//!
//! Deterministic synthetic Android app and dataset generation.
//!
//! The paper evaluates on real Google-Play APKs, which this offline
//! reproduction cannot ship. Instead, every structural property that
//! drives the tools' cost and accuracy is generated here: app size
//! (classes/methods/bytes), library share, sink count, reachable vs dead
//! sinks, and — crucially — one scenario generator per search mechanism
//! the paper's analysis must defeat (super classes, interfaces, callbacks,
//! async flows, static initializers, ICC, lifecycle chains, skipped
//! libraries, unregistered components, subclassed sink wrappers).
//!
//! Each generated app carries machine-checkable [`GroundTruth`] so the
//! detection-comparison harness can score both tools.
//!
//! ```
//! use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
//!
//! let app = AppSpec::named("demo")
//!     .with_scenario(Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, true))
//!     .with_filler(5, 4, 6)
//!     .generate();
//! assert!(app.program.class_count() > 5);
//! assert_eq!(app.ground_truth.len(), 1);
//! assert!(app.ground_truth[0].vulnerable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchset;
pub mod dataset;
pub mod filler;
pub mod fixtures;
pub mod mutate;
pub mod scenario;
pub mod workload;

use backdroid_dex::{apk_size_bytes, dump_image, DexImage};
use backdroid_ir::Program;
use backdroid_manifest::Manifest;

pub use mutate::{mutate_version, VersionMutation};
pub use scenario::{Mechanism, Scenario, SinkKind};

/// Which baseline (whole-app tool) weakness a ground-truth item exploits,
/// reproducing the §VI-C categories of findings BackDroid makes and
/// Amandroid misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineBlindSpot {
    /// The sink lives in a package on the baseline's skipped-library list.
    SkippedLibrary,
    /// The flow crosses an async/callback edge absent from the baseline's
    /// hard-coded flow table (Executor.execute, AsyncTask, onClick).
    AsyncCallback,
}

/// Machine-checkable label for one generated sink path.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The sink id this path targets (`crypto.cipher`, `ssl.verifier.*`).
    pub sink_id: String,
    /// Whether the sink parameter is insecure.
    pub insecure_param: bool,
    /// Whether the sink call is reachable from a registered entry point.
    pub reachable: bool,
    /// The code shape that wires the sink.
    pub mechanism: Mechanism,
    /// Whether BackDroid's *default* configuration can find the sink at
    /// all (false only for the subclassed-sink-wrapper FN shape of §VI-C).
    pub backdroid_can_locate: bool,
    /// Which baseline weakness (if any) hides this path from the
    /// whole-app tool.
    pub baseline_blind_spot: Option<BaselineBlindSpot>,
}

impl GroundTruth {
    /// A *true vulnerability*: insecure parameter on a reachable path.
    pub fn vulnerable(&self) -> bool {
        self.insecure_param && self.reachable
    }
}

/// One fully generated Android app.
#[derive(Debug)]
pub struct AndroidApp {
    /// A stable app identifier (plays the role of the package name on
    /// Google Play).
    pub name: String,
    /// The IR program (program analysis space).
    pub program: Program,
    /// The manifest.
    pub manifest: Manifest,
    /// Non-code bytes (resources, assets) counted into the APK size.
    pub resource_bytes: u64,
    /// Ground-truth labels for every generated sink path.
    pub ground_truth: Vec<GroundTruth>,
}

impl AndroidApp {
    /// Total APK size in bytes (encoded DEX + resources).
    pub fn apk_size_bytes(&self) -> u64 {
        apk_size_bytes(&DexImage::encode(&self.program), self.resource_bytes)
    }

    /// The merged dexdump plaintext of the app.
    pub fn dump(&self) -> String {
        dump_image(&DexImage::encode(&self.program))
    }

    /// Number of ground-truth sink paths that are real vulnerabilities.
    pub fn true_vulnerabilities(&self) -> usize {
        self.ground_truth.iter().filter(|g| g.vulnerable()).count()
    }
}

/// A declarative app specification; `generate()` turns it into a full
/// [`AndroidApp`] deterministically (same spec + seed ⇒ identical app).
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// App identifier.
    pub name: String,
    /// RNG seed for the filler code.
    pub seed: u64,
    /// Number of filler classes.
    pub filler_classes: usize,
    /// Methods per filler class.
    pub methods_per_class: usize,
    /// Statements per filler method.
    pub stmts_per_method: usize,
    /// Resource/asset bytes added to the APK size.
    pub resource_bytes: u64,
    /// Sink scenarios to wire in.
    pub scenarios: Vec<Scenario>,
}

impl AppSpec {
    /// Starts a spec with small defaults.
    pub fn named(name: impl Into<String>) -> Self {
        AppSpec {
            name: name.into(),
            seed: 7,
            filler_classes: 10,
            methods_per_class: 5,
            stmts_per_method: 8,
            resource_bytes: 1_000_000,
            scenarios: Vec::new(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets filler dimensions (classes × methods × statements).
    pub fn with_filler(mut self, classes: usize, methods: usize, stmts: usize) -> Self {
        self.filler_classes = classes;
        self.methods_per_class = methods;
        self.stmts_per_method = stmts;
        self
    }

    /// Sets the resource byte count.
    pub fn with_resources(mut self, bytes: u64) -> Self {
        self.resource_bytes = bytes;
        self
    }

    /// Adds one scenario.
    pub fn with_scenario(mut self, s: Scenario) -> Self {
        self.scenarios.push(s);
        self
    }

    /// Adds many scenarios.
    pub fn with_scenarios(mut self, s: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios.extend(s);
        self
    }

    /// Generates the app.
    pub fn generate(&self) -> AndroidApp {
        let mut program = Program::new();
        let mut manifest = Manifest::new(self.name.clone());
        let mut ground_truth = Vec::new();

        // A default launcher activity always exists (scenario generators
        // may register more components).
        scenario::add_launcher(&self.name, &mut program, &mut manifest);

        for (i, s) in self.scenarios.iter().enumerate() {
            scenario::emit(
                s,
                i,
                &self.name,
                &mut program,
                &mut manifest,
                &mut ground_truth,
            );
        }

        filler::add_filler(
            &mut program,
            &mut manifest,
            self.seed,
            self.filler_classes,
            self.methods_per_class,
            self.stmts_per_method,
        );

        AndroidApp {
            name: self.name.clone(),
            program,
            manifest,
            resource_bytes: self.resource_bytes,
            ground_truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = AppSpec::named("det")
            .with_seed(42)
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(8, 4, 6);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.dump(), b.dump());
        assert_eq!(a.apk_size_bytes(), b.apk_size_bytes());
    }

    #[test]
    fn apk_size_scales_with_filler() {
        let small = AppSpec::named("s").with_filler(5, 3, 4).generate();
        let large = AppSpec::named("l").with_filler(50, 6, 10).generate();
        assert!(large.apk_size_bytes() > small.apk_size_bytes());
        assert!(large.program.method_count() > small.program.method_count());
    }

    #[test]
    fn ground_truth_flags() {
        let app = AppSpec::named("gt")
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_scenario(Scenario::new(Mechanism::DeadCode, SinkKind::Cipher, true))
            .generate();
        assert_eq!(app.ground_truth.len(), 2);
        assert_eq!(
            app.true_vulnerabilities(),
            1,
            "dead-code sink is not vulnerable"
        );
    }
}
