//! The "144 modern apps" benchmark set (paper §VI-A).
//!
//! Each app carries a *profile* that reproduces one of the paper's
//! detection-result populations (§VI-C): the 7 ECB true positives both
//! tools find, the 17 SSL true positives (2 of them in the subclassed-sink
//! shape BackDroid's default search misses), the 6 Amandroid false
//! positives from unregistered components, the 28 timeout-hidden
//! vulnerabilities, the 8 skipped-library and 8 async/callback blind
//! spots, the 10 whole-app occasional errors, plus 22 large-but-clean
//! timeout apps (bringing the timeout population to 50 of 144 ≈ 35%) and
//! ordinary clean apps. Sizes follow the paper's corpus statistics
//! (avg 41.5 MB, median 36.2 MB, min 2.9 MB, max 104.9 MB).

use crate::dataset::probit;
use crate::scenario::{Mechanism, Scenario, SinkKind};
use crate::{AndroidApp, AppSpec};

/// The §VI-C population a benchmark app belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Clean app: secure sinks only.
    Normal,
    /// ECB true positive detected by both tools.
    EcbTp,
    /// SSL true positive detected by both tools.
    SslTp,
    /// SSL true positive in the subclassed-sink shape (BackDroid FN).
    SslTpSubclassed,
    /// Amandroid false positive: insecure sink in an unregistered
    /// component.
    AmandroidFp,
    /// Vulnerable app so large the whole-app baseline times out.
    TimeoutVictim,
    /// Clean app large enough to time the baseline out.
    TimeoutNoVuln,
    /// Vulnerability inside a skipped-library package.
    SkippedLib,
    /// Vulnerability behind an async/callback edge the baseline misses.
    AsyncCallback,
    /// App whose whole-app analysis hits an occasional internal error.
    WholeAppError,
}

/// One benchmark app with its population label.
#[derive(Debug)]
pub struct BenchApp {
    /// The generated app.
    pub app: AndroidApp,
    /// The §VI-C population.
    pub profile: Profile,
}

/// Benchmark-set shape parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchsetConfig {
    /// Number of apps (the paper uses 144).
    pub count: usize,
    /// Scales the filler-code volume (1.0 = harness scale; tests use
    /// smaller values to stay fast).
    pub code_scale: f64,
}

impl BenchsetConfig {
    /// The paper-scale configuration used by the benchmark harness.
    pub fn full() -> Self {
        BenchsetConfig {
            count: 144,
            code_scale: 1.0,
        }
    }

    /// A reduced configuration for integration tests.
    pub fn small() -> Self {
        BenchsetConfig {
            count: 24,
            code_scale: 0.08,
        }
    }

    /// An arbitrary-size configuration — the corpus-scale knob. Every
    /// count keeps the canonical §VI-C profile proportions (see
    /// [`profiles_for`]), so CI smoke sets (`sized(8, 0.04)`) and
    /// production-corpus sweeps (`sized(1000, 1.0)`) both exercise the
    /// same population mix the paper evaluates. `code_scale` multiplies
    /// the filler-code volume exactly as in [`BenchsetConfig::small`].
    ///
    /// Degenerate inputs are **clamped** to the documented floors
    /// (`count >= 1`; a non-finite or non-positive `code_scale` becomes
    /// [`MIN_CODE_SCALE`], and any positive value is floored there too)
    /// so every app still has a body to analyze. Callers that would
    /// rather reject such inputs than run a benchset the user did not
    /// ask for — e.g. CLI flag parsing — should use
    /// [`BenchsetConfig::try_sized`].
    pub fn sized(count: usize, code_scale: f64) -> Self {
        let code_scale = if code_scale.is_finite() && code_scale > 0.0 {
            code_scale.max(MIN_CODE_SCALE)
        } else {
            MIN_CODE_SCALE
        };
        BenchsetConfig {
            count: count.max(1),
            code_scale,
        }
    }

    /// The validating form of [`BenchsetConfig::sized`]: errors on
    /// `count == 0` and on a non-finite or non-positive `code_scale`
    /// instead of silently clamping to a benchset the caller never
    /// requested. Valid-but-small `code_scale` values are still floored
    /// at [`MIN_CODE_SCALE`].
    pub fn try_sized(count: usize, code_scale: f64) -> Result<Self, BenchsetConfigError> {
        if count == 0 {
            return Err(BenchsetConfigError::ZeroCount);
        }
        if !code_scale.is_finite() || code_scale <= 0.0 {
            return Err(BenchsetConfigError::BadCodeScale(code_scale));
        }
        Ok(BenchsetConfig {
            count,
            code_scale: code_scale.max(MIN_CODE_SCALE),
        })
    }
}

/// The smallest filler-code scale a benchset will generate with: below
/// this the apps degenerate to empty shells that no longer exercise the
/// analysis.
pub const MIN_CODE_SCALE: f64 = 0.01;

/// Why a [`BenchsetConfig::try_sized`] request was rejected.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BenchsetConfigError {
    /// `count == 0`: an empty benchset measures nothing.
    ZeroCount,
    /// `code_scale` was NaN, infinite, or `<= 0`.
    BadCodeScale(f64),
}

impl std::fmt::Display for BenchsetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchsetConfigError::ZeroCount => {
                write!(f, "benchset count must be at least 1")
            }
            BenchsetConfigError::BadCodeScale(v) => {
                write!(f, "code scale must be a finite positive number, got {v}")
            }
        }
    }
}

impl std::error::Error for BenchsetConfigError {}

/// FNV-1a hash of a string — the same function the whole-app baseline
/// uses for its deterministic occasional-error injection, exposed here so
/// the generator can pick app names that do (or do not) trigger it.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The modulus the baseline's error injection uses: an app errors iff
/// `fnv1a(name) % ERROR_MODULUS == 0`.
pub const ERROR_MODULUS: u64 = 1000;

/// Finds an app name with the requested error-injection behaviour.
fn pick_name(base: &str, want_error: bool) -> String {
    for salt in 0..100_000u32 {
        let name = format!("{base}.v{salt}");
        let triggers = fnv1a(&name).is_multiple_of(ERROR_MODULUS);
        if triggers == want_error {
            return name;
        }
    }
    unreachable!("name search space exhausted");
}

/// Per-profile app counts in the canonical 144-app layout (§VI-C).
pub const LAYOUT_144: &[(Profile, usize)] = &[
    (Profile::EcbTp, 7),
    (Profile::SslTp, 15),
    (Profile::SslTpSubclassed, 2),
    (Profile::AmandroidFp, 6),
    (Profile::TimeoutVictim, 28),
    (Profile::TimeoutNoVuln, 22),
    (Profile::SkippedLib, 8),
    (Profile::AsyncCallback, 8),
    (Profile::WholeAppError, 10),
    (Profile::Normal, 38),
];

/// The per-index profile assignment for a set of `count` apps: counts are
/// scaled proportionally from the canonical 144-app layout, but every
/// profile keeps at least one app whenever `count` allows, so reduced
/// (`--small`) sets still exercise every §VI-C population.
pub fn profiles_for(count: usize) -> Vec<Profile> {
    let total: usize = LAYOUT_144.iter().map(|(_, n)| n).sum();
    let mut out = Vec::with_capacity(count);
    if count >= LAYOUT_144.len() {
        // One of each first, then fill proportionally.
        let mut counts: Vec<usize> = LAYOUT_144.iter().map(|_| 1).collect();
        let mut remaining = count - LAYOUT_144.len();
        // Largest-remainder proportional fill.
        while remaining > 0 {
            let mut best = 0usize;
            let mut best_deficit = f64::MIN;
            for (k, (_, target)) in LAYOUT_144.iter().enumerate() {
                let want = *target as f64 * count as f64 / total as f64;
                let deficit = want - counts[k] as f64;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = k;
                }
            }
            counts[best] += 1;
            remaining -= 1;
        }
        for (k, (p, _)) in LAYOUT_144.iter().enumerate() {
            out.extend(std::iter::repeat_n(*p, counts[k]));
        }
    } else {
        for (p, _) in LAYOUT_144.iter().take(count) {
            out.push(*p);
        }
    }
    out
}

/// The profile of the `i`-th app (0-based) among `count`.
pub fn profile_of(i: usize, count: usize) -> Profile {
    profiles_for(count.max(1))[i.min(count.saturating_sub(1))]
}

/// APK sizes (bytes) for the benchmark set: log-normal quantiles
/// calibrated to the paper's 144-app statistics (median 36.2 MB, average
/// 41.5 MB), with the extremes pinned to the reported min/max.
pub fn bench_sizes_bytes(count: usize) -> Vec<u64> {
    let mu = 36.2f64.ln();
    let sigma = (2.0 * (41.5f64 / 36.2).ln()).sqrt();
    let mut sizes: Vec<u64> = (0..count)
        .map(|i| {
            let q = (i as f64 + 0.5) / count as f64;
            let mb = (mu + sigma * probit(q)).exp();
            (mb * 1_048_576.0) as u64
        })
        .collect();
    if count >= 2 {
        // Pin the extremes to the reported min/max and clamp the tail so
        // no sample exceeds the corpus maximum.
        let min_b = (2.9 * 1_048_576.0) as u64;
        let max_b = (104.9 * 1_048_576.0) as u64;
        for s in sizes.iter_mut() {
            *s = (*s).clamp(min_b, max_b);
        }
        sizes[0] = min_b;
        sizes[count - 1] = max_b;
    }
    sizes
}

/// Deterministic per-app sink-scenario mix. Every app gets a spread of
/// *secure* sink calls (the corpus averages ~21 sink calls per app,
/// §VI-D) plus the profile's characteristic path.
fn background_scenarios(i: usize, sink_calls: usize) -> Vec<Scenario> {
    let mechs = [
        Mechanism::DirectEntry,
        Mechanism::PrivateChain,
        Mechanism::StaticChain,
        Mechanism::ChildClass,
        Mechanism::ClinitOffPath,
        Mechanism::LifecycleChain,
        Mechanism::SharedUtility,
        Mechanism::DeadCode,
    ];
    (0..sink_calls)
        .map(|k| {
            let mech = mechs[(i + k) % mechs.len()];
            let sink = if (i + k).is_multiple_of(3) {
                SinkKind::SslVerifier
            } else {
                SinkKind::Cipher
            };
            Scenario::new(mech, sink, false)
        })
        .collect()
}

/// Generates the modern-app benchmark set eagerly. Prefer
/// [`bench_app`] in a loop when memory matters: the full-scale set holds
/// hundreds of thousands of generated methods.
pub fn modern_apps(cfg: BenchsetConfig) -> Vec<BenchApp> {
    (0..cfg.count).map(|i| bench_app(i, cfg)).collect()
}

/// Generates the `i`-th benchmark app of the set (deterministic and
/// independent of the other apps).
pub fn bench_app(i: usize, cfg: BenchsetConfig) -> BenchApp {
    let sizes = bench_sizes_bytes(cfg.count.max(1));
    // Size rank ordering is deterministic; shuffle sizes across indices so
    // profiles are not correlated with size — except timeout profiles,
    // which must be large.
    {
        {
            let profile = profile_of(i, cfg.count);
            let wants_error = profile == Profile::WholeAppError;
            let name = pick_name(&format!("com.bench.app{i:03}"), wants_error);

            // Assign sizes: timeout apps take the largest size slots.
            let size_idx = match profile {
                Profile::TimeoutVictim | Profile::TimeoutNoVuln => {
                    cfg.count - 1 - (i % (cfg.count / 3).max(1))
                }
                _ => (i * 73 + 11) % (cfg.count * 2 / 3).max(1),
            };
            let apk_bytes = sizes[size_idx.min(cfg.count - 1)];
            let size_mb = apk_bytes as f64 / 1_048_576.0;

            // Code volume correlates with app size; timeout apps get a
            // large multiplier so the whole-app baseline exceeds budget.
            let timeout_app = matches!(profile, Profile::TimeoutVictim | Profile::TimeoutNoVuln);
            let base_classes = (size_mb * 3.0 * cfg.code_scale).ceil() as usize + 4;
            let filler_classes = if timeout_app {
                base_classes * 11
            } else {
                base_classes
            };

            // Sink-call count varies 6..40 around the corpus mean (~21),
            // with one Huawei-Health-like outlier (§VI-D: 121 sinks).
            let sink_calls = if i == cfg.count * 7 / 10 {
                (121.0 * cfg.code_scale.max(0.15)) as usize
            } else {
                6 + (i * 13) % 34
            };

            let mut scenarios = background_scenarios(i, sink_calls.saturating_sub(1).max(1));
            // The profile's characteristic scenario.
            match profile {
                Profile::Normal | Profile::TimeoutNoVuln => {}
                Profile::EcbTp => {
                    scenarios.push(Scenario::new(
                        Mechanism::PrivateChain,
                        SinkKind::Cipher,
                        true,
                    ));
                }
                Profile::SslTp => {
                    let mech = [
                        Mechanism::DirectEntry,
                        Mechanism::StaticChain,
                        Mechanism::SuperClassPoly,
                        Mechanism::ChildClass,
                    ][i % 4];
                    scenarios.push(Scenario::new(mech, SinkKind::SslVerifier, true));
                }
                Profile::SslTpSubclassed => {
                    scenarios.push(Scenario::new(
                        Mechanism::IndirectSubclassedSink,
                        SinkKind::SslVerifier,
                        true,
                    ));
                }
                Profile::AmandroidFp => {
                    scenarios.push(Scenario::new(
                        Mechanism::UnregisteredComponent,
                        SinkKind::SslVerifier,
                        true,
                    ));
                }
                Profile::TimeoutVictim => {
                    let sink = if i.is_multiple_of(2) {
                        SinkKind::Cipher
                    } else {
                        SinkKind::SslVerifier
                    };
                    scenarios.push(Scenario::new(Mechanism::StaticChain, sink, true));
                }
                Profile::SkippedLib => {
                    scenarios.push(Scenario::new(
                        Mechanism::SkippedLibrary,
                        if i.is_multiple_of(2) {
                            SinkKind::Cipher
                        } else {
                            SinkKind::SslVerifier
                        },
                        true,
                    ));
                }
                Profile::AsyncCallback => {
                    let mech = [
                        Mechanism::InterfaceRunnable,
                        Mechanism::AsyncTask,
                        Mechanism::CallbackOnClick,
                    ][i % 3];
                    scenarios.push(Scenario::new(mech, SinkKind::Cipher, true));
                }
                Profile::WholeAppError => {
                    scenarios.push(Scenario::new(
                        Mechanism::DirectEntry,
                        if i.is_multiple_of(2) {
                            SinkKind::Cipher
                        } else {
                            SinkKind::SslVerifier
                        },
                        true,
                    ));
                }
            }

            let app = AppSpec::named(&name)
                .with_seed(1000 + i as u64)
                .with_filler(filler_classes, 6, 8)
                .with_resources(apk_bytes)
                .with_scenarios(scenarios)
                .generate();
            BenchApp { app, profile }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts_match_section_vic() {
        let counts = |p: Profile| (0..144).filter(|&i| profile_of(i, 144) == p).count();
        assert_eq!(counts(Profile::EcbTp), 7);
        assert_eq!(counts(Profile::SslTp), 15);
        assert_eq!(counts(Profile::SslTpSubclassed), 2);
        assert_eq!(counts(Profile::AmandroidFp), 6);
        assert_eq!(counts(Profile::TimeoutVictim), 28);
        assert_eq!(counts(Profile::TimeoutNoVuln), 22);
        assert_eq!(counts(Profile::SkippedLib), 8);
        assert_eq!(counts(Profile::AsyncCallback), 8);
        assert_eq!(counts(Profile::WholeAppError), 10);
        // Timeout population: 50 of 144 ≈ 35% (paper: 50 of 141).
        assert_eq!(
            counts(Profile::TimeoutVictim) + counts(Profile::TimeoutNoVuln),
            50
        );
    }

    #[test]
    fn reduced_sets_cover_every_profile() {
        let profiles = profiles_for(24);
        for (p, _) in LAYOUT_144 {
            assert!(profiles.contains(p), "{p:?} missing from 24-app set");
        }
        assert_eq!(profiles.len(), 24);
    }

    #[test]
    fn bench_sizes_match_corpus_stats() {
        let sizes = bench_sizes_bytes(144);
        let (avg, median) = crate::dataset::summarize_mb(&sizes);
        assert!((avg - 41.5).abs() < 3.0, "avg {avg:.1}");
        assert!((median - 36.2).abs() < 2.0, "median {median:.1}");
        assert_eq!(sizes[0], (2.9 * 1_048_576.0) as u64);
        assert_eq!(sizes[143], (104.9 * 1_048_576.0) as u64);
    }

    #[test]
    fn sized_clamps_degenerate_inputs() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -3.0, 1e-9] {
            let cfg = BenchsetConfig::sized(0, bad);
            assert_eq!(cfg.count, 1, "count floor for code_scale {bad}");
            assert_eq!(cfg.code_scale, MIN_CODE_SCALE, "scale floor for {bad}");
        }
        let ok = BenchsetConfig::sized(12, 0.5);
        assert_eq!((ok.count, ok.code_scale), (12, 0.5));
    }

    #[test]
    fn try_sized_rejects_degenerate_inputs() {
        assert_eq!(
            BenchsetConfig::try_sized(0, 1.0),
            Err(BenchsetConfigError::ZeroCount)
        );
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let err = BenchsetConfig::try_sized(4, bad).unwrap_err();
            assert!(matches!(err, BenchsetConfigError::BadCodeScale(_)), "{bad}");
            assert!(!err.to_string().is_empty());
        }
        let ok = BenchsetConfig::try_sized(4, 0.25).unwrap();
        assert_eq!((ok.count, ok.code_scale), (4, 0.25));
        // Tiny-but-valid scales are floored, not rejected.
        assert_eq!(
            BenchsetConfig::try_sized(4, 1e-6).unwrap().code_scale,
            MIN_CODE_SCALE
        );
    }

    #[test]
    fn error_name_picking() {
        let err = pick_name("com.t.err", true);
        assert_eq!(fnv1a(&err) % ERROR_MODULUS, 0);
        let ok = pick_name("com.t.ok", false);
        assert_ne!(fnv1a(&ok) % ERROR_MODULUS, 0);
    }

    #[test]
    fn small_benchset_generates() {
        let apps = modern_apps(BenchsetConfig::small());
        assert_eq!(apps.len(), 24);
        // Every profile variant appears at least once in the scaled set.
        assert!(apps.iter().any(|a| a.profile == Profile::EcbTp));
        assert!(apps.iter().any(|a| a.profile == Profile::TimeoutVictim));
        assert!(apps.iter().any(|a| a.profile == Profile::Normal));
        // Vulnerable ground truth only where expected.
        for a in &apps {
            match a.profile {
                Profile::Normal | Profile::TimeoutNoVuln | Profile::AmandroidFp => {
                    assert_eq!(a.app.true_vulnerabilities(), 0, "{:?}", a.profile);
                }
                _ => {
                    assert!(a.app.true_vulnerabilities() >= 1, "{:?}", a.profile);
                }
            }
        }
    }
}
