//! Filler code generation: the bulk of a modern app's methods.
//!
//! Real apps carry large amounts of code unrelated to any sink — UI
//! plumbing, libraries, generated protobuf accessors. Whole-app tools pay
//! for all of it; BackDroid skips it. The filler builds a deterministic
//! call web reachable from a generated `App` bootstrap class so the
//! whole-app baseline genuinely has to traverse it.

use backdroid_ir::{
    BinOp, ClassBuilder, ClassName, Const, InvokeExpr, MethodBuilder, MethodSig, Program, Type,
    Value,
};
use backdroid_manifest::{Component, ComponentKind, Manifest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Library package prefixes used for filler classes; the first few match
/// the skipped-library lists of real tools, so a share of the filler is
/// "library code" in the baseline's sense.
const PACKAGES: &[&str] = &[
    "com.google.ads.internal",
    "com.flurry.sdk",
    "com.fb.render",
    "io.fabric.sdk.core",
    "com.squareup.okhttp.internal",
    "com.app.ui",
    "com.app.data",
    "com.app.net",
];

/// Adds `classes` filler classes, each with `methods` methods of roughly
/// `stmts` statements, woven into a call web rooted at a registered
/// bootstrap activity so the code is reachable for whole-app analysis.
pub fn add_filler(
    program: &mut Program,
    manifest: &mut Manifest,
    seed: u64,
    classes: usize,
    methods: usize,
    stmts: usize,
) {
    if classes == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let methods = methods.max(1);
    let names: Vec<ClassName> = (0..classes)
        .map(|i| {
            let pkg = PACKAGES[i % PACKAGES.len()];
            ClassName::new(format!("{pkg}.F{i}"))
        })
        .collect();

    for (i, name) in names.iter().enumerate() {
        let mut cb = ClassBuilder::new(name.as_str());
        for k in 0..methods {
            let mut mb =
                MethodBuilder::public_static(name, &format!("m{k}"), vec![Type::Int], Type::Int);
            let mut acc = mb.param(0);
            // Intra-class chain m0 -> m1 -> ... so every method of the
            // class is reachable once m0 is.
            if k + 1 < methods {
                acc = mb.invoke_assign(InvokeExpr::call_static(
                    MethodSig::new(
                        name.as_str(),
                        format!("m{}", k + 1),
                        vec![Type::Int],
                        Type::Int,
                    ),
                    vec![Value::Local(acc)],
                ));
            }
            for _ in 0..stmts {
                match rng.gen_range(0..4u8) {
                    0 => {
                        let c = rng.gen_range(1..100i64);
                        acc = mb.binop(BinOp::Add, Value::Local(acc), Value::int(c), Type::Int);
                    }
                    1 => {
                        let c = rng.gen_range(1..16i64);
                        acc = mb.binop(BinOp::Xor, Value::Local(acc), Value::int(c), Type::Int);
                    }
                    2 => {
                        let s = mb.assign_const(Const::str(format!("cfg-{i}-{k}")));
                        let _ = s;
                    }
                    _ => {
                        // Call a previously generated filler method so the
                        // call web is connected (whole-app tools must
                        // traverse these edges).
                        if i > 0 {
                            let target = rng.gen_range(0..i);
                            let tm = rng.gen_range(0..methods);
                            acc = mb.invoke_assign(InvokeExpr::call_static(
                                MethodSig::new(
                                    names[target].as_str(),
                                    format!("m{tm}"),
                                    vec![Type::Int],
                                    Type::Int,
                                ),
                                vec![Value::Local(acc)],
                            ));
                        }
                    }
                }
            }
            mb.ret(Value::Local(acc));
            cb = cb.method(mb.build());
        }
        program.add_class(cb.build());
    }

    // Bootstrap activity that fans out into the filler web, making it
    // reachable from an entry point.
    let boot = ClassName::new("com.app.FillerBootActivity");
    let mut on_create = MethodBuilder::public(&boot, "onCreate", vec![], Type::Void);
    // Fan out to every class's m0: the whole web is reachable, so a
    // whole-app tool genuinely pays for all of it.
    for (t, name) in names.iter().enumerate() {
        let _ = on_create.invoke_assign(InvokeExpr::call_static(
            MethodSig::new(name.as_str(), "m0", vec![Type::Int], Type::Int),
            vec![Value::int(t as i64)],
        ));
    }
    program.add_class(
        ClassBuilder::new(boot.as_str())
            .extends("android.app.Activity")
            .method(on_create.build())
            .build(),
    );
    manifest.register(Component::new(ComponentKind::Activity, boot.as_str()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filler_is_deterministic_and_sized() {
        let mut p1 = Program::new();
        let mut m1 = Manifest::new("com.a");
        add_filler(&mut p1, &mut m1, 9, 20, 4, 6);
        let mut p2 = Program::new();
        let mut m2 = Manifest::new("com.a");
        add_filler(&mut p2, &mut m2, 9, 20, 4, 6);
        assert_eq!(p1.class_count(), p2.class_count());
        assert_eq!(p1.stmt_count(), p2.stmt_count());
        assert_eq!(p1.class_count(), 21); // 20 filler + bootstrap
        assert!(p1.method_count() >= 80);
    }

    #[test]
    fn filler_web_is_rooted_at_a_registered_activity() {
        let mut p = Program::new();
        let mut m = Manifest::new("com.a");
        add_filler(&mut p, &mut m, 3, 5, 3, 4);
        assert!(m.is_entry_component(&ClassName::new("com.app.FillerBootActivity")));
    }

    #[test]
    fn zero_classes_is_a_noop() {
        let mut p = Program::new();
        let mut m = Manifest::new("com.a");
        add_filler(&mut p, &mut m, 1, 0, 5, 5);
        assert_eq!(p.class_count(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p1 = Program::new();
        let mut m1 = Manifest::new("com.a");
        add_filler(&mut p1, &mut m1, 1, 10, 4, 8);
        let mut p2 = Program::new();
        let mut m2 = Manifest::new("com.a");
        add_filler(&mut p2, &mut m2, 2, 10, 4, 8);
        // Same structure counts, but bodies differ.
        assert_eq!(p1.class_count(), p2.class_count());
        let d1 = backdroid_dex::dump_image(&backdroid_dex::DexImage::encode(&p1));
        let d2 = backdroid_dex::dump_image(&backdroid_dex::DexImage::encode(&p2));
        assert_ne!(d1, d2);
    }
}
