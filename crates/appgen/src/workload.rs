//! Deterministic service workload generation: request traces over the
//! `modern_apps` benchmark set with **Zipf-skewed app popularity** — a
//! few hot apps absorb most traffic while a long tail stays cold, the
//! shape a production vetting service actually sees — and a seeded mix
//! of full analyses, per-sink-class queries, and batched multi-app
//! requests.
//!
//! Everything is a pure function of [`WorkloadConfig`]: the same config
//! always yields the same trace, so `backdroid-serve` replays and the CI
//! service-smoke diff are reproducible.

use crate::benchset::BenchsetConfig;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Workload shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of apps in the backing benchset (requests index `0..apps`).
    pub apps: usize,
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed; the trace is fully determined by the config.
    pub seed: u64,
    /// Zipf skew exponent in thousandths (`1000` ≙ s = 1.0; larger is
    /// hotter). `0` degenerates to uniform popularity.
    pub zipf_permille: u32,
    /// Share of requests (in thousandths) that are sink-class queries.
    pub query_permille: u32,
    /// Share of requests (in thousandths) that are multi-app batches.
    pub batch_permille: u32,
    /// Share of analyze requests (in thousandths) that open a **burst**:
    /// 2–5 immediate repeats of the same hot app, the arrival pattern a
    /// trending upload produces. `0` (the default) draws nothing extra
    /// from the RNG, so existing traces are unchanged byte-for-byte.
    pub burst_permille: u32,
    /// Share of requests (in thousandths) that carry a `deadline_ms`
    /// field. `0` (the default) draws nothing extra from the RNG.
    pub deadline_permille: u32,
    /// The deadline attached to deadline-carrying requests, in
    /// milliseconds from submission.
    pub deadline_ms: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            apps: 24,
            requests: 200,
            seed: 7,
            zipf_permille: 1100,
            query_permille: 300,
            batch_permille: 100,
            burst_permille: 0,
            deadline_permille: 0,
            deadline_ms: 50,
        }
    }
}

impl WorkloadConfig {
    /// A config sized to a benchset: requests default to ~8× the app
    /// count so hot apps get plenty of warm hits.
    pub fn for_benchset(bench: BenchsetConfig, seed: u64) -> Self {
        WorkloadConfig {
            apps: bench.count,
            requests: bench.count * 8,
            seed,
            ..WorkloadConfig::default()
        }
    }
}

/// One request of a generated trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadRequest {
    /// The primary app index (`0..apps`).
    pub app: usize,
    /// The operation.
    pub op: WorkloadOp,
    /// Optional per-request deadline (milliseconds from submission),
    /// drawn per [`WorkloadConfig::deadline_permille`].
    pub deadline_ms: Option<u64>,
}

/// The operation mix a trace exercises.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkloadOp {
    /// Full-registry analysis of the app.
    Analyze,
    /// Query restricted to the named sink classes (`"crypto"`, `"ssl"`).
    Query(Vec<String>),
    /// Batched analysis: the primary app plus these extra app indices.
    Batch(Vec<usize>),
}

/// A uniform draw in `[0, 1)` from the raw 64-bit stream (the same
/// construction `Rng::gen_bool` uses).
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The cumulative Zipf distribution over `n` popularity ranks with skew
/// `s`: entry `r` is `P(rank <= r)`. Rank 0 is the most popular.
pub fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(s);
        cum.push(total);
    }
    for c in cum.iter_mut() {
        *c /= total;
    }
    cum
}

/// Generates the trace for `cfg`. App popularity is Zipf over ranks,
/// with ranks assigned to app indices by a seeded shuffle so popularity
/// does not correlate with app size or §VI-C profile.
pub fn generate(cfg: WorkloadConfig) -> Vec<WorkloadRequest> {
    let apps = cfg.apps.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Rank → app-index assignment: Fisher–Yates with the trace's RNG.
    let mut rank_to_app: Vec<usize> = (0..apps).collect();
    for i in (1..apps).rev() {
        let j = rng.gen_range(0..i + 1);
        rank_to_app.swap(i, j);
    }

    let s = cfg.zipf_permille as f64 / 1000.0;
    let cum = zipf_cumulative(apps, s);
    let sample_app = |rng: &mut StdRng| -> usize {
        let u = unit(rng);
        let rank = cum.partition_point(|&c| c < u).min(apps - 1);
        rank_to_app[rank]
    };

    // The burst/deadline knobs draw from the RNG **only when enabled**,
    // so a config with both at 0 reproduces the exact pre-knob stream —
    // committed traces and seeded goldens stay byte-identical.
    let mut out = Vec::with_capacity(cfg.requests);
    while out.len() < cfg.requests {
        let app = sample_app(&mut rng);
        let roll = rng.gen_range(0..1000u32);
        let op = if roll < cfg.batch_permille && apps > 1 {
            let extra = rng.gen_range(1..4usize);
            WorkloadOp::Batch((0..extra).map(|_| sample_app(&mut rng)).collect())
        } else if roll < cfg.batch_permille + cfg.query_permille {
            let classes = match rng.gen_range(0..3u32) {
                0 => vec!["crypto".to_string()],
                1 => vec!["ssl".to_string()],
                _ => vec!["crypto".to_string(), "ssl".to_string()],
            };
            WorkloadOp::Query(classes)
        } else {
            WorkloadOp::Analyze
        };
        let deadline = |rng: &mut StdRng| {
            (cfg.deadline_permille > 0 && rng.gen_range(0..1000u32) < cfg.deadline_permille)
                .then_some(cfg.deadline_ms)
        };
        let is_analyze = matches!(op, WorkloadOp::Analyze);
        let deadline_ms = deadline(&mut rng);
        out.push(WorkloadRequest {
            app,
            op,
            deadline_ms,
        });
        // A burst re-hits the same app immediately: the hot-upload
        // arrival pattern that exercises shard-local warmth.
        if is_analyze && cfg.burst_permille > 0 && rng.gen_range(0..1000u32) < cfg.burst_permille {
            let repeats = rng.gen_range(2..6usize);
            for _ in 0..repeats {
                if out.len() >= cfg.requests {
                    break;
                }
                let deadline_ms = deadline(&mut rng);
                out.push(WorkloadRequest {
                    app,
                    op: WorkloadOp::Analyze,
                    deadline_ms,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        assert_eq!(generate(cfg), generate(cfg));
        let other = WorkloadConfig { seed: 8, ..cfg };
        assert_ne!(generate(cfg), generate(other), "seed must matter");
    }

    #[test]
    fn apps_stay_in_range_and_mix_matches_permilles() {
        let cfg = WorkloadConfig {
            apps: 10,
            requests: 2000,
            ..WorkloadConfig::default()
        };
        let trace = generate(cfg);
        assert_eq!(trace.len(), 2000);
        let mut queries = 0usize;
        let mut batches = 0usize;
        for r in &trace {
            assert!(r.app < 10);
            match &r.op {
                WorkloadOp::Analyze => {}
                WorkloadOp::Query(classes) => {
                    queries += 1;
                    assert!(!classes.is_empty());
                    assert!(classes.iter().all(|c| c == "crypto" || c == "ssl"));
                }
                WorkloadOp::Batch(extra) => {
                    batches += 1;
                    assert!(!extra.is_empty() && extra.len() <= 3);
                    assert!(extra.iter().all(|&a| a < 10));
                }
            }
        }
        // 30% queries, 10% batches, generous tolerance.
        assert!((400..=800).contains(&queries), "queries = {queries}");
        assert!((100..=300).contains(&batches), "batches = {batches}");
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = WorkloadConfig {
            apps: 20,
            requests: 4000,
            ..WorkloadConfig::default()
        };
        let trace = generate(cfg);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for r in &trace {
            *counts.entry(r.app).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf s≈1.1 over 20 apps: the hottest app draws ~30% of traffic,
        // far more than a uniform 5% share.
        assert!(
            sorted[0] > trace.len() / 8,
            "hottest app saw only {} of {} requests",
            sorted[0],
            trace.len()
        );
        assert!(sorted[0] > 4 * sorted[sorted.len() - 1].max(1));
    }

    #[test]
    fn disabled_knobs_draw_nothing_and_attach_nothing() {
        let trace = generate(WorkloadConfig::default());
        assert!(
            trace.iter().all(|r| r.deadline_ms.is_none()),
            "deadline_permille 0 must never attach deadlines"
        );
    }

    #[test]
    fn bursts_repeat_hot_apps_and_deadlines_are_attached() {
        let cfg = WorkloadConfig {
            apps: 8,
            requests: 400,
            burst_permille: 300,
            deadline_permille: 250,
            ..WorkloadConfig::default()
        };
        let trace = generate(cfg);
        assert_eq!(trace.len(), 400, "bursts must respect the request count");
        let with_deadline = trace.iter().filter(|r| r.deadline_ms.is_some()).count();
        assert!(
            (40..=200).contains(&with_deadline),
            "~25% of 400 requests should carry deadlines, got {with_deadline}"
        );
        assert!(trace
            .iter()
            .all(|r| r.deadline_ms.is_none_or(|d| d == cfg.deadline_ms)));
        let bursts = trace
            .windows(3)
            .filter(|w| {
                w.iter()
                    .all(|r| r.op == WorkloadOp::Analyze && r.app == w[0].app)
            })
            .count();
        assert!(bursts > 0, "burst_permille 300 must produce repeat runs");
        assert_eq!(generate(cfg), generate(cfg), "knobs stay deterministic");
    }

    #[test]
    fn zipf_cumulative_is_monotone_and_normalized() {
        let cum = zipf_cumulative(16, 1.1);
        assert_eq!(cum.len(), 16);
        assert!(cum.windows(2).all(|w| w[0] < w[1]));
        assert!((cum[15] - 1.0).abs() < 1e-12);
        // Uniform degenerate case.
        let flat = zipf_cumulative(4, 0.0);
        assert!((flat[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn for_benchset_scales_requests_with_apps() {
        let cfg = WorkloadConfig::for_benchset(BenchsetConfig::sized(8, 0.05), 3);
        assert_eq!(cfg.apps, 8);
        assert_eq!(cfg.requests, 64);
    }
}
