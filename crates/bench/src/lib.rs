//! # backdroid-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! BackDroid paper's evaluation (§II-B, §II-C, §VI). One binary per
//! artifact:
//!
//! | Binary                  | Paper artifact |
//! |-------------------------|----------------|
//! | `table1_app_sizes`      | Table I — app-size growth 2014–2018 |
//! | `fig1_flowdroid_cg`     | Fig 1 — FlowDroid call-graph generation time |
//! | `fig7_fig8_compare`     | Fig 7 + Fig 8 + the 37× median headline |
//! | `fig9_sinks_vs_time`    | Fig 9 — #sink calls vs BackDroid time |
//! | `detection_comparison`  | §VI-C — detection accuracy both ways |
//! | `cache_stats`           | §IV-F — cache rates and loop statistics |
//! | `search_backend_bench`  | linear-vs-indexed search backend cost + equivalence |
//! | `service_throughput`    | serving-layer throughput: req/s, cold-parse vs disk-warm vs memory-warm latency tiers, store evictions |
//! | `snapshot_bench`        | snapshot layer: parse vs serialize vs restore cost, round-trip exactness |
//! | `update_latency`        | incremental update path: delta-warm vs cold per-version cost, verdict/chunk/token reuse, delta ≡ from-scratch |
//!
//! Run with `cargo run --release -p backdroid-bench --bin <name>`. Common
//! flags (parsed by [`harness`]):
//!
//! * `--small` / `--count N [--code-permille M]` — corpus size (default:
//!   the paper-scale 144-app set);
//! * `--backend linear|indexed` — search backend (default indexed; both
//!   are hit-for-hit identical, so detection output never changes);
//! * `--threads N` — parallel corpus driver width (default: all cores;
//!   deterministic report output is byte-identical for any value);
//! * `--intra-threads N` — intra-app sink-task scheduler width (default
//!   1; reports are byte-identical for any value, only wall-clock
//!   changes — supported by `fig9_sinks_vs_time`, `detection_comparison`
//!   and `search_backend_bench`);
//! * `--json PATH` — also write the run's JSON artifact (every report
//!   bin supports it; all are deterministic and CI-diffable except
//!   `service_throughput`, whose `wall_*` fields measure a live
//!   serving system);
//! * `--baseline PATH` — check the run against a committed
//!   machine-independent `BENCH_*.json` envelope (see [`baseline`];
//!   supported by `service_throughput`, `snapshot_bench`,
//!   `search_backend_bench`, `fig7_fig8_compare`, and `update_latency`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod harness;
pub mod json;

pub use baseline::{baseline_path_from_args, percentile, Band, Baseline};

pub use harness::{
    arg_value, backdroid_minutes, backdroid_minutes_indexed, backend_from_args, bucket_label,
    intra_threads_from_args, json_path_from_args, median, par_map, run_amandroid_on,
    run_backdroid_on, run_backdroid_with, run_backdroid_with_backend, run_benchset,
    run_benchset_with, scale_from_args, threads_from_args, AmandroidRun, BackdroidRun, BenchRun,
    Scale, BACKDROID_LINES_PER_MINUTE,
};
