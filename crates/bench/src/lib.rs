//! # backdroid-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! BackDroid paper's evaluation (§II-B, §II-C, §VI). One binary per
//! artifact:
//!
//! | Binary                  | Paper artifact |
//! |-------------------------|----------------|
//! | `table1_app_sizes`      | Table I — app-size growth 2014–2018 |
//! | `fig1_flowdroid_cg`     | Fig 1 — FlowDroid call-graph generation time |
//! | `fig7_fig8_compare`     | Fig 7 + Fig 8 + the 37× median headline |
//! | `fig9_sinks_vs_time`    | Fig 9 — #sink calls vs BackDroid time |
//! | `detection_comparison`  | §VI-C — detection accuracy both ways |
//! | `cache_stats`           | §IV-F — cache rates and loop statistics |
//!
//! Run with `cargo run --release -p backdroid-bench --bin <name>`; pass
//! `--small` for a reduced, fast configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    backdroid_minutes, bucket_label, median, run_amandroid_on, run_backdroid_on, run_benchset,
    scale_from_args, AmandroidRun, BackdroidRun, BenchRun, Scale, BACKDROID_LINES_PER_MINUTE,
};
