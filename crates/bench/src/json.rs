//! Minimal JSON rendering for the bench bins' `--json` artifacts.
//!
//! The vendored `serde` stand-in has no serializer (see
//! `vendor/serde/src/lib.rs`), so the harness renders its reports with
//! this tiny hand-rolled writer instead. Only deterministic fields belong
//! in these artifacts: the CI `bench-smoke` job diffs sequential against
//! parallel output, so wall-clock values must stay out.

/// Escapes a string for a JSON string literal. One escaper serves the
/// whole workspace — the serving layer's protocol renderer owns it, and
/// the CI jobs diff bench artifacts against serve responses
/// byte-for-byte, so the two must never drift apart.
pub use backdroid_service::proto::escape;

/// Renders a finite `f64` stably (6 decimal places, enough for scaled
/// minutes and rates); non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// An object under construction: `field` calls append, `build` closes.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", key, escape(value)));
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Appends a float field (stable 6-decimal rendering).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.fields.push(format!("\"{}\":{}", key, num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Appends a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Closes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::NAN), "null");
        let obj = JsonObject::new()
            .str("app", "a\"pp")
            .int("n", 3)
            .float("m", 0.25)
            .bool("ok", true)
            .raw("xs", array(["1".into(), "2".into()]))
            .build();
        assert_eq!(
            obj,
            "{\"app\":\"a\\\"pp\",\"n\":3,\"m\":0.250000,\"ok\":true,\"xs\":[1,2]}"
        );
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
