//! Shared harness utilities: running both tools over the benchmark set
//! (sequentially or with the parallel corpus driver), deterministic
//! scaled-time conversion, and distribution bucketing.
//!
//! ## Time scaling
//!
//! Absolute wall-clock numbers cannot be compared to the paper's i7-4790
//! testbed, so each tool also reports a *deterministic, machine-independent*
//! work measure that the harness converts to "scaled minutes":
//!
//! * **BackDroid (linear model)** — dump lines a full grep scans for the
//!   uncached search commands (the paper tool's cost driver), divided by
//!   [`BACKDROID_LINES_PER_MINUTE`]. Charged identically under either
//!   search backend, so every figure calibrated against the paper is
//!   backend-invariant.
//! * **BackDroid (indexed model)** — posting-list candidate lines the
//!   `Indexed` backend actually touched (`CacheStats::postings_touched`),
//!   through the same divisor, so both cost models land on one scale.
//! * **Amandroid baseline** — statement-visit work units, divided by
//!   `backdroid_wholeapp::WORK_UNITS_PER_MINUTE` (whose 300-minute budget
//!   is the paper's timeout).
//!
//! Real wall-clock milliseconds are reported alongside, unscaled. Keep
//! them out of report stdout and `--json` artifacts: the corpus driver
//! guarantees byte-identical deterministic output between sequential and
//! parallel runs, and wall-clock values are the one nondeterministic
//! field.
//!
//! ## The parallel corpus driver
//!
//! [`par_map`] fans one closure out over `0..count` with scoped worker
//! threads and reassembles results **in index order**, so
//! [`run_benchset_with`] and the report bins produce byte-identical
//! deterministic output no matter the thread count (`--threads 1` *is*
//! the sequential path).

use backdroid_appgen::benchset::{bench_app, BenchApp, BenchsetConfig, Profile};
use backdroid_core::{AppArtifacts, Backdroid, BackdroidOptions, BackendChoice};
use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig, Outcome};
use backdroid_wholeapp::paper_minutes;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::json::{array, JsonObject};

/// Calibration: dump lines BackDroid scans per scaled minute. Chosen so
/// the benchmark set's median lands near the paper's 2.13 min.
pub const BACKDROID_LINES_PER_MINUTE: f64 = 750_000.0;

/// Harness scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper-scale 144-app set.
    Full,
    /// A reduced set for quick runs and CI.
    Small,
    /// An arbitrary corpus size (the `--count` knob): `code_permille`
    /// scales the filler-code volume in thousandths (80 ≙ the `Small`
    /// volume, 1000 ≙ paper scale).
    Sized {
        /// Number of generated apps.
        count: usize,
        /// Filler-code volume in thousandths of paper scale.
        code_permille: u32,
    },
}

impl Scale {
    /// The corresponding benchmark-set configuration.
    pub fn config(self) -> BenchsetConfig {
        match self {
            Scale::Full => BenchsetConfig::full(),
            Scale::Small => BenchsetConfig::small(),
            Scale::Sized {
                count,
                code_permille,
            } => BenchsetConfig::sized(count, code_permille as f64 / 1000.0),
        }
    }
}

/// The value following `--flag` (or embedded as `--flag=value`) in
/// argv. Public so bench bins with bin-specific flags share one parser
/// instead of copying it.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// A present flag with an unparseable value is a hard usage error —
/// silently falling back to a default would turn a typoed `--count`
/// smoke run into a full paper-scale sweep.
fn usage_error(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: {flag} {value:?} is invalid — expected {expected}");
    std::process::exit(2)
}

/// Parses the harness scale from argv: `--small` / `--full` (default
/// full), or `--count N` (+ optional `--code-permille M`, default 80)
/// for an arbitrary corpus size. Degenerate sizes (`--count 0`,
/// `--code-permille 0`) are hard usage errors, checked through
/// [`BenchsetConfig::try_sized`] — a benchset the user did not ask for
/// must never run silently.
pub fn scale_from_args() -> Scale {
    if let Some(v) = arg_value("--count") {
        let count = v
            .parse()
            .unwrap_or_else(|_| usage_error("--count", &v, "a positive integer"));
        let code_permille: u32 = match arg_value("--code-permille") {
            Some(m) => m.parse().unwrap_or_else(|_| {
                usage_error("--code-permille", &m, "an integer (1000 ≙ paper scale)")
            }),
            None => 80,
        };
        if let Err(e) = BenchsetConfig::try_sized(count, code_permille as f64 / 1000.0) {
            eprintln!("error: invalid corpus size: {e}");
            std::process::exit(2)
        }
        return Scale::Sized {
            count,
            code_permille,
        };
    }
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    }
}

/// Parses `--backend linear|indexed` from argv (default indexed).
pub fn backend_from_args() -> BackendChoice {
    match arg_value("--backend") {
        Some(v) => BackendChoice::parse(&v)
            .unwrap_or_else(|| usage_error("--backend", &v, "\"linear\" or \"indexed\"")),
        None => BackendChoice::default(),
    }
}

/// Parses `--intra-threads N` from argv: worker threads for the
/// intra-app sink-task scheduler (default 1, the sequential path; any
/// value yields byte-identical deterministic output).
pub fn intra_threads_from_args() -> usize {
    match arg_value("--intra-threads") {
        Some(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| usage_error("--intra-threads", &v, "a positive integer"))
            .max(1),
        None => 1,
    }
}

/// Parses `--threads N` from argv; defaults to the machine's available
/// parallelism.
pub fn threads_from_args() -> usize {
    match arg_value("--threads") {
        Some(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| usage_error("--threads", &v, "a positive integer"))
            .max(1),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Parses `--json PATH` from argv: where to write the run's JSON
/// artifact.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    arg_value("--json").map(std::path::PathBuf::from)
}

/// The parallel corpus driver: applies `f` to every index in `0..count`
/// on `threads` scoped workers and returns the results **in index
/// order**. With `threads <= 1` this is a plain sequential map — the
/// parallel path is guaranteed to produce the identical `Vec`, so
/// deterministic report output is byte-identical either way. A worker
/// panic propagates.
pub fn par_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("corpus worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// One BackDroid run result.
#[derive(Clone, Debug, Serialize)]
pub struct BackdroidRun {
    /// App name.
    pub app: String,
    /// Search backend the run used (`"linear"` / `"indexed"`).
    pub backend: String,
    /// Scaled analysis time in paper minutes (linear cost model —
    /// backend-invariant, calibrated against the paper).
    pub minutes: f64,
    /// Scaled analysis time under the indexed cost model
    /// (`postings_touched`-based; equals the preprocessing floor for
    /// linear-backend runs, whose indexed work is zero).
    pub minutes_indexed: f64,
    /// Real wall-clock milliseconds (nondeterministic — keep out of
    /// report stdout and JSON artifacts).
    pub wall_ms: f64,
    /// Linear-model grep lines for the uncached search commands.
    pub lines_scanned: u64,
    /// Posting-list candidate lines the indexed backend examined.
    pub postings_touched: u64,
    /// Number of sink call sites analyzed.
    pub sinks_analyzed: usize,
    /// Vulnerable sinks found.
    pub vulnerable: usize,
    /// Search-cache hit rate.
    pub cache_rate: f64,
    /// Sink-cache (skip) rate.
    pub sink_cache_rate: f64,
    /// Whether any dead method loop was detected.
    pub loops_detected: bool,
    /// Most common loop kind, if any.
    pub top_loop: Option<String>,
}

impl BackdroidRun {
    /// Deterministic JSON rendering (no wall-clock field).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("app", &self.app)
            .str("backend", &self.backend)
            .float("minutes", self.minutes)
            .float("minutes_indexed", self.minutes_indexed)
            .int("lines_scanned", self.lines_scanned)
            .int("postings_touched", self.postings_touched)
            .int("sinks_analyzed", self.sinks_analyzed as u64)
            .int("vulnerable", self.vulnerable as u64)
            .float("cache_rate", self.cache_rate)
            .float("sink_cache_rate", self.sink_cache_rate)
            .bool("loops_detected", self.loops_detected)
            .str("top_loop", self.top_loop.as_deref().unwrap_or(""))
            .build()
    }
}

/// One baseline run result.
#[derive(Clone, Debug, Serialize)]
pub struct AmandroidRun {
    /// App name.
    pub app: String,
    /// Scaled analysis time in paper minutes (capped at the timeout).
    pub minutes: f64,
    /// Real wall-clock milliseconds.
    pub wall_ms: f64,
    /// Whether the run timed out.
    pub timed_out: bool,
    /// Whether the run hit an injected whole-app error.
    pub errored: bool,
    /// Vulnerable findings (empty on timeout/error).
    pub vulnerable: usize,
}

impl AmandroidRun {
    /// Deterministic JSON rendering (no wall-clock field).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("app", &self.app)
            .float("minutes", self.minutes)
            .bool("timed_out", self.timed_out)
            .bool("errored", self.errored)
            .int("vulnerable", self.vulnerable as u64)
            .build()
    }
}

/// Both tools' results for one benchmark app.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRun {
    /// Population label (Debug-rendered [`Profile`]).
    pub profile: String,
    /// BackDroid result.
    pub backdroid: BackdroidRun,
    /// Baseline result.
    pub amandroid: AmandroidRun,
    /// Ground-truth vulnerable sink paths.
    pub true_vulns: usize,
}

impl BenchRun {
    /// Deterministic JSON rendering (no wall-clock fields).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("profile", &self.profile)
            .raw("backdroid", self.backdroid.to_json())
            .raw("amandroid", self.amandroid.to_json())
            .int("true_vulns", self.true_vulns as u64)
            .build()
    }
}

/// Renders a slice of [`BenchRun`]s as a deterministic JSON array.
pub fn bench_runs_json(runs: &[BenchRun]) -> String {
    array(runs.iter().map(BenchRun::to_json))
}

/// Converts a BackDroid report to scaled paper minutes under the linear
/// cost model: lines a full grep scans for the uncached commands plus
/// one preprocessing pass over the dump.
pub fn backdroid_minutes(lines_scanned: u64, dump_lines: u64) -> f64 {
    (lines_scanned as f64 + 3.0 * dump_lines as f64) / BACKDROID_LINES_PER_MINUTE
}

/// Scaled minutes under the indexed cost model: posting-list candidates
/// touched plus the same preprocessing pass (index construction rides
/// along with the dump indexing).
pub fn backdroid_minutes_indexed(postings_touched: u64, dump_lines: u64) -> f64 {
    (postings_touched as f64 + 3.0 * dump_lines as f64) / BACKDROID_LINES_PER_MINUTE
}

/// Runs BackDroid on one generated app with the default (indexed)
/// backend, sequentially.
pub fn run_backdroid_on(app: &backdroid_appgen::AndroidApp) -> BackdroidRun {
    run_backdroid_with(app, BackendChoice::default(), 1)
}

/// Runs BackDroid on one generated app with an explicit search backend,
/// sequentially.
pub fn run_backdroid_with_backend(
    app: &backdroid_appgen::AndroidApp,
    backend: BackendChoice,
) -> BackdroidRun {
    run_backdroid_with(app, backend, 1)
}

/// Runs BackDroid on one generated app with an explicit search backend
/// and intra-app scheduler width. Every deterministic field of the
/// result is identical for any `intra_threads` value — only `wall_ms`
/// may differ.
pub fn run_backdroid_with(
    app: &backdroid_appgen::AndroidApp,
    backend: BackendChoice,
    intra_threads: usize,
) -> BackdroidRun {
    let start = Instant::now();
    let dump = app.dump();
    let dump_lines = dump.lines().count() as u64;
    let artifacts =
        AppArtifacts::from_dump_backend(app.program.clone(), app.manifest.clone(), &dump, backend);
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        intra_threads,
        ..BackdroidOptions::default()
    });
    let report = tool.analyze_artifacts(&artifacts);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let cache = report.cache_stats;
    BackdroidRun {
        app: app.name.clone(),
        backend: backend.name().to_string(),
        minutes: backdroid_minutes(cache.lines_scanned, dump_lines),
        minutes_indexed: backdroid_minutes_indexed(cache.postings_touched, dump_lines),
        wall_ms,
        lines_scanned: cache.lines_scanned,
        postings_touched: cache.postings_touched,
        sinks_analyzed: report.sinks_analyzed(),
        vulnerable: report.vulnerable_sinks().len(),
        cache_rate: cache.rate(),
        sink_cache_rate: report.sink_cache.rate(),
        loops_detected: report.loop_stats.any(),
        top_loop: report.loop_stats.most_common().map(|k| format!("{k:?}")),
    }
}

/// Runs the Amandroid-style baseline on one generated app with the
/// default (full-scale) budget.
pub fn run_amandroid_on(app: &backdroid_appgen::AndroidApp) -> AmandroidRun {
    run_amandroid_with_budget(app, backdroid_wholeapp::DEFAULT_BUDGET_UNITS)
}

/// Runs the baseline with an explicit work-unit budget (reduced runs scale
/// the budget together with the code volume so timeout shapes persist).
pub fn run_amandroid_with_budget(
    app: &backdroid_appgen::AndroidApp,
    budget_units: u64,
) -> AmandroidRun {
    let start = Instant::now();
    let cfg = AmandroidConfig {
        budget_units,
        ..AmandroidConfig::default()
    };
    let registry = backdroid_core::DetectorRegistry::paper();
    let out = analyze(&app.name, &app.program, &app.manifest, &registry, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    match out {
        Outcome::Done(r) => AmandroidRun {
            app: app.name.clone(),
            minutes: paper_minutes(r.work_units),
            wall_ms,
            timed_out: false,
            errored: false,
            vulnerable: r.vulnerable().len(),
        },
        Outcome::TimedOut { work_units, .. } => AmandroidRun {
            app: app.name.clone(),
            minutes: paper_minutes(work_units),
            wall_ms,
            timed_out: true,
            errored: false,
            vulnerable: 0,
        },
        Outcome::Error { .. } => AmandroidRun {
            app: app.name.clone(),
            minutes: 0.0,
            wall_ms,
            timed_out: false,
            errored: true,
            vulnerable: 0,
        },
    }
}

/// The scaled baseline budget for a harness scale: the 300-minute budget
/// shrinks with the code volume so reduced runs keep the timeout shape.
pub fn budget_for(scale: Scale) -> u64 {
    let cfg = scale.config();
    ((backdroid_wholeapp::DEFAULT_BUDGET_UNITS as f64) * cfg.code_scale).max(1_000.0) as u64
}

/// Runs both tools over the benchmark set sequentially with the default
/// backend. Equivalent to `run_benchset_with(scale, default, 1)`.
pub fn run_benchset(scale: Scale) -> Vec<BenchRun> {
    run_benchset_with(scale, BackendChoice::default(), 1)
}

/// Runs both tools over the benchmark set on the parallel corpus driver:
/// apps are generated and analyzed on `threads` workers (each worker
/// generates its own apps, so memory stays bounded at `threads` × the
/// largest single app) and results return in app-index order —
/// deterministic output regardless of thread count.
pub fn run_benchset_with(scale: Scale, backend: BackendChoice, threads: usize) -> Vec<BenchRun> {
    let cfg = scale.config();
    let budget = budget_for(scale);
    par_map(cfg.count, threads, |i| {
        let ba = bench_app(i, cfg);
        BenchRun {
            profile: format!("{:?}", ba.profile),
            backdroid: run_backdroid_with_backend(&ba.app, backend),
            amandroid: run_amandroid_with_budget(&ba.app, budget),
            true_vulns: ba.app.true_vulnerabilities(),
        }
    })
}

/// Streams the generated benchmark apps with profiles (for harnesses that
/// need ground truth). Each item is generated on demand and can be
/// dropped after use.
pub fn benchset_apps(scale: Scale) -> impl Iterator<Item = BenchApp> {
    let cfg = scale.config();
    (0..cfg.count).map(move |i| bench_app(i, cfg))
}

/// Re-export for harness binaries.
pub use backdroid_appgen::benchset::Profile as BenchProfile;

/// Median of a sample (0.0 when empty).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

/// Buckets a scaled-minutes value into labeled ranges, e.g.
/// `bucket_label(&[1.0, 5.0, 10.0], 7.2)` → `"5m-10m"`.
pub fn bucket_label(edges: &[f64], minutes: f64) -> String {
    let mut lo = 0.0;
    for &e in edges {
        if minutes < e {
            return format!("{}m-{}m", fmt_edge(lo), fmt_edge(e));
        }
        lo = e;
    }
    format!(">{}m", fmt_edge(lo))
}

fn fmt_edge(e: f64) -> String {
    if e.fract() == 0.0 {
        format!("{}", e as u64)
    } else {
        format!("{e}")
    }
}

/// Prints a histogram line for a bucketed distribution.
pub fn print_histogram(title: &str, labeled: &[(String, usize)]) {
    println!("{title}");
    let max = labeled.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in labeled {
        let bar = "#".repeat(count * 40 / max);
        println!("  {label:<12} {count:>4} {bar}");
    }
}

/// Is this profile part of the timeout population?
pub fn is_timeout_profile(p: Profile) -> bool {
    matches!(p, Profile::TimeoutVictim | Profile::TimeoutNoVuln)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_buckets() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 0.4), "0m-1m");
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 7.2), "5m-10m");
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 12.0), ">10m");
    }

    #[test]
    fn backdroid_minutes_scaling() {
        let m = backdroid_minutes(750_000, 0);
        assert!((m - 1.0).abs() < 1e-9);
        assert!(backdroid_minutes(0, 1000) > 0.0, "preprocessing counted");
        assert!(backdroid_minutes_indexed(0, 1000) > 0.0);
    }

    #[test]
    fn runs_one_small_app_both_tools() {
        use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
        let app = AppSpec::named("com.bench.unit")
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(6, 3, 4)
            .generate();
        let b = run_backdroid_on(&app);
        assert_eq!(b.vulnerable, 1);
        assert!(b.minutes > 0.0);
        let a = run_amandroid_on(&app);
        assert!(!a.timed_out);
        assert_eq!(a.vulnerable, 1);
    }

    #[test]
    fn par_map_is_deterministic_and_ordered() {
        let square = |i: usize| i * i;
        let seq: Vec<usize> = par_map(37, 1, square);
        let par: Vec<usize> = par_map(37, 8, square);
        assert_eq!(seq, par);
        assert_eq!(seq[5], 25);
        assert!(par_map(0, 4, square).is_empty());
    }

    #[test]
    fn parallel_benchset_matches_sequential_byte_for_byte() {
        let scale = Scale::Sized {
            count: 6,
            code_permille: 40,
        };
        let seq = run_benchset_with(scale, BackendChoice::Indexed, 1);
        let par = run_benchset_with(scale, BackendChoice::Indexed, 4);
        assert_eq!(seq.len(), par.len());
        // The deterministic JSON projection (everything but wall-clock)
        // must be byte-identical — this is the corpus driver's contract.
        assert_eq!(bench_runs_json(&seq), bench_runs_json(&par));
    }

    #[test]
    fn backends_agree_across_a_sized_benchset() {
        let scale = Scale::Sized {
            count: 5,
            code_permille: 40,
        };
        let lin = run_benchset_with(scale, BackendChoice::LinearScan, 2);
        let idx = run_benchset_with(scale, BackendChoice::Indexed, 2);
        for (l, x) in lin.iter().zip(&idx) {
            assert_eq!(
                l.backdroid.vulnerable, x.backdroid.vulnerable,
                "{}",
                l.backdroid.app
            );
            assert_eq!(l.backdroid.sinks_analyzed, x.backdroid.sinks_analyzed);
            assert_eq!(l.backdroid.lines_scanned, x.backdroid.lines_scanned);
            assert_eq!(l.backdroid.cache_rate, x.backdroid.cache_rate);
            assert_eq!(l.backdroid.postings_touched, 0);
            assert!(
                x.backdroid.postings_touched < x.backdroid.lines_scanned,
                "indexed work must undercut the linear model on {}",
                x.backdroid.app
            );
        }
    }
}
