//! Shared harness utilities: running both tools over the benchmark set,
//! deterministic scaled-time conversion, and distribution bucketing.
//!
//! ## Time scaling
//!
//! Absolute wall-clock numbers cannot be compared to the paper's i7-4790
//! testbed, so each tool also reports a *deterministic, machine-independent*
//! work measure that the harness converts to "scaled minutes":
//!
//! * **BackDroid** — dump lines scanned by the search engine (its cost
//!   driver is grep passes over the dexdump text), divided by
//!   [`BACKDROID_LINES_PER_MINUTE`].
//! * **Amandroid baseline** — statement-visit work units, divided by
//!   `backdroid_wholeapp::WORK_UNITS_PER_MINUTE` (whose 300-minute budget
//!   is the paper's timeout).
//!
//! Real wall-clock milliseconds are reported alongside, unscaled.

use backdroid_appgen::benchset::{bench_app, BenchApp, BenchsetConfig, Profile};
use backdroid_core::{AnalysisContext, Backdroid, BackdroidOptions};
use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig, Outcome};
use backdroid_wholeapp::paper_minutes;
use serde::Serialize;
use std::time::Instant;

/// Calibration: dump lines BackDroid scans per scaled minute. Chosen so
/// the benchmark set's median lands near the paper's 2.13 min.
pub const BACKDROID_LINES_PER_MINUTE: f64 = 750_000.0;

/// Harness scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper-scale 144-app set.
    Full,
    /// A reduced set for quick runs and CI.
    Small,
}

impl Scale {
    /// The corresponding benchmark-set configuration.
    pub fn config(self) -> BenchsetConfig {
        match self {
            Scale::Full => BenchsetConfig::full(),
            Scale::Small => BenchsetConfig::small(),
        }
    }
}

/// Parses `--small` / `--full` from argv (default full).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    }
}

/// One BackDroid run result.
#[derive(Clone, Debug, Serialize)]
pub struct BackdroidRun {
    /// App name.
    pub app: String,
    /// Scaled analysis time in paper minutes.
    pub minutes: f64,
    /// Real wall-clock milliseconds.
    pub wall_ms: f64,
    /// Number of sink call sites analyzed.
    pub sinks_analyzed: usize,
    /// Vulnerable sinks found.
    pub vulnerable: usize,
    /// Search-cache hit rate.
    pub cache_rate: f64,
    /// Sink-cache (skip) rate.
    pub sink_cache_rate: f64,
    /// Whether any dead method loop was detected.
    pub loops_detected: bool,
    /// Most common loop kind, if any.
    pub top_loop: Option<String>,
}

/// One baseline run result.
#[derive(Clone, Debug, Serialize)]
pub struct AmandroidRun {
    /// App name.
    pub app: String,
    /// Scaled analysis time in paper minutes (capped at the timeout).
    pub minutes: f64,
    /// Real wall-clock milliseconds.
    pub wall_ms: f64,
    /// Whether the run timed out.
    pub timed_out: bool,
    /// Whether the run hit an injected whole-app error.
    pub errored: bool,
    /// Vulnerable findings (empty on timeout/error).
    pub vulnerable: usize,
}

/// Both tools' results for one benchmark app.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRun {
    /// Population label (Debug-rendered [`Profile`]).
    pub profile: String,
    /// BackDroid result.
    pub backdroid: BackdroidRun,
    /// Baseline result.
    pub amandroid: AmandroidRun,
    /// Ground-truth vulnerable sink paths.
    pub true_vulns: usize,
}

/// Converts a BackDroid report to scaled paper minutes: lines scanned by
/// searches plus one preprocessing pass over the dump.
pub fn backdroid_minutes(lines_scanned: u64, dump_lines: u64) -> f64 {
    (lines_scanned as f64 + 3.0 * dump_lines as f64) / BACKDROID_LINES_PER_MINUTE
}

/// Runs BackDroid on one generated app.
pub fn run_backdroid_on(app: &backdroid_appgen::AndroidApp) -> BackdroidRun {
    let start = Instant::now();
    let dump = app.dump();
    let dump_lines = dump.lines().count() as u64;
    let mut ctx = AnalysisContext::with_dump(&app.program, &app.manifest, &dump);
    let tool = Backdroid::with_options(BackdroidOptions::default());
    let report = tool.analyze_in(&mut ctx);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let cache = ctx.engine.stats();
    BackdroidRun {
        app: app.name.clone(),
        minutes: backdroid_minutes(cache.lines_scanned, dump_lines),
        wall_ms,
        sinks_analyzed: report.sinks_analyzed(),
        vulnerable: report.vulnerable_sinks().len(),
        cache_rate: cache.rate(),
        sink_cache_rate: report.sink_cache.rate(),
        loops_detected: ctx.loops.any(),
        top_loop: ctx.loops.most_common().map(|k| format!("{k:?}")),
    }
}

/// Runs the Amandroid-style baseline on one generated app with the
/// default (full-scale) budget.
pub fn run_amandroid_on(app: &backdroid_appgen::AndroidApp) -> AmandroidRun {
    run_amandroid_with_budget(app, backdroid_wholeapp::DEFAULT_BUDGET_UNITS)
}

/// Runs the baseline with an explicit work-unit budget (reduced runs scale
/// the budget together with the code volume so timeout shapes persist).
pub fn run_amandroid_with_budget(
    app: &backdroid_appgen::AndroidApp,
    budget_units: u64,
) -> AmandroidRun {
    let start = Instant::now();
    let cfg = AmandroidConfig {
        budget_units,
        ..AmandroidConfig::default()
    };
    let registry = backdroid_core::SinkRegistry::crypto_and_ssl();
    let out = analyze(&app.name, &app.program, &app.manifest, &registry, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    match out {
        Outcome::Done(r) => AmandroidRun {
            app: app.name.clone(),
            minutes: paper_minutes(r.work_units),
            wall_ms,
            timed_out: false,
            errored: false,
            vulnerable: r.vulnerable().len(),
        },
        Outcome::TimedOut { work_units, .. } => AmandroidRun {
            app: app.name.clone(),
            minutes: paper_minutes(work_units),
            wall_ms,
            timed_out: true,
            errored: false,
            vulnerable: 0,
        },
        Outcome::Error { .. } => AmandroidRun {
            app: app.name.clone(),
            minutes: 0.0,
            wall_ms,
            timed_out: false,
            errored: true,
            vulnerable: 0,
        },
    }
}

/// The scaled baseline budget for a harness scale: the 300-minute budget
/// shrinks with the code volume so reduced runs keep the timeout shape.
pub fn budget_for(scale: Scale) -> u64 {
    let cfg = scale.config();
    ((backdroid_wholeapp::DEFAULT_BUDGET_UNITS as f64) * cfg.code_scale).max(1_000.0) as u64
}

/// Runs both tools over the benchmark set, generating one app at a time
/// so memory stays bounded at the largest single app.
pub fn run_benchset(scale: Scale) -> Vec<BenchRun> {
    let cfg = scale.config();
    let budget = budget_for(scale);
    (0..cfg.count)
        .map(|i| {
            let ba = bench_app(i, cfg);
            BenchRun {
                profile: format!("{:?}", ba.profile),
                backdroid: run_backdroid_on(&ba.app),
                amandroid: run_amandroid_with_budget(&ba.app, budget),
                true_vulns: ba.app.true_vulnerabilities(),
            }
        })
        .collect()
}

/// Streams the generated benchmark apps with profiles (for harnesses that
/// need ground truth). Each item is generated on demand and can be
/// dropped after use.
pub fn benchset_apps(scale: Scale) -> impl Iterator<Item = BenchApp> {
    let cfg = scale.config();
    (0..cfg.count).map(move |i| bench_app(i, cfg))
}

/// Re-export for harness binaries.
pub use backdroid_appgen::benchset::Profile as BenchProfile;

/// Median of a sample (0.0 when empty).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

/// Buckets a scaled-minutes value into labeled ranges, e.g.
/// `bucket_label(&[1.0, 5.0, 10.0], 7.2)` → `"5m-10m"`.
pub fn bucket_label(edges: &[f64], minutes: f64) -> String {
    let mut lo = 0.0;
    for &e in edges {
        if minutes < e {
            return format!("{}m-{}m", fmt_edge(lo), fmt_edge(e));
        }
        lo = e;
    }
    format!(">{}m", fmt_edge(lo))
}

fn fmt_edge(e: f64) -> String {
    if e.fract() == 0.0 {
        format!("{}", e as u64)
    } else {
        format!("{e}")
    }
}

/// Prints a histogram line for a bucketed distribution.
pub fn print_histogram(title: &str, labeled: &[(String, usize)]) {
    println!("{title}");
    let max = labeled.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in labeled {
        let bar = "#".repeat(count * 40 / max);
        println!("  {label:<12} {count:>4} {bar}");
    }
}

/// Is this profile part of the timeout population?
pub fn is_timeout_profile(p: Profile) -> bool {
    matches!(p, Profile::TimeoutVictim | Profile::TimeoutNoVuln)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_buckets() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 0.4), "0m-1m");
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 7.2), "5m-10m");
        assert_eq!(bucket_label(&[1.0, 5.0, 10.0], 12.0), ">10m");
    }

    #[test]
    fn backdroid_minutes_scaling() {
        let m = backdroid_minutes(750_000, 0);
        assert!((m - 1.0).abs() < 1e-9);
        assert!(backdroid_minutes(0, 1000) > 0.0, "preprocessing counted");
    }

    #[test]
    fn runs_one_small_app_both_tools() {
        use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
        let app = AppSpec::named("com.bench.unit")
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(6, 3, 4)
            .generate();
        let b = run_backdroid_on(&app);
        assert_eq!(b.vulnerable, 1);
        assert!(b.minutes > 0.0);
        let a = run_amandroid_on(&app);
        assert!(!a.timed_out);
        assert_eq!(a.vulnerable, 1);
    }
}
