//! Snapshot-layer benchmark: for every app in a benchset, measures the
//! full cold parse (generate → encode → disassemble → index) against
//! `to_snapshot` (serialize, posting lists included) and
//! `from_snapshot` (restore), and verifies the restore is *exact* —
//! re-snapshotting the restored image must reproduce the original bytes,
//! and analyzing it must reproduce the fresh image's report.
//!
//! Stdout reports per-corpus aggregates: snapshot size vs estimated
//! resident size, restore speedup over the parse, and the verification
//! verdict. The bin exits non-zero if any app's round-trip diverges, if
//! full-touch restoring is not faster than parsing in aggregate, or if
//! a manifest-only lazy restore is not faster than the full decode —
//! the two invariants the serving layer's disk tier depends on.
//!
//! Two restore modes are timed separately:
//! * **full-touch** — `from_snapshot` plus forcing the text arena and
//!   posting lists, the cost of a disk-warm load that immediately
//!   searches (what the cold parse is compared against);
//! * **manifest-only** — `from_snapshot` plus store accounting
//!   (`estimated_bytes`, package name) with the lazy text/index
//!   sections verified to stay unmaterialized — the disk-warm-restore
//!   latency a request that never searches actually pays. The total
//!   section count accidentally forced across every lazy restore is
//!   reported as `lazy_sections_materialized` and banded at exactly 0
//!   in the committed baseline.
//!
//! The restore must also be *behaviourally* identical to the fresh
//! build at the search-engine level: analyzing the restored image must
//! touch exactly as many index postings as analyzing the fresh one
//! (`postings_touched` parity), proving the snapshot carried the
//! posting lists rather than rebuilding different ones.
//!
//! Flags: `--count N`, `--code-permille M`, `--backend linear|indexed`,
//! `--smoke` (small CI preset), `--json PATH`, `--baseline PATH`
//! (check machine-independent ratios — restore speedup, size ratio,
//! postings parity — against a committed `BENCH_*.json` envelope).

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_bench::harness::arg_value;
use backdroid_bench::json::JsonObject;
use backdroid_bench::{backend_from_args, json_path_from_args, Baseline};
use backdroid_core::{AppArtifacts, Backdroid, BackdroidOptions};
use std::time::Instant;

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => v.parse::<T>().unwrap_or_else(|_| {
            eprintln!("error: {flag} {v:?} is invalid");
            std::process::exit(2)
        }),
        None => default,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (def_count, def_permille) = if smoke { (8, 40) } else { (24, 80) };
    let bench = BenchsetConfig::try_sized(
        parsed_arg("--count", def_count),
        parsed_arg::<u32>("--code-permille", def_permille) as f64 / 1000.0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    });
    let backend = backend_from_args();
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        ..BackdroidOptions::default()
    });

    let mut parse_ms = 0.0f64;
    let mut snapshot_ms = 0.0f64;
    let mut restore_ms = 0.0f64;
    let mut lazy_ms = 0.0f64;
    let mut snapshot_bytes = 0u64;
    let mut estimated_bytes = 0u64;
    let mut mismatches = 0usize;
    let mut lazy_sections = 0u64;
    let mut postings_fresh = 0u64;
    let mut postings_restored = 0u64;

    for i in 0..bench.count {
        let t0 = Instant::now();
        let ba = bench_app(i, bench);
        let fresh = AppArtifacts::with_backend(ba.app.program, ba.app.manifest, backend);
        // The cold path the disk tier replaces also pays the posting-list
        // build on its first indexed query; charge it here so the
        // comparison is parse-work vs restore-work, not lazy-vs-eager.
        let _ = fresh.engine().text().search_index();
        parse_ms += t0.elapsed().as_secs_f64() * 1_000.0;

        let t1 = Instant::now();
        let bytes = fresh.to_snapshot();
        snapshot_ms += t1.elapsed().as_secs_f64() * 1_000.0;
        snapshot_bytes += bytes.len() as u64;
        estimated_bytes += fresh.estimated_bytes();

        let t2 = Instant::now();
        let restored = AppArtifacts::from_snapshot(&bytes, backend)
            .unwrap_or_else(|e| panic!("app {i}: snapshot failed to restore: {e}"));
        // Full-touch: force the lazy sections the way a first analysis
        // would, so the parse comparison stays work-for-work fair.
        let _ = restored.program();
        let text = restored.engine().text();
        let _ = text.search_index();
        if text.line_count() > 0 {
            let _ = text.line(0);
        }
        restore_ms += t2.elapsed().as_secs_f64() * 1_000.0;

        // Manifest-only: restore again and touch nothing but the header
        // facts the app store reads — the lazy sections must stay parked.
        let t3 = Instant::now();
        let lazy = AppArtifacts::from_snapshot(&bytes, backend)
            .unwrap_or_else(|e| panic!("app {i}: lazy restore failed: {e}"));
        let _ = lazy.estimated_bytes();
        let _ = lazy.manifest().package();
        lazy_ms += t3.elapsed().as_secs_f64() * 1_000.0;
        let lazy_secs = lazy.materialized_sections();
        lazy_sections += lazy_secs;
        if lazy_secs > 0 {
            eprintln!(
                "MISMATCH: app {i} manifest-only restore materialized {lazy_secs} lazy section(s)"
            );
            mismatches += 1;
        }

        // Exactness: byte-identical re-snapshot, identical analysis.
        if restored.to_snapshot() != bytes
            || tool.analyze_artifacts(&restored).sink_reports
                != tool.analyze_artifacts(&fresh).sink_reports
        {
            eprintln!("MISMATCH: app {i} diverged after restore");
            mismatches += 1;
        }
        // Engine-level parity: the restored index must drive the same
        // postings traffic the fresh one does (both 0 under --backend
        // linear, which has no postings).
        postings_restored += restored.engine().stats().postings_touched;
        postings_fresh += fresh.engine().stats().postings_touched;
    }

    let n = bench.count as f64;
    let speedup = if restore_ms > 0.0 {
        parse_ms / restore_ms
    } else {
        0.0
    };
    println!("snapshot_bench: persistent app-image snapshots");
    println!(
        "  corpus: {} apps (code {:.0}‰), backend {}",
        bench.count,
        bench.code_scale * 1000.0,
        backend.name()
    );
    println!(
        "  cold parse: {:.2} ms/app | to_snapshot: {:.2} ms/app | from_snapshot: {:.2} ms/app",
        parse_ms / n,
        snapshot_ms / n,
        restore_ms / n
    );
    println!(
        "  manifest-only lazy restore: {:.3} ms/app ({:.1}x below the full decode)",
        lazy_ms / n,
        if lazy_ms > 0.0 {
            restore_ms / lazy_ms
        } else {
            0.0
        }
    );
    println!(
        "  size: {:.1} KiB/app on disk vs {:.1} KiB/app estimated resident",
        snapshot_bytes as f64 / n / 1024.0,
        estimated_bytes as f64 / n / 1024.0
    );
    println!(
        "  restore speedup over cold parse: {speedup:.1}x | round-trip mismatches: {mismatches}"
    );
    println!(
        "  postings touched: {postings_fresh} fresh vs {postings_restored} restored ({:.1}/app)",
        postings_fresh as f64 / n
    );

    if let Some(path) = json_path_from_args() {
        let obj = JsonObject::new()
            .int("apps", bench.count as u64)
            .str("backend", backend.name())
            .int("snapshot_bytes_total", snapshot_bytes)
            .int("estimated_resident_bytes_total", estimated_bytes)
            .int("mismatches", mismatches as u64)
            .int("lazy_sections_materialized", lazy_sections)
            .int("postings_touched_fresh", postings_fresh)
            .int("postings_touched_restored", postings_restored)
            .float("wall_parse_ms_per_app", parse_ms / n)
            .float("wall_snapshot_ms_per_app", snapshot_ms / n)
            .float("wall_restore_ms_per_app", restore_ms / n)
            .float("wall_lazy_restore_ms_per_app", lazy_ms / n)
            .float("wall_restore_speedup", speedup)
            .float(
                "wall_lazy_restore_speedup",
                if lazy_ms > 0.0 {
                    restore_ms / lazy_ms
                } else {
                    0.0
                },
            )
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} app(s) did not round-trip exactly");
        failed = true;
    }
    if restore_ms >= parse_ms {
        eprintln!(
            "FAIL: restoring ({restore_ms:.1} ms total) is not faster than parsing \
             ({parse_ms:.1} ms total) — the disk tier would be pointless"
        );
        failed = true;
    }
    if lazy_ms >= restore_ms {
        eprintln!(
            "FAIL: a manifest-only restore ({lazy_ms:.1} ms total) is not faster than the \
             eager full decode ({restore_ms:.1} ms total) — the lazy sections buy nothing"
        );
        failed = true;
    }
    if postings_restored != postings_fresh {
        eprintln!(
            "FAIL: restored images touched {postings_restored} postings where fresh builds \
             touched {postings_fresh} — the snapshot did not carry the index faithfully"
        );
        failed = true;
    }

    // Committed machine-independent envelope (--baseline): ratios and
    // counts only, no absolute wall-clock.
    let postings_parity = if postings_fresh == 0 {
        1.0
    } else {
        postings_restored as f64 / postings_fresh as f64
    };
    let metrics: Vec<(&str, f64)> = vec![
        ("mismatches", mismatches as f64),
        ("lazy_sections_materialized", lazy_sections as f64),
        ("wall_restore_speedup", speedup),
        (
            "wall_lazy_restore_speedup",
            if lazy_ms > 0.0 {
                restore_ms / lazy_ms
            } else {
                0.0
            },
        ),
        ("postings_parity", postings_parity),
        ("postings_per_app", postings_fresh as f64 / n),
        (
            "snapshot_resident_ratio",
            if estimated_bytes > 0 {
                snapshot_bytes as f64 / estimated_bytes as f64
            } else {
                0.0
            },
        ),
    ];
    if !Baseline::enforce_from_args("snapshot_bench", &metrics) {
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "OK: {} apps round-tripped byte-identically, restore {speedup:.1}x faster than parse",
        bench.count
    );
}
