//! Ablation: quantify the §IV-F search-caching enhancement by running
//! BackDroid's pipeline with and without the search caches on the same
//! apps and comparing the grep work (dump lines scanned).

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, BackdroidOptions};

fn run_with_caching(app: &backdroid_appgen::AndroidApp, caching: bool) -> (u64, f64) {
    let start = std::time::Instant::now();
    let artifacts = backdroid_core::AppArtifacts::new(app.program.clone(), app.manifest.clone());
    artifacts.engine().set_caching(caching);
    let report = Backdroid::with_options(BackdroidOptions::default()).analyze_artifacts(&artifacts);
    (
        report.cache_stats.lines_scanned,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

fn main() {
    println!("Ablation: search caching (§IV-F)\n");
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "workload", "lines (cached)", "lines (none)", "saved"
    );
    for (name, scenarios, filler) in [
        (
            "single sink",
            vec![Scenario::new(
                Mechanism::PrivateChain,
                SinkKind::Cipher,
                true,
            )],
            30usize,
        ),
        (
            "shared utility (cache-hit)",
            vec![Scenario::new(
                Mechanism::SharedUtility,
                SinkKind::Cipher,
                true,
            )],
            30,
        ),
        (
            "4 shared utilities",
            (0..4)
                .map(|_| Scenario::new(Mechanism::SharedUtility, SinkKind::Cipher, false))
                .collect(),
            30,
        ),
        (
            "mixed 12 sinks",
            (0..12)
                .map(|k| {
                    let mechs = [
                        Mechanism::DirectEntry,
                        Mechanism::PrivateChain,
                        Mechanism::ClinitOffPath,
                        Mechanism::LifecycleChain,
                    ];
                    Scenario::new(mechs[k % 4], SinkKind::Cipher, false)
                })
                .collect(),
            60,
        ),
    ] {
        let app = AppSpec::named(format!("com.ablate.{}", name.replace(' ', "")))
            .with_scenarios(scenarios)
            .with_filler(filler, 5, 8)
            .generate();
        let (cached_lines, cached_ms) = run_with_caching(&app, true);
        let (raw_lines, raw_ms) = run_with_caching(&app, false);
        let saved = 100.0 * (1.0 - cached_lines as f64 / raw_lines.max(1) as f64);
        println!(
            "{name:<28} {cached_lines:>14} {raw_lines:>14} {saved:>8.1}%   ({cached_ms:.0} ms vs {raw_ms:.0} ms)"
        );
    }
    println!(
        "\n[paper §IV-F: per-app command cache rate averages 23.39%, up to 88.95% —\n\
         repeated searches across sinks are the savings source]"
    );
}
