//! Update-latency benchmark: the incremental analysis path for app
//! updates against the cold path it replaces.
//!
//! For every app in the benchset, walks a seeded `mutate_version` chain
//! and times each version twice:
//!
//! * **delta-warm** — what `put_version` + `analyze_delta` pay: rebuild
//!   the image through the per-class token cache (only touched classes
//!   re-tokenize), then a delta run that replays prior verdicts for
//!   every sink the update provably cannot have affected;
//! * **cold** — a from-scratch image build plus a full analysis of the
//!   same version, the cost an update would incur without the
//!   incremental path.
//!
//! Each side splits into a **build** phase (encode + dump + index — the
//! publish cost, paid once per version and nearly identical on both
//! paths) and an **analysis** phase (what every request after the
//! publish pays). The incremental win concentrates in the analysis
//! phase, so that ratio (`wall_analysis_speedup`) is the headline band;
//! the end-to-end ratio (`wall_update_speedup`) is banded too and must
//! not regress below the cold path.
//!
//! The two paths must agree verdict-for-verdict at every version
//! (counted as `mismatches`, banded at exactly 0), and the speedups plus
//! the reuse rates (chunks, tokens, sink verdicts) form the
//! machine-independent envelope committed in `BENCH_update_latency.json`
//! and checked by `--baseline` in CI.
//!
//! Flags: `--count N`, `--updates K`, `--code-permille M`,
//! `--backend linear|indexed`, `--smoke` (small CI preset),
//! `--json PATH`, `--baseline PATH`.

use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::mutate_version;
use backdroid_bench::harness::arg_value;
use backdroid_bench::json::JsonObject;
use backdroid_bench::{backend_from_args, json_path_from_args, Baseline};
use backdroid_core::{AppArtifacts, Backdroid, BackdroidOptions, ChunkManifest};
use backdroid_search::{BackendChoice, TokenCache};
use std::time::Instant;

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => v.parse::<T>().unwrap_or_else(|_| {
            eprintln!("error: {flag} {v:?} is invalid");
            std::process::exit(2)
        }),
        None => default,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (def_count, def_updates, def_permille) = if smoke { (6, 3, 40) } else { (16, 4, 80) };
    let updates = parsed_arg("--updates", def_updates);
    let bench = BenchsetConfig::try_sized(
        parsed_arg("--count", def_count),
        parsed_arg::<u32>("--code-permille", def_permille) as f64 / 1000.0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    });
    let backend = backend_from_args();
    let tool = Backdroid::with_options(BackdroidOptions {
        backend,
        ..BackdroidOptions::default()
    });

    let mut warm_build_ms = 0.0f64;
    let mut warm_analyze_ms = 0.0f64;
    let mut cold_build_ms = 0.0f64;
    let mut cold_analyze_ms = 0.0f64;
    let mut mismatches = 0usize;
    let mut fallbacks = 0u64;
    let mut updates_run = 0u64;
    let mut chunks_reused = 0u64;
    let mut chunks_total = 0u64;
    let mut tokens_reused = 0u64;
    let mut classes_total = 0u64;
    let mut sinks_reused = 0u64;
    let mut sinks_total = 0u64;

    for i in 0..bench.count {
        let ba = bench_app(i, bench);
        let manifest = ba.app.manifest;
        let mut program = ba.app.program;
        let (mut old, mut cache, _) = AppArtifacts::with_backend_cached(
            program.clone(),
            manifest.clone(),
            backend,
            &TokenCache::default(),
        );
        // The serving layer captures the base on the first delta request;
        // here it is part of setup, not of either timed path.
        let (_, mut base) = tool.analyze_artifacts_traced(&old);
        for step in 0..updates {
            let seed = (i as u64) * 1_000 + step as u64;
            let (next, _) = mutate_version(&program, seed);
            let prior_manifest = ChunkManifest::of_program(&program);
            let next_manifest = ChunkManifest::of_program(&next);
            let delta = prior_manifest.diff(&next_manifest);
            chunks_reused += delta.unchanged.len() as u64;
            chunks_total +=
                (delta.unchanged.len() + delta.changed.len() + delta.added.len()) as u64;

            let t0 = Instant::now();
            let (new, next_cache, tok_reused) =
                AppArtifacts::with_backend_cached(next.clone(), manifest.clone(), backend, &cache);
            warm_build_ms += t0.elapsed().as_secs_f64() * 1_000.0;
            let t0 = Instant::now();
            let (warm_report, new_base, stats) = tool.analyze_delta(&old, Some(&base), &new);
            warm_analyze_ms += t0.elapsed().as_secs_f64() * 1_000.0;

            let t1 = Instant::now();
            let scratch = AppArtifacts::with_backend(next.clone(), manifest.clone(), backend);
            cold_build_ms += t1.elapsed().as_secs_f64() * 1_000.0;
            let t1 = Instant::now();
            let cold_report = tool.analyze_artifacts(&scratch);
            cold_analyze_ms += t1.elapsed().as_secs_f64() * 1_000.0;

            if warm_report.sink_reports != cold_report.sink_reports {
                eprintln!("MISMATCH: app {i} update {step}: delta diverged from cold");
                mismatches += 1;
            }
            tokens_reused += tok_reused as u64;
            classes_total += next_cache.len() as u64;
            sinks_reused += stats.sinks_reused as u64;
            sinks_total += (stats.sinks_reused + stats.sinks_reanalyzed) as u64;
            fallbacks += stats.full_fallback as u64;
            updates_run += 1;

            program = next;
            old = new;
            base = new_base;
            cache = next_cache;
        }
    }

    let ratio = |a: u64, b: u64| if b > 0 { a as f64 / b as f64 } else { 0.0 };
    let warm_ms = warm_build_ms + warm_analyze_ms;
    let cold_ms = cold_build_ms + cold_analyze_ms;
    let speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        0.0
    };
    let analysis_speedup = if warm_analyze_ms > 0.0 {
        cold_analyze_ms / warm_analyze_ms
    } else {
        0.0
    };
    let n = updates_run.max(1) as f64;
    println!("update_latency: incremental app-update analysis");
    println!(
        "  corpus: {} apps (code {:.0}‰) x {updates} updates, backend {}",
        bench.count,
        bench.code_scale * 1000.0,
        backend.name()
    );
    println!(
        "  delta-warm: {:.2} ms/update (build {:.2} + analyze {:.2}) | \
         cold: {:.2} ms/update (build {:.2} + analyze {:.2})",
        warm_ms / n,
        warm_build_ms / n,
        warm_analyze_ms / n,
        cold_ms / n,
        cold_build_ms / n,
        cold_analyze_ms / n
    );
    println!("  speedup: {analysis_speedup:.1}x analysis phase, {speedup:.2}x end-to-end");
    println!(
        "  reuse: chunks {:.2}, tokens {:.2}, sink verdicts {:.2} | full fallbacks {fallbacks}/{updates_run}",
        ratio(chunks_reused, chunks_total),
        ratio(tokens_reused, classes_total),
        ratio(sinks_reused, sinks_total)
    );
    println!("  mismatches: {mismatches}");

    if let Some(path) = json_path_from_args() {
        let obj = JsonObject::new()
            .int("apps", bench.count as u64)
            .int("updates_per_app", updates as u64)
            .str("backend", backend.name())
            .int("mismatches", mismatches as u64)
            .int("delta_full_fallbacks", fallbacks)
            .float("chunk_reuse_rate", ratio(chunks_reused, chunks_total))
            .float("token_reuse_rate", ratio(tokens_reused, classes_total))
            .float("sink_reuse_rate", ratio(sinks_reused, sinks_total))
            .float("wall_warm_ms_per_update", warm_ms / n)
            .float("wall_cold_ms_per_update", cold_ms / n)
            .float("wall_warm_analyze_ms_per_update", warm_analyze_ms / n)
            .float("wall_cold_analyze_ms_per_update", cold_analyze_ms / n)
            .float("wall_analysis_speedup", analysis_speedup)
            .float("wall_update_speedup", speedup)
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} update(s) diverged from the cold analysis");
        failed = true;
    }
    // The planner validates every reused verdict by replaying its traced
    // search commands against the new image; that replay is cheap only
    // when searches are indexed. On the linear backend a replayed scan
    // costs as much as the original search, so the analysis phase is
    // expected to break even there and only correctness is enforced.
    if backend == BackendChoice::Indexed && warm_analyze_ms >= cold_analyze_ms {
        eprintln!(
            "FAIL: the delta analysis phase ({warm_analyze_ms:.1} ms total) is not faster \
             than a full analysis ({cold_analyze_ms:.1} ms total)"
        );
        failed = true;
    }
    let metrics = [
        ("mismatches", mismatches as f64),
        ("fallback_rate", ratio(fallbacks, updates_run)),
        ("chunk_reuse_rate", ratio(chunks_reused, chunks_total)),
        ("token_reuse_rate", ratio(tokens_reused, classes_total)),
        ("sink_reuse_rate", ratio(sinks_reused, sinks_total)),
        ("wall_analysis_speedup", analysis_speedup),
        ("wall_update_speedup", speedup),
    ];
    if !Baseline::enforce_from_args("update_latency", &metrics) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
