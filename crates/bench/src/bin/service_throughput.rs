//! Throughput benchmark for the serving layer: drives a seeded
//! Zipf-skewed workload (see `backdroid_appgen::workload`) through a
//! [`Service`] on a worker pool and reports requests/sec, cold-load vs
//! warm-hit latency, and store behaviour (loads, coalesced waits,
//! evictions, peak residency) under a configurable byte budget.
//!
//! Unlike the paper-figure bins, this one's stdout **is** about
//! wall-clock — it measures a live serving system, and with
//! `--workers > 1` the hit/miss/eviction counts depend on scheduling
//! too, so CI uploads its artifact without diffing it. The bin
//! self-checks the serving layer's two load-bearing claims and exits
//! non-zero if either fails:
//!
//! * the resident store never exceeds its byte budget
//!   (`peak_resident_bytes <= budget`);
//! * the mean warm-hit latency is below the mean cold-load latency
//!   (residency actually amortizes preprocessing). An empty warm
//!   bucket fails the check rather than skipping it — a workload that
//!   never hits the store cannot demonstrate residency (only a
//!   zero-budget store, which by design has no warm hits, skips the
//!   comparison).
//!
//! Flags: `--count N` / `--code-permille M` (benchset), `--requests N`,
//! `--workers N`, `--budget-mb N`, `--backend linear|indexed`,
//! `--intra-threads N`, `--seed S`, `--smoke` (small CI preset),
//! `--json PATH`, and `--snapshot-dir DIR` to enable the store's disk
//! tier — latencies are then reported in three tiers (cold-parse vs
//! disk-warm vs memory-warm), and a second run against the populated
//! directory serves its first-touch loads from snapshots. When both
//! cold and disk tiers appear in one run, the bin additionally
//! self-checks disk-warm < cold-parse.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig, WorkloadOp};
use backdroid_bench::harness::arg_value;
use backdroid_bench::json::JsonObject;
use backdroid_bench::{backend_from_args, intra_threads_from_args, json_path_from_args, median};
use backdroid_service::{Fetch, Service, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => v.parse::<T>().unwrap_or_else(|_| {
            eprintln!("error: {flag} {v:?} is invalid");
            std::process::exit(2)
        }),
        None => default,
    }
}

/// How one request was served, for the latency tiers: full cold parse,
/// disk-warm (snapshot restore), or memory-warm (resident image).
#[derive(Clone, Copy, PartialEq)]
enum Served {
    Cold,
    Disk,
    Warm,
    Coalesced,
    Error,
}

fn classify(fetches: &[Fetch]) -> Served {
    if fetches.is_empty() {
        return Served::Error;
    }
    if fetches.contains(&Fetch::Miss) {
        Served::Cold
    } else if fetches.contains(&Fetch::Disk) {
        Served::Disk
    } else if fetches.contains(&Fetch::Coalesced) {
        Served::Coalesced
    } else {
        Served::Warm
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (def_count, def_permille, def_requests, def_budget_mb) = if smoke {
        (8, 40, 60, 4)
    } else {
        (24, 80, 200, 64)
    };
    let bench = BenchsetConfig::try_sized(
        parsed_arg("--count", def_count),
        parsed_arg::<u32>("--code-permille", def_permille) as f64 / 1000.0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    });
    let requests = parsed_arg("--requests", def_requests);
    let workers = parsed_arg::<usize>("--workers", 4).max(1);
    let budget_mb = parsed_arg::<u64>("--budget-mb", def_budget_mb);
    let seed = parsed_arg("--seed", 7u64);
    let backend = backend_from_args();
    let intra_threads = intra_threads_from_args();

    let wl_cfg = WorkloadConfig {
        apps: bench.count,
        requests,
        seed,
        ..WorkloadConfig::default()
    };
    let snapshot_dir = arg_value("--snapshot-dir").map(std::path::PathBuf::from);
    let trace = workload::generate(wl_cfg);
    let service = Service::over_benchset(
        bench,
        ServiceConfig {
            budget_bytes: budget_mb * 1024 * 1024,
            backend,
            intra_threads,
            snapshot_dir: snapshot_dir.clone(),
            ..ServiceConfig::default()
        },
    );

    // Drive the trace on `workers` threads; per-request latency and
    // serving class are recorded for the cold/warm comparison.
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<(f64, Served)>> = Mutex::new(Vec::with_capacity(trace.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trace.len() {
                        break;
                    }
                    let req = &trace[i];
                    let app = req.app.to_string();
                    let t0 = Instant::now();
                    let fetches: Vec<Fetch> = match &req.op {
                        WorkloadOp::Analyze => service
                            .analyze_app(&app)
                            .map(|a| vec![a.fetch])
                            .unwrap_or_default(),
                        WorkloadOp::Query(classes) => {
                            let classes: Vec<_> = classes
                                .iter()
                                .filter_map(|c| backdroid_service::SinkClass::parse(c))
                                .collect();
                            service
                                .query_sinks(&app, &classes)
                                .map(|a| vec![a.fetch])
                                .unwrap_or_default()
                        }
                        WorkloadOp::Batch(extra) => {
                            let ids: Vec<String> = std::iter::once(req.app)
                                .chain(extra.iter().copied())
                                .map(|a| a.to_string())
                                .collect();
                            service
                                .analyze_batch(&ids)
                                .into_iter()
                                .filter_map(|r| r.ok().map(|a| a.fetch))
                                .collect()
                        }
                    };
                    let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                    local.push((ms, classify(&fetches)));
                }
                samples.lock().expect("samples poisoned").extend(local);
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let samples = samples.into_inner().expect("samples poisoned");

    let bucket = |s: Served| -> Vec<f64> {
        samples
            .iter()
            .filter(|(_, c)| *c == s)
            .map(|(ms, _)| *ms)
            .collect()
    };
    let cold = bucket(Served::Cold);
    let disk = bucket(Served::Disk);
    let warm = bucket(Served::Warm);
    let coalesced = bucket(Served::Coalesced);
    let errors = samples.iter().filter(|(_, c)| *c == Served::Error).count();
    let stats = service.stats();
    let store = stats.store;
    let budget_bytes = service.store().budget_bytes();
    let rps = if wall_s > 0.0 {
        samples.len() as f64 / wall_s
    } else {
        0.0
    };

    println!("service_throughput: resident multi-app serving layer");
    println!(
        "  corpus: {} apps (code {:.0}‰), {} requests, seed {seed}",
        bench.count,
        bench.code_scale * 1000.0,
        trace.len()
    );
    println!(
        "  config: backend {}, {} workers, intra-threads {intra_threads}, budget {budget_mb} MiB",
        backend.name(),
        workers,
    );
    println!(
        "  throughput: {rps:.1} req/s ({:.1} ms wall for {} requests)",
        wall_s * 1_000.0,
        samples.len()
    );
    println!(
        "  latency tiers: cold-parse n={} mean={:.2} ms median={:.2} ms | disk-warm n={} mean={:.3} ms median={:.3} ms | memory-warm n={} mean={:.3} ms median={:.3} ms | coalesced n={}",
        cold.len(),
        mean(&cold),
        median(&cold),
        disk.len(),
        mean(&disk),
        median(&disk),
        warm.len(),
        mean(&warm),
        median(&warm),
        coalesced.len(),
    );
    println!(
        "  store: {} loads, {} hits, {} coalesced, {} evictions ({} B evicted)",
        store.loads, store.hits, store.coalesced, store.evictions, store.bytes_evicted
    );
    if snapshot_dir.is_some() {
        println!(
            "  disk tier: {} hits, {} misses, {} invalidations, {} writes ({} B written, {} failures)",
            store.disk_hits,
            store.disk_misses,
            store.disk_invalidations,
            store.disk_writes,
            store.disk_bytes_written,
            store.disk_write_failures,
        );
    }
    println!(
        "  residency: peak {} B of {} B budget ({} apps resident at exit), hit rate {:.1}%",
        store.peak_resident_bytes,
        budget_bytes,
        store.resident_apps,
        100.0 * store.hit_rate(),
    );
    println!(
        "  queue: peak in-flight {} ({} errors)",
        stats.peak_in_flight, errors
    );

    if let Some(path) = json_path_from_args() {
        let obj = JsonObject::new()
            .int("apps", bench.count as u64)
            .int("requests", samples.len() as u64)
            .int("seed", seed)
            .str("backend", backend.name())
            .int("workers", workers as u64)
            .int("intra_threads", intra_threads as u64)
            .int("budget_bytes", budget_bytes)
            .int("cold", cold.len() as u64)
            .int("disk", disk.len() as u64)
            .int("warm", warm.len() as u64)
            .int("coalesced", coalesced.len() as u64)
            .int("errors", errors as u64)
            .int("loads", store.loads)
            .int("hits", store.hits)
            .int("evictions", store.evictions)
            .int("bytes_evicted", store.bytes_evicted)
            .int("disk_hits", store.disk_hits)
            .int("disk_misses", store.disk_misses)
            .int("disk_invalidations", store.disk_invalidations)
            .int("disk_bytes_written", store.disk_bytes_written)
            .int("peak_resident_bytes", store.peak_resident_bytes)
            .int("peak_in_flight", stats.peak_in_flight)
            .float("wall_requests_per_sec", rps)
            .float("wall_cold_mean_ms", mean(&cold))
            .float("wall_cold_median_ms", median(&cold))
            .float("wall_disk_mean_ms", mean(&disk))
            .float("wall_disk_median_ms", median(&disk))
            .float("wall_warm_mean_ms", mean(&warm))
            .float("wall_warm_median_ms", median(&warm))
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }

    // Self-checks: the two claims every scaling PR on top of the store
    // will lean on. A caching store (budget > 0) must actually produce
    // warm hits on this workload, and cold loads always exist — an
    // empty bucket is itself a failure, never a silently skipped check.
    let mut failed = false;
    if store.peak_resident_bytes > budget_bytes {
        eprintln!(
            "FAIL: store exceeded its budget ({} B > {} B)",
            store.peak_resident_bytes, budget_bytes
        );
        failed = true;
    }
    // Baseline for the residency comparison: cold parses when the run
    // had any, else disk-warm restores (a re-run against a populated
    // --snapshot-dir legitimately never cold-parses).
    let (baseline, baseline_label) = if !cold.is_empty() {
        (&cold, "cold")
    } else {
        (&disk, "disk")
    };
    let warm_cold_checked = if budget_bytes == 0 {
        eprintln!("note: zero-budget store — warm<cold comparison not applicable");
        false
    } else if baseline.is_empty() || warm.is_empty() {
        eprintln!(
            "FAIL: warm<{baseline_label} comparison is vacuous (cold n={}, disk n={}, warm n={}) — \
             the trace/budget cannot demonstrate residency",
            cold.len(),
            disk.len(),
            warm.len()
        );
        failed = true;
        false
    } else if mean(&warm) >= mean(baseline) {
        eprintln!(
            "FAIL: warm-hit latency ({:.3} ms) is not below {baseline_label}-load latency ({:.3} ms)",
            mean(&warm),
            mean(baseline)
        );
        failed = true;
        false
    } else {
        true
    };
    // When both tiers below memory were exercised, the disk tier must
    // actually amortize preprocessing: a restore beating a full parse is
    // the snapshot layer's entire reason to exist.
    if !cold.is_empty() && !disk.is_empty() && mean(&disk) >= mean(&cold) {
        eprintln!(
            "FAIL: disk-warm latency ({:.3} ms) is not below cold-parse latency ({:.3} ms)",
            mean(&disk),
            mean(&cold)
        );
        failed = true;
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} request(s) errored");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if warm_cold_checked {
        eprintln!(
            "OK: budget respected ({} <= {}), warm {:.3} ms < {baseline_label} {:.2} ms",
            store.peak_resident_bytes,
            budget_bytes,
            mean(&warm),
            mean(baseline)
        );
    } else {
        eprintln!(
            "OK: budget respected ({} <= {})",
            store.peak_resident_bytes, budget_bytes
        );
    }
}
