//! Throughput benchmark for the serving layer: drives a seeded
//! Zipf-skewed workload (see `backdroid_appgen::workload`) through a
//! [`Service`] on a worker pool — or, with `--shards N`, through a
//! [`ShardPool`] router — and reports requests/sec, p50/p99 latency,
//! cold-load vs warm-hit latency, and store behaviour (loads, coalesced
//! waits, evictions, peak residency) under a configurable byte budget.
//!
//! Unlike the paper-figure bins, this one's stdout **is** about
//! wall-clock — it measures a live serving system, and with
//! `--workers > 1` the hit/miss/eviction counts depend on scheduling
//! too, so CI uploads its artifact without diffing it. The bin
//! self-checks the serving layer's two load-bearing claims and exits
//! non-zero if either fails:
//!
//! * the resident store never exceeds its byte budget
//!   (`peak_resident_bytes <= budget`; summed across shards when
//!   sharded);
//! * the mean warm-hit latency is below the mean cold-load latency
//!   (residency actually amortizes preprocessing). An empty warm
//!   bucket fails the check rather than skipping it — a workload that
//!   never hits the store cannot demonstrate residency (only a
//!   zero-budget store, which by design has no warm hits, skips the
//!   comparison, as do sharded runs, whose per-request latencies are
//!   sojourn times that include queue wait).
//!
//! In sharded mode requests travel as protocol lines through
//! [`ShardPool::submit_line`], so serving-tier classification is
//! approximated by first-touch: the first request naming an app is
//! counted cold, every later one warm (each app lives on exactly one
//! shard, so first-touch is exact absent evictions). The report then
//! adds per-shard request counts and req/s.
//!
//! Flags: `--count N` / `--code-permille M` (benchset), `--requests N`,
//! `--workers N` (per shard when sharded), `--shards N`,
//! `--budget-mb N` (per shard), `--backend linear|indexed`,
//! `--intra-threads N`, `--seed S`, `--smoke` (small CI preset),
//! `--json PATH`, `--baseline PATH` (check machine-independent ratios
//! against a committed `BENCH_*.json` envelope, see
//! `backdroid_bench::baseline`), and `--snapshot-dir DIR` to enable the
//! store's disk tier — latencies are then reported in three tiers
//! (cold-parse vs disk-warm vs memory-warm), and a second run against
//! the populated directory serves its first-touch loads from snapshots.
//! When both cold and disk tiers appear in one run, the bin
//! additionally self-checks disk-warm < cold-parse.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig, WorkloadOp};
use backdroid_bench::harness::arg_value;
use backdroid_bench::json::{array, JsonObject};
use backdroid_bench::{
    backend_from_args, intra_threads_from_args, json_path_from_args, median, percentile, Baseline,
};
use backdroid_service::proto::workload_request_line;
use backdroid_service::{Fetch, Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => v.parse::<T>().unwrap_or_else(|_| {
            eprintln!("error: {flag} {v:?} is invalid");
            std::process::exit(2)
        }),
        None => default,
    }
}

/// How one request was served, for the latency tiers: full cold parse,
/// disk-warm (snapshot restore), or memory-warm (resident image).
#[derive(Clone, Copy, PartialEq)]
enum Served {
    Cold,
    Disk,
    Warm,
    Coalesced,
    Error,
}

fn classify(fetches: &[Fetch]) -> Served {
    if fetches.is_empty() {
        return Served::Error;
    }
    if fetches.contains(&Fetch::Miss) {
        Served::Cold
    } else if fetches.contains(&Fetch::Disk) {
        Served::Disk
    } else if fetches.contains(&Fetch::Coalesced) {
        Served::Coalesced
    } else {
        Served::Warm
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (def_count, def_permille, def_requests, def_budget_mb) = if smoke {
        (8, 40, 60, 4)
    } else {
        (24, 80, 200, 64)
    };
    let bench = BenchsetConfig::try_sized(
        parsed_arg("--count", def_count),
        parsed_arg::<u32>("--code-permille", def_permille) as f64 / 1000.0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    });
    let requests = parsed_arg("--requests", def_requests);
    let workers = parsed_arg::<usize>("--workers", 4).max(1);
    let shards = parsed_arg::<usize>("--shards", 0);
    let budget_mb = parsed_arg::<u64>("--budget-mb", def_budget_mb);
    let seed = parsed_arg("--seed", 7u64);
    let backend = backend_from_args();
    let intra_threads = intra_threads_from_args();

    let wl_cfg = WorkloadConfig {
        apps: bench.count,
        requests,
        seed,
        ..WorkloadConfig::default()
    };
    let snapshot_dir = arg_value("--snapshot-dir").map(std::path::PathBuf::from);
    let trace = workload::generate(wl_cfg);
    let service_cfg = ServiceConfig {
        budget_bytes: budget_mb * 1024 * 1024,
        backend,
        intra_threads,
        snapshot_dir: snapshot_dir.clone(),
        ..ServiceConfig::default()
    };

    // Drive the trace and record per-request latency + serving class;
    // sharded runs also attribute each request to its routed shard.
    let started = Instant::now();
    let (samples, stats, shard_counts) = if shards > 0 {
        let pool = ShardPool::new(
            ShardPoolConfig {
                shards,
                workers_per_shard: workers,
                queue_capacity: 64,
            },
            {
                let service_cfg = service_cfg.clone();
                move |_| Service::over_benchset(bench, service_cfg.clone())
            },
        );
        // (shard, class, start) per seq, pushed before its submit so the
        // responder always finds the entry.
        let submitted: Arc<Mutex<Vec<(usize, Served, Instant)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(trace.len())));
        let results: Arc<Mutex<Vec<(usize, f64, Served)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(trace.len())));
        let responder: Responder = {
            let submitted = Arc::clone(&submitted);
            let results = Arc::clone(&results);
            Arc::new(move |seq, response| {
                let (shard, class, t0) =
                    submitted.lock().expect("submitted poisoned")[seq as usize];
                let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                let class = match &response {
                    Some(line) if line.contains("\"error\"") => Served::Error,
                    Some(_) => class,
                    None => Served::Error,
                };
                results
                    .lock()
                    .expect("results poisoned")
                    .push((shard, ms, class));
            })
        };
        let mut seen: HashSet<usize> = HashSet::new();
        for (seq, req) in trace.iter().enumerate() {
            // First-touch classification: cold iff any app this request
            // names has never been requested before (batch extras load
            // their apps too).
            let mut fresh = seen.insert(req.app);
            if let WorkloadOp::Batch(extra) = &req.op {
                for &a in extra {
                    fresh |= seen.insert(a);
                }
            }
            let class = if fresh { Served::Cold } else { Served::Warm };
            let shard = pool.route(&req.app.to_string());
            submitted
                .lock()
                .expect("submitted poisoned")
                .push((shard, class, Instant::now()));
            pool.submit_line(
                seq as u64,
                &workload_request_line(seq as u64, req),
                &responder,
            );
        }
        pool.drain();
        let stats = pool.stats();
        pool.shutdown();
        let results = std::mem::take(&mut *results.lock().expect("results poisoned"));
        let mut shard_counts = vec![0u64; shards];
        for &(shard, _, _) in &results {
            shard_counts[shard] += 1;
        }
        let samples: Vec<(f64, Served)> = results.into_iter().map(|(_, ms, c)| (ms, c)).collect();
        (samples, stats, shard_counts)
    } else {
        let service = Service::over_benchset(bench, service_cfg);
        let next = AtomicUsize::new(0);
        let samples: Mutex<Vec<(f64, Served)>> = Mutex::new(Vec::with_capacity(trace.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trace.len() {
                            break;
                        }
                        let req = &trace[i];
                        let app = req.app.to_string();
                        let t0 = Instant::now();
                        let fetches: Vec<Fetch> = match &req.op {
                            WorkloadOp::Analyze => service
                                .analyze_app(&app)
                                .map(|a| vec![a.fetch])
                                .unwrap_or_default(),
                            WorkloadOp::Query(detectors) => service
                                .query_detectors(&app, detectors)
                                .map(|a| vec![a.fetch])
                                .unwrap_or_default(),
                            WorkloadOp::Batch(extra) => {
                                let ids: Vec<String> = std::iter::once(req.app)
                                    .chain(extra.iter().copied())
                                    .map(|a| a.to_string())
                                    .collect();
                                service
                                    .analyze_batch(&ids)
                                    .into_iter()
                                    .filter_map(|r| r.ok().map(|a| a.fetch))
                                    .collect()
                            }
                        };
                        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                        local.push((ms, classify(&fetches)));
                    }
                    samples.lock().expect("samples poisoned").extend(local);
                });
            }
        });
        let stats = service.stats();
        let samples = samples.into_inner().expect("samples poisoned");
        (samples, stats, Vec::new())
    };
    let wall_s = started.elapsed().as_secs_f64();

    let bucket = |s: Served| -> Vec<f64> {
        samples
            .iter()
            .filter(|(_, c)| *c == s)
            .map(|(ms, _)| *ms)
            .collect()
    };
    let cold = bucket(Served::Cold);
    let disk = bucket(Served::Disk);
    let warm = bucket(Served::Warm);
    let coalesced = bucket(Served::Coalesced);
    let errors = samples.iter().filter(|(_, c)| *c == Served::Error).count();
    let all_ms: Vec<f64> = samples.iter().map(|(ms, _)| *ms).collect();
    let p50 = percentile(&all_ms, 50.0);
    let p99 = percentile(&all_ms, 99.0);
    let store = stats.store;
    // The budget the peak is judged against: per shard in sharded mode
    // (aggregated peaks are summed the same way).
    let budget_bytes = budget_mb * 1024 * 1024 * shards.max(1) as u64;

    let rps = if wall_s > 0.0 {
        samples.len() as f64 / wall_s
    } else {
        0.0
    };

    println!("service_throughput: resident multi-app serving layer");
    println!(
        "  corpus: {} apps (code {:.0}‰), {} requests, seed {seed}",
        bench.count,
        bench.code_scale * 1000.0,
        trace.len()
    );
    println!(
        "  config: backend {}, {} workers, intra-threads {intra_threads}, budget {budget_mb} MiB{}",
        backend.name(),
        workers,
        if shards > 0 {
            format!(" per shard, {shards} shards")
        } else {
            String::new()
        },
    );
    println!(
        "  throughput: {rps:.1} req/s ({:.1} ms wall for {} requests), p50 {p50:.3} ms, p99 {p99:.2} ms",
        wall_s * 1_000.0,
        samples.len()
    );
    for (i, n) in shard_counts.iter().enumerate() {
        let shard_rps = if wall_s > 0.0 {
            *n as f64 / wall_s
        } else {
            0.0
        };
        println!("  shard {i}: {n} requests, {shard_rps:.1} req/s");
    }
    println!(
        "  latency tiers: cold-parse n={} mean={:.2} ms median={:.2} ms | disk-warm n={} mean={:.3} ms median={:.3} ms | memory-warm n={} mean={:.3} ms median={:.3} ms | coalesced n={}",
        cold.len(),
        mean(&cold),
        median(&cold),
        disk.len(),
        mean(&disk),
        median(&disk),
        warm.len(),
        mean(&warm),
        median(&warm),
        coalesced.len(),
    );
    println!(
        "  store: {} loads, {} hits, {} coalesced, {} evictions ({} B evicted)",
        store.loads, store.hits, store.coalesced, store.evictions, store.bytes_evicted
    );
    if snapshot_dir.is_some() {
        println!(
            "  disk tier: {} hits, {} misses, {} invalidations, {} writes ({} B written, {} failures)",
            store.disk_hits,
            store.disk_misses,
            store.disk_invalidations,
            store.disk_writes,
            store.disk_bytes_written,
            store.disk_write_failures,
        );
    }
    println!(
        "  residency: peak {} B of {} B budget ({} apps resident at exit), hit rate {:.1}%",
        store.peak_resident_bytes,
        budget_bytes,
        store.resident_apps,
        100.0 * store.hit_rate(),
    );
    println!(
        "  queue: peak in-flight {} ({} errors)",
        stats.peak_in_flight, errors
    );

    if let Some(path) = json_path_from_args() {
        let shard_rps: Vec<String> = shard_counts
            .iter()
            .map(|n| {
                backdroid_bench::json::num(if wall_s > 0.0 {
                    *n as f64 / wall_s
                } else {
                    0.0
                })
            })
            .collect();
        let obj = JsonObject::new()
            .int("apps", bench.count as u64)
            .int("requests", samples.len() as u64)
            .int("seed", seed)
            .str("backend", backend.name())
            .int("workers", workers as u64)
            .int("shards", shards as u64)
            .int("intra_threads", intra_threads as u64)
            .int("budget_bytes", budget_bytes)
            .int("cold", cold.len() as u64)
            .int("disk", disk.len() as u64)
            .int("warm", warm.len() as u64)
            .int("coalesced", coalesced.len() as u64)
            .int("errors", errors as u64)
            .int("loads", store.loads)
            .int("hits", store.hits)
            .int("evictions", store.evictions)
            .int("bytes_evicted", store.bytes_evicted)
            .int("disk_hits", store.disk_hits)
            .int("disk_misses", store.disk_misses)
            .int("disk_invalidations", store.disk_invalidations)
            .int("disk_bytes_written", store.disk_bytes_written)
            .int("peak_resident_bytes", store.peak_resident_bytes)
            .int("peak_in_flight", stats.peak_in_flight)
            .raw(
                "shard_requests",
                array(shard_counts.iter().map(|n| n.to_string())),
            )
            .raw("wall_shard_requests_per_sec", array(shard_rps))
            .float("wall_requests_per_sec", rps)
            .float("wall_p50_ms", p50)
            .float("wall_p99_ms", p99)
            .float("wall_cold_mean_ms", mean(&cold))
            .float("wall_cold_median_ms", median(&cold))
            .float("wall_disk_mean_ms", mean(&disk))
            .float("wall_disk_median_ms", median(&disk))
            .float("wall_warm_mean_ms", mean(&warm))
            .float("wall_warm_median_ms", median(&warm))
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }

    // Self-checks: the two claims every scaling PR on top of the store
    // will lean on. A caching store (budget > 0) must actually produce
    // warm hits on this workload, and cold loads always exist — an
    // empty bucket is itself a failure, never a silently skipped check.
    let mut failed = false;
    if store.peak_resident_bytes > budget_bytes {
        eprintln!(
            "FAIL: store exceeded its budget ({} B > {} B)",
            store.peak_resident_bytes, budget_bytes
        );
        failed = true;
    }
    // Baseline for the residency comparison: cold parses when the run
    // had any, else disk-warm restores (a re-run against a populated
    // --snapshot-dir legitimately never cold-parses).
    let (tier_base, tier_label) = if !cold.is_empty() {
        (&cold, "cold")
    } else {
        (&disk, "disk")
    };
    let warm_cold_checked = if shards > 0 {
        // Sharded latencies are sojourn times (queue wait included), so
        // tier means compare backlog, not service cost — not a claim to
        // enforce. The unsharded runs (and snapshot_bench) own it.
        eprintln!(
            "note: sharded run — warm<cold comparison skipped (latencies include queue wait)"
        );
        false
    } else if budget_mb == 0 {
        eprintln!("note: zero-budget store — warm<cold comparison not applicable");
        false
    } else if tier_base.is_empty() || warm.is_empty() {
        eprintln!(
            "FAIL: warm<{tier_label} comparison is vacuous (cold n={}, disk n={}, warm n={}) — \
             the trace/budget cannot demonstrate residency",
            cold.len(),
            disk.len(),
            warm.len()
        );
        failed = true;
        false
    } else if mean(&warm) >= mean(tier_base) {
        eprintln!(
            "FAIL: warm-hit latency ({:.3} ms) is not below {tier_label}-load latency ({:.3} ms)",
            mean(&warm),
            mean(tier_base)
        );
        failed = true;
        false
    } else {
        true
    };
    // When both tiers below memory were exercised, the disk tier must
    // actually amortize preprocessing: a restore beating a full parse is
    // the snapshot layer's entire reason to exist.
    if shards == 0 && !cold.is_empty() && !disk.is_empty() && mean(&disk) >= mean(&cold) {
        eprintln!(
            "FAIL: disk-warm latency ({:.3} ms) is not below cold-parse latency ({:.3} ms)",
            mean(&disk),
            mean(&cold)
        );
        failed = true;
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} request(s) errored");
        failed = true;
    }
    if shards > 0 {
        let total: u64 = shard_counts.iter().sum();
        if total != trace.len() as u64 {
            eprintln!(
                "FAIL: sharded run answered {total} of {} requests",
                trace.len()
            );
            failed = true;
        }
    }

    // Committed machine-independent envelope (--baseline): ratios and
    // counts only — the same file holds on any machine.
    let mut metrics: Vec<(&str, f64)> = vec![
        ("errors", errors as f64),
        ("hit_rate", store.hit_rate()),
        (
            "budget_utilization",
            if budget_bytes > 0 {
                store.peak_resident_bytes as f64 / budget_bytes as f64
            } else {
                0.0
            },
        ),
    ];
    if shards == 0 && !cold.is_empty() && mean(&cold) > 0.0 && !warm.is_empty() {
        metrics.push(("warm_cold_ratio", mean(&warm) / mean(&cold)));
    }
    if !Baseline::enforce_from_args("service_throughput", &metrics) {
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    if warm_cold_checked {
        eprintln!(
            "OK: budget respected ({} <= {}), warm {:.3} ms < {tier_label} {:.2} ms",
            store.peak_resident_bytes,
            budget_bytes,
            mean(&warm),
            mean(tier_base)
        );
    } else {
        eprintln!(
            "OK: budget respected ({} <= {})",
            store.peak_resident_bytes, budget_bytes
        );
    }
}
