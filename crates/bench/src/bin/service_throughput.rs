//! Throughput benchmark for the serving layer: drives a seeded
//! Zipf-skewed workload (see `backdroid_appgen::workload`) through a
//! [`Service`] on a worker pool — or, with `--shards N`, through a
//! [`ShardPool`] router — and reports requests/sec, p50/p99 latency,
//! cold-load vs warm-hit latency, and store behaviour (loads, coalesced
//! waits, evictions, peak residency) under a configurable byte budget.
//!
//! Unlike the paper-figure bins, this one's stdout **is** about
//! wall-clock — it measures a live serving system, and with
//! `--workers > 1` the hit/miss/eviction counts depend on scheduling
//! too, so CI uploads its artifact without diffing it. The bin
//! self-checks the serving layer's two load-bearing claims and exits
//! non-zero if either fails:
//!
//! * the resident store never exceeds its byte budget
//!   (`peak_resident_bytes <= budget`; summed across shards when
//!   sharded);
//! * the mean warm-hit latency is below the mean cold-load latency
//!   (residency actually amortizes preprocessing). An empty warm
//!   bucket fails the check rather than skipping it — a workload that
//!   never hits the store cannot demonstrate residency (only a
//!   zero-budget store, which by design has no warm hits, skips the
//!   comparison).
//!
//! Latency tiers are read from the service's metrics registry: the
//! `request_{miss,disk,hit,coalesced}_us` histograms record each
//! analysis inside [`Service::run`], so the classification is exact in
//! both modes (no first-touch guessing) and measures service time only
//! — queue wait never pollutes the tiers, which is what lets the
//! warm < cold residency check hold even for sharded runs, whose
//! end-to-end latencies are sojourn times. Sharded runs additionally
//! report the pool's `pool_queue_wait_us` histogram and band its p99
//! bucket index in the committed baseline.
//!
//! Flags: `--count N` / `--code-permille M` (benchset), `--requests N`,
//! `--workers N` (per shard when sharded), `--shards N`,
//! `--budget-mb N` (per shard), `--backend linear|indexed`,
//! `--intra-threads N`, `--seed S`, `--smoke` (small CI preset),
//! `--json PATH`, `--baseline PATH` (check machine-independent ratios
//! against a committed `BENCH_*.json` envelope, see
//! `backdroid_bench::baseline`), and `--snapshot-dir DIR` to enable the
//! store's disk tier — latencies are then reported in three tiers
//! (cold-parse vs disk-warm vs memory-warm), and a second run against
//! the populated directory serves its first-touch loads from snapshots.
//! When both cold and disk tiers appear in one run, the bin
//! additionally self-checks disk-warm < cold-parse.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig, WorkloadOp};
use backdroid_bench::harness::arg_value;
use backdroid_bench::json::{array, JsonObject};
use backdroid_bench::{
    backend_from_args, intra_threads_from_args, json_path_from_args, percentile, Baseline,
};
use backdroid_obs::RegistrySnapshot;
use backdroid_service::proto::workload_request_line;
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => v.parse::<T>().unwrap_or_else(|_| {
            eprintln!("error: {flag} {v:?} is invalid");
            std::process::exit(2)
        }),
        None => default,
    }
}

/// One serving tier decoded from a registry histogram: how many
/// analyses landed in it, their exact mean (histograms carry the exact
/// sum and count), and the p99 bucket upper bound.
struct Tier {
    n: u64,
    mean_ms: f64,
    p99_ms: f64,
}

fn tier(snap: &RegistrySnapshot, name: &str) -> Tier {
    match snap.histogram(name) {
        Some(h) if h.count > 0 => Tier {
            n: h.count,
            mean_ms: h.mean() / 1_000.0,
            p99_ms: h.quantile_upper(0.99) as f64 / 1_000.0,
        },
        _ => Tier {
            n: 0,
            mean_ms: 0.0,
            p99_ms: 0.0,
        },
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (def_count, def_permille, def_requests, def_budget_mb) = if smoke {
        (8, 40, 60, 4)
    } else {
        (24, 80, 200, 64)
    };
    let bench = BenchsetConfig::try_sized(
        parsed_arg("--count", def_count),
        parsed_arg::<u32>("--code-permille", def_permille) as f64 / 1000.0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    });
    let requests = parsed_arg("--requests", def_requests);
    let workers = parsed_arg::<usize>("--workers", 4).max(1);
    let shards = parsed_arg::<usize>("--shards", 0);
    let budget_mb = parsed_arg::<u64>("--budget-mb", def_budget_mb);
    let seed = parsed_arg("--seed", 7u64);
    let backend = backend_from_args();
    let intra_threads = intra_threads_from_args();

    let wl_cfg = WorkloadConfig {
        apps: bench.count,
        requests,
        seed,
        ..WorkloadConfig::default()
    };
    let snapshot_dir = arg_value("--snapshot-dir").map(std::path::PathBuf::from);
    let trace = workload::generate(wl_cfg);
    let service_cfg = ServiceConfig {
        budget_bytes: budget_mb * 1024 * 1024,
        backend,
        intra_threads,
        snapshot_dir: snapshot_dir.clone(),
        ..ServiceConfig::default()
    };

    // Drive the trace and record per-request wall latency (for req/s
    // and the end-to-end p50/p99); serving tiers come from the
    // registry afterwards. Sharded runs also attribute each request to
    // its routed shard.
    let started = Instant::now();
    let (samples, stats, shard_counts, errors, snap) = if shards > 0 {
        let pool = ShardPool::new(
            ShardPoolConfig {
                shards,
                workers_per_shard: workers,
                queue_capacity: 64,
                trace_capacity: 0,
            },
            {
                let service_cfg = service_cfg.clone();
                move |_| Service::over_benchset(bench, service_cfg.clone())
            },
        );
        // (shard, start) per seq, pushed before its submit so the
        // responder always finds the entry.
        let submitted: Arc<Mutex<Vec<(usize, Instant)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(trace.len())));
        let results: Arc<Mutex<Vec<(usize, f64, bool)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(trace.len())));
        let responder: Responder = {
            let submitted = Arc::clone(&submitted);
            let results = Arc::clone(&results);
            Arc::new(move |seq, response| {
                let (shard, t0) = submitted.lock().expect("submitted poisoned")[seq as usize];
                let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                let err = match &response {
                    Some(line) => line.contains("\"error\""),
                    None => true,
                };
                results
                    .lock()
                    .expect("results poisoned")
                    .push((shard, ms, err));
            })
        };
        for (seq, req) in trace.iter().enumerate() {
            let shard = pool.route(&req.app.to_string());
            submitted
                .lock()
                .expect("submitted poisoned")
                .push((shard, Instant::now()));
            pool.submit_line(
                seq as u64,
                &workload_request_line(seq as u64, req),
                &responder,
            );
        }
        pool.drain();
        let stats = pool.stats();
        // Aggregate registry (live shards + retired + pool counters)
        // must be captured before shutdown tears the shards down.
        let snap = pool.metrics();
        pool.shutdown();
        let results = std::mem::take(&mut *results.lock().expect("results poisoned"));
        let mut shard_counts = vec![0u64; shards];
        let mut errors = 0u64;
        for &(shard, _, err) in &results {
            shard_counts[shard] += 1;
            errors += err as u64;
        }
        let samples: Vec<f64> = results.into_iter().map(|(_, ms, _)| ms).collect();
        (samples, stats, shard_counts, errors, snap)
    } else {
        let service = Service::over_benchset(bench, service_cfg);
        let next = AtomicUsize::new(0);
        let samples: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(trace.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trace.len() {
                            break;
                        }
                        let req = &trace[i];
                        let app = req.app.to_string();
                        let t0 = Instant::now();
                        match &req.op {
                            WorkloadOp::Analyze => {
                                let _ = service.analyze_app(&app);
                            }
                            WorkloadOp::Query(detectors) => {
                                let _ = service.query_detectors(&app, detectors);
                            }
                            WorkloadOp::Batch(extra) => {
                                let ids: Vec<String> = std::iter::once(req.app)
                                    .chain(extra.iter().copied())
                                    .map(|a| a.to_string())
                                    .collect();
                                let _ = service.analyze_batch(&ids);
                            }
                        }
                        local.push(t0.elapsed().as_secs_f64() * 1_000.0);
                    }
                    samples.lock().expect("samples poisoned").extend(local);
                });
            }
        });
        let stats = service.stats();
        let snap = service.metrics().snapshot();
        let errors = snap.value("service_errors_total");
        let samples = samples.into_inner().expect("samples poisoned");
        (samples, stats, Vec::new(), errors, snap)
    };
    let wall_s = started.elapsed().as_secs_f64();

    // Serving tiers, decoded from the per-analysis latency histograms
    // the service records as it runs. Exact counts and exact means;
    // p99 is the log2 bucket upper bound.
    let cold = tier(&snap, "request_miss_us");
    let disk = tier(&snap, "request_disk_us");
    let warm = tier(&snap, "request_hit_us");
    let coalesced = tier(&snap, "request_coalesced_us");
    let queue_wait = snap.histogram("pool_queue_wait_us");
    // Banded in BENCH_service_throughput.json: the p99 *bucket index*
    // of the queue-wait histogram, which grows with log2 of the wait —
    // machine-tolerant where raw microseconds are not. Unsharded runs
    // have no pool, so the metric is reported as 0.
    let queue_wait_p99_buckets = queue_wait
        .map(|h| h.quantile_bucket(0.99) as f64)
        .unwrap_or(0.0);
    let p50 = percentile(&samples, 50.0);
    let p99 = percentile(&samples, 99.0);
    let store = stats.store;
    // The budget the peak is judged against: per shard in sharded mode
    // (aggregated peaks are summed the same way).
    let budget_bytes = budget_mb * 1024 * 1024 * shards.max(1) as u64;

    let rps = if wall_s > 0.0 {
        samples.len() as f64 / wall_s
    } else {
        0.0
    };

    println!("service_throughput: resident multi-app serving layer");
    println!(
        "  corpus: {} apps (code {:.0}‰), {} requests, seed {seed}",
        bench.count,
        bench.code_scale * 1000.0,
        trace.len()
    );
    println!(
        "  config: backend {}, {} workers, intra-threads {intra_threads}, budget {budget_mb} MiB{}",
        backend.name(),
        workers,
        if shards > 0 {
            format!(" per shard, {shards} shards")
        } else {
            String::new()
        },
    );
    println!(
        "  throughput: {rps:.1} req/s ({:.1} ms wall for {} requests), p50 {p50:.3} ms, p99 {p99:.2} ms",
        wall_s * 1_000.0,
        samples.len()
    );
    for (i, n) in shard_counts.iter().enumerate() {
        let shard_rps = if wall_s > 0.0 {
            *n as f64 / wall_s
        } else {
            0.0
        };
        println!("  shard {i}: {n} requests, {shard_rps:.1} req/s");
    }
    println!(
        "  latency tiers (registry histograms, per analysis): cold-parse n={} mean={:.2} ms p99<={:.2} ms | disk-warm n={} mean={:.3} ms p99<={:.3} ms | memory-warm n={} mean={:.3} ms p99<={:.3} ms | coalesced n={}",
        cold.n,
        cold.mean_ms,
        cold.p99_ms,
        disk.n,
        disk.mean_ms,
        disk.p99_ms,
        warm.n,
        warm.mean_ms,
        warm.p99_ms,
        coalesced.n,
    );
    println!(
        "  store: {} loads, {} hits, {} coalesced, {} evictions ({} B evicted)",
        store.loads, store.hits, store.coalesced, store.evictions, store.bytes_evicted
    );
    if snapshot_dir.is_some() {
        println!(
            "  disk tier: {} hits, {} misses, {} invalidations, {} writes ({} B written, {} failures)",
            store.disk_hits,
            store.disk_misses,
            store.disk_invalidations,
            store.disk_writes,
            store.disk_bytes_written,
            store.disk_write_failures,
        );
    }
    println!(
        "  residency: peak {} B of {} B budget ({} apps resident at exit), hit rate {:.1}%",
        store.peak_resident_bytes,
        budget_bytes,
        store.resident_apps,
        100.0 * store.hit_rate(),
    );
    match queue_wait {
        Some(h) if h.count > 0 => println!(
            "  queue: peak in-flight {} ({} errors), wait n={} mean={:.1} us p99<={} us (bucket {})",
            stats.peak_in_flight,
            errors,
            h.count,
            h.mean(),
            h.quantile_upper(0.99),
            h.quantile_bucket(0.99),
        ),
        _ => println!(
            "  queue: peak in-flight {} ({} errors)",
            stats.peak_in_flight, errors
        ),
    }

    if let Some(path) = json_path_from_args() {
        let shard_rps: Vec<String> = shard_counts
            .iter()
            .map(|n| {
                backdroid_bench::json::num(if wall_s > 0.0 {
                    *n as f64 / wall_s
                } else {
                    0.0
                })
            })
            .collect();
        let obj = JsonObject::new()
            .int("apps", bench.count as u64)
            .int("requests", samples.len() as u64)
            .int("seed", seed)
            .str("backend", backend.name())
            .int("workers", workers as u64)
            .int("shards", shards as u64)
            .int("intra_threads", intra_threads as u64)
            .int("budget_bytes", budget_bytes)
            .int("cold", cold.n)
            .int("disk", disk.n)
            .int("warm", warm.n)
            .int("coalesced", coalesced.n)
            .int("errors", errors)
            .int("loads", store.loads)
            .int("hits", store.hits)
            .int("evictions", store.evictions)
            .int("bytes_evicted", store.bytes_evicted)
            .int("disk_hits", store.disk_hits)
            .int("disk_misses", store.disk_misses)
            .int("disk_invalidations", store.disk_invalidations)
            .int("disk_bytes_written", store.disk_bytes_written)
            .int("peak_resident_bytes", store.peak_resident_bytes)
            .int("peak_in_flight", stats.peak_in_flight)
            .float("queue_wait_p99_buckets", queue_wait_p99_buckets)
            .raw(
                "shard_requests",
                array(shard_counts.iter().map(|n| n.to_string())),
            )
            .raw("wall_shard_requests_per_sec", array(shard_rps))
            .float("wall_requests_per_sec", rps)
            .float("wall_p50_ms", p50)
            .float("wall_p99_ms", p99)
            .float("wall_cold_mean_ms", cold.mean_ms)
            .float("wall_cold_p99_ms", cold.p99_ms)
            .float("wall_disk_mean_ms", disk.mean_ms)
            .float("wall_disk_p99_ms", disk.p99_ms)
            .float("wall_warm_mean_ms", warm.mean_ms)
            .float("wall_warm_p99_ms", warm.p99_ms)
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }

    // Self-checks: the two claims every scaling PR on top of the store
    // will lean on. A caching store (budget > 0) must actually produce
    // warm hits on this workload, and cold loads always exist — an
    // empty bucket is itself a failure, never a silently skipped check.
    let mut failed = false;
    if store.peak_resident_bytes > budget_bytes {
        eprintln!(
            "FAIL: store exceeded its budget ({} B > {} B)",
            store.peak_resident_bytes, budget_bytes
        );
        failed = true;
    }
    // Baseline for the residency comparison: cold parses when the run
    // had any, else disk-warm restores (a re-run against a populated
    // --snapshot-dir legitimately never cold-parses).
    let (tier_base, tier_label) = if cold.n > 0 {
        (&cold, "cold")
    } else {
        (&disk, "disk")
    };
    let warm_cold_checked = if budget_mb == 0 {
        eprintln!("note: zero-budget store — warm<cold comparison not applicable");
        false
    } else if tier_base.n == 0 || warm.n == 0 {
        eprintln!(
            "FAIL: warm<{tier_label} comparison is vacuous (cold n={}, disk n={}, warm n={}) — \
             the trace/budget cannot demonstrate residency",
            cold.n, disk.n, warm.n
        );
        failed = true;
        false
    } else if warm.mean_ms >= tier_base.mean_ms {
        eprintln!(
            "FAIL: warm-hit latency ({:.3} ms) is not below {tier_label}-load latency ({:.3} ms)",
            warm.mean_ms, tier_base.mean_ms
        );
        failed = true;
        false
    } else {
        true
    };
    // When both tiers below memory were exercised, the disk tier must
    // actually amortize preprocessing: a restore beating a full parse is
    // the snapshot layer's entire reason to exist.
    if cold.n > 0 && disk.n > 0 && disk.mean_ms >= cold.mean_ms {
        eprintln!(
            "FAIL: disk-warm latency ({:.3} ms) is not below cold-parse latency ({:.3} ms)",
            disk.mean_ms, cold.mean_ms
        );
        failed = true;
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} request(s) errored");
        failed = true;
    }
    if shards > 0 {
        let total: u64 = shard_counts.iter().sum();
        if total != trace.len() as u64 {
            eprintln!(
                "FAIL: sharded run answered {total} of {} requests",
                trace.len()
            );
            failed = true;
        }
    }

    // Committed machine-independent envelope (--baseline): ratios and
    // counts only — the same file holds on any machine.
    // queue_wait_p99_buckets is always reported (0 when unsharded) so
    // the band applies to both CI configs of this bin.
    let mut metrics: Vec<(&str, f64)> = vec![
        ("errors", errors as f64),
        ("hit_rate", store.hit_rate()),
        (
            "budget_utilization",
            if budget_bytes > 0 {
                store.peak_resident_bytes as f64 / budget_bytes as f64
            } else {
                0.0
            },
        ),
        ("queue_wait_p99_buckets", queue_wait_p99_buckets),
    ];
    if cold.n > 0 && cold.mean_ms > 0.0 && warm.n > 0 {
        metrics.push(("warm_cold_ratio", warm.mean_ms / cold.mean_ms));
    }
    if !Baseline::enforce_from_args("service_throughput", &metrics) {
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    if warm_cold_checked {
        eprintln!(
            "OK: budget respected ({} <= {}), warm {:.3} ms < {tier_label} {:.2} ms",
            store.peak_resident_bytes, budget_bytes, warm.mean_ms, tier_base.mean_ms
        );
    } else {
        eprintln!(
            "OK: budget respected ({} <= {})",
            store.peak_resident_bytes, budget_bytes
        );
    }
}
