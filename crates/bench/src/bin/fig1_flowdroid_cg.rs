//! Regenerates **Fig 1**: FlowDroid's (geomPTA) whole-app call-graph
//! generation time over the 144 modern apps, bucketed
//! 1–5m / 5–10m / 10–20m / 20–30m / 30–100m / timeout.
//!
//! Paper reference distribution: 31 / 44 / 20 / 10 / 5 / 34 (24% timeout),
//! median 9.76 min under a 5-hour budget.

use backdroid_bench::harness::{
    benchset_apps, bucket_label, median, print_histogram, scale_from_args,
};
use backdroid_wholeapp::flowdroid::{generate_callgraph, CgOutcome};
use backdroid_wholeapp::{paper_minutes, WORK_UNITS_PER_MINUTE};
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    let apps = benchset_apps(scale);
    let mut total = 0usize;
    // FlowDroid got a 5-hour (300-minute) budget in §II-C; reduced runs
    // scale it with the code volume.
    let budget = ((300.0 * WORK_UNITS_PER_MINUTE) * scale.config().code_scale) as u64;

    let mut buckets: BTreeMap<String, usize> = BTreeMap::new();
    let order = [
        "1m-5m", "5m-10m", "10m-20m", "20m-30m", "30m-100m", "Timeout",
    ];
    for o in order {
        buckets.insert(o.to_string(), 0);
    }
    let mut minutes_done = Vec::new();
    let mut timeouts = 0usize;

    for ba in apps {
        total += 1;
        let out = generate_callgraph(&ba.app.program, &ba.app.manifest, Some(budget));
        match out {
            CgOutcome::Done(stats) => {
                let m = paper_minutes(stats.work_units).max(1.01);
                minutes_done.push(m);
                let label = bucket_label(&[5.0, 10.0, 20.0, 30.0, 100.0], m.max(1.0));
                let label = if label == "0m-5m" {
                    "1m-5m".into()
                } else {
                    label
                };
                *buckets.entry(label).or_insert(0) += 1;
            }
            CgOutcome::TimedOut { .. } => {
                timeouts += 1;
                *buckets.get_mut("Timeout").expect("present") += 1;
            }
        }
    }

    println!(
        "Fig 1: FlowDroid geomPTA call-graph generation over {} apps (budget 300 scaled min)",
        total
    );
    let rows: Vec<(String, usize)> = order
        .iter()
        .map(|o| (o.to_string(), buckets.get(*o).copied().unwrap_or(0)))
        .collect();
    print_histogram("  time buckets:", &rows);
    println!(
        "  timeouts: {timeouts}/{} ({:.0}%)  [paper: 34/144 = 24%]",
        total,
        100.0 * timeouts as f64 / total as f64
    );
    println!(
        "  median CG time (finished apps): {:.2} scaled min  [paper: 9.76 min]",
        median(&minutes_done)
    );
}
