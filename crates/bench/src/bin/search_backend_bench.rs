//! Head-to-head over the benchmark corpus: the `LinearScan` oracle vs
//! the `Indexed` posting-list backend.
//!
//! For every generated app this bin runs the full BackDroid pipeline
//! once per backend and then
//!
//! 1. **verifies exact equivalence** — identical vulnerable-sink counts,
//!    sink sites, cache rates, and linear-model work (any divergence
//!    aborts the run, making this a corpus-scale oracle check on top of
//!    the unit/property tests), and
//! 2. **reports both cost models** — the paper-calibrated grep minutes
//!    (`lines_scanned`) next to the indexed minutes
//!    (`postings_touched`), per app and in aggregate.
//!
//! Runs on the parallel corpus driver; stdout and `--json` output are
//! byte-identical for any `--threads` value.
//!
//! A third leg micro-benchmarks the **symbol-interned probe path**: the
//! same token set is probed through the intern table (hash the needle's
//! parts, compare one arena slice) and through a string-keyed map fed
//! with `format!`-ed keys (the pre-interning hot path). Both sides must
//! agree probe-for-probe; the wall-clock speedup goes to stderr and the
//! corpus-wide interned-symbol count is reported and banded.

use backdroid_appgen::benchset::bench_app;
use backdroid_bench::baseline::Baseline;
use backdroid_bench::harness::{
    intra_threads_from_args, json_path_from_args, median, par_map, run_backdroid_with,
    scale_from_args, threads_from_args,
};
use backdroid_bench::json::{array, JsonObject};
use backdroid_core::BackendChoice;
use backdroid_dex::{dump_image, DexImage};
use backdroid_search::{BytecodeText, SymbolTable};
use std::collections::HashMap;
use std::time::Instant;

/// Probes every index token of the corpus through the intern table and
/// through a string-keyed map with `format!`-ed keys, verifying
/// hit-for-hit agreement. Returns `(symbols_total, interned_speedup)`;
/// the speedup is wall-clock, so callers report it on stderr only.
fn interned_probe_microbench(texts: &[BytecodeText]) -> (u64, f64) {
    const ROUNDS: usize = 40;
    let mut symbols_total = 0u64;
    let mut interned_ns = 0u128;
    let mut string_ns = 0u128;
    for text in texts {
        let index = text.search_index();
        symbols_total += index.token_count() as u64;
        // Both probe representations over the same postings. The tokens
        // split into the (2-byte namespace prefix, payload) parts the
        // query path presents.
        let mut table = SymbolTable::new();
        let mut string_map: HashMap<String, u32> = HashMap::new();
        let probes: Vec<(&str, &str, u32)> = index
            .iter_postings()
            .map(|(tok, lines)| {
                table.intern(&[tok]);
                string_map.insert(tok.to_string(), lines.len() as u32);
                (&tok[..2], &tok[2..], lines.len() as u32)
            })
            .collect();

        let t = Instant::now();
        let mut interned_hits = 0u64;
        for _ in 0..ROUNDS {
            for &(prefix, payload, _) in &probes {
                if table.lookup(&[prefix, payload]).is_some() {
                    interned_hits += 1;
                }
            }
        }
        interned_ns += t.elapsed().as_nanos();

        let t = Instant::now();
        let mut string_hits = 0u64;
        for _ in 0..ROUNDS {
            for &(prefix, payload, expect) in &probes {
                // The pre-interning hot path: format a fresh key per
                // probe, then hash + compare it against the map's keys.
                if string_map.get(&format!("{prefix}{payload}")) == Some(&expect) {
                    string_hits += 1;
                }
            }
        }
        string_ns += t.elapsed().as_nanos();

        assert_eq!(
            interned_hits, string_hits,
            "interned and string-keyed probes disagreed"
        );
        assert_eq!(interned_hits as usize, probes.len() * ROUNDS);
    }
    let speedup = if interned_ns > 0 {
        string_ns as f64 / interned_ns as f64
    } else {
        0.0
    };
    (symbols_total, speedup)
}

fn main() {
    let scale = scale_from_args();
    let threads = threads_from_args();
    let intra_threads = intra_threads_from_args();
    let cfg = scale.config();

    let rows = par_map(cfg.count, threads, |i| {
        let ba = bench_app(i, cfg);
        let lin = run_backdroid_with(&ba.app, BackendChoice::LinearScan, intra_threads);
        let idx = run_backdroid_with(&ba.app, BackendChoice::Indexed, intra_threads);
        // Intra-app determinism oracle: with a parallel scheduler width,
        // re-run each backend sequentially and demand identical
        // deterministic fields (wall-clock is the only thing allowed to
        // move); the sequential wall-clocks feed the speedup report.
        let seq_walls = if intra_threads > 1 {
            let assert_same = |seq: &backdroid_bench::BackdroidRun,
                               par: &backdroid_bench::BackdroidRun| {
                assert_eq!(
                    seq.vulnerable, par.vulnerable,
                    "{}: intra divergence",
                    seq.app
                );
                assert_eq!(seq.sinks_analyzed, par.sinks_analyzed, "{}", seq.app);
                assert_eq!(seq.lines_scanned, par.lines_scanned, "{}", seq.app);
                assert_eq!(seq.postings_touched, par.postings_touched, "{}", seq.app);
                assert_eq!(seq.cache_rate, par.cache_rate, "{}", seq.app);
                assert_eq!(seq.sink_cache_rate, par.sink_cache_rate, "{}", seq.app);
            };
            let seq_lin = run_backdroid_with(&ba.app, BackendChoice::LinearScan, 1);
            assert_same(&seq_lin, &lin);
            let seq_idx = run_backdroid_with(&ba.app, BackendChoice::Indexed, 1);
            assert_same(&seq_idx, &idx);
            Some((seq_lin.wall_ms, seq_idx.wall_ms))
        } else {
            None
        };
        // The oracle check: the indexed backend must be indistinguishable
        // in everything but the work measure.
        assert_eq!(
            lin.vulnerable, idx.vulnerable,
            "{}: backend verdict divergence",
            lin.app
        );
        assert_eq!(
            lin.sinks_analyzed, idx.sinks_analyzed,
            "{}: sink-site divergence",
            lin.app
        );
        assert_eq!(
            lin.cache_rate, idx.cache_rate,
            "{}: command-stream divergence",
            lin.app
        );
        assert_eq!(
            lin.lines_scanned, idx.lines_scanned,
            "{}: linear-model accounting divergence",
            lin.app
        );
        (lin, idx, seq_walls)
    });

    println!(
        "Search backend comparison over {} apps (oracle check: all identical)\n",
        rows.len()
    );
    println!(
        "{:<22} {:>8} {:>14} {:>16} {:>9}",
        "app", "sinks", "grep lines", "postings touched", "reduction"
    );
    let mut lin_minutes = Vec::new();
    let mut idx_minutes = Vec::new();
    let mut lines_total = 0u64;
    let mut postings_total = 0u64;
    let mut wall_intra = (0.0f64, 0.0f64); // (linear, indexed)
    let mut wall_seq = (0.0f64, 0.0f64);
    for (lin, idx, seq) in &rows {
        let reduction =
            100.0 * (1.0 - idx.postings_touched as f64 / lin.lines_scanned.max(1) as f64);
        println!(
            "{:<22} {:>8} {:>14} {:>16} {:>8.1}%",
            lin.app, lin.sinks_analyzed, lin.lines_scanned, idx.postings_touched, reduction
        );
        lin_minutes.push(lin.minutes);
        idx_minutes.push(idx.minutes_indexed);
        lines_total += lin.lines_scanned;
        postings_total += idx.postings_touched;
        wall_intra.0 += lin.wall_ms;
        wall_intra.1 += idx.wall_ms;
        if let Some((sl, si)) = seq {
            wall_seq.0 += sl;
            wall_seq.1 += si;
        }
    }

    // Symbol-interned probe path: rebuild the corpus texts once and
    // drive every index token through both key representations.
    let texts: Vec<BytecodeText> = (0..cfg.count)
        .map(|i| {
            BytecodeText::index(&dump_image(&DexImage::encode(
                &bench_app(i, cfg).app.program,
            )))
        })
        .collect();
    let (symbols_total, probe_speedup) = interned_probe_microbench(&texts);

    let lin_med = median(&lin_minutes);
    let idx_med = median(&idx_minutes);
    println!("\nAggregate:");
    println!("  linear grep lines:        {lines_total}");
    println!("  indexed postings touched: {postings_total}");
    println!("  interned symbols:         {symbols_total}");
    println!(
        "  corpus reduction:         {:.1}% of linear scan work avoided",
        100.0 * (1.0 - postings_total as f64 / lines_total.max(1) as f64)
    );
    println!(
        "  median scaled minutes:    {lin_med:.3} (linear model) vs {idx_med:.3} (indexed model)"
    );
    if idx_med > 0.0 {
        println!("  median model speedup:     {:.1}x", lin_med / idx_med);
    }
    // Wall-clock to stderr: the interned probe vs the format!-keyed map.
    eprintln!(
        "interned-probe speedup: {probe_speedup:.2}x over string-keyed probes \
         ({symbols_total} symbols, hit-for-hit identical)"
    );
    // Wall-clock lines go to stderr so stdout stays deterministic. The
    // linear backend is where intra-app parallelism pays: its per-site
    // grep work dominates, while the indexed backend is usually bound by
    // the (serial) preprocessing pass.
    if intra_threads > 1 {
        for (name, seq, par) in [
            ("linear", wall_seq.0, wall_intra.0),
            ("indexed", wall_seq.1, wall_intra.1),
        ] {
            if par > 0.0 {
                eprintln!(
                    "wall-clock ({name} backend): {seq:.0} ms sequential vs {par:.0} ms at \
                     --intra-threads {intra_threads} — {:.2}x speedup, reports byte-identical",
                    seq / par
                );
            }
        }
        if threads > 1 {
            eprintln!(
                "note: corpus driver ran {threads} apps concurrently; re-run with --threads 1 \
                 for an uncontended sequential-vs-parallel comparison"
            );
        }
    }

    if let Some(path) = json_path_from_args() {
        let apps = array(rows.iter().map(|(lin, idx, _)| {
            JsonObject::new()
                .str("app", &lin.app)
                .int("sinks_analyzed", lin.sinks_analyzed as u64)
                .int("vulnerable", lin.vulnerable as u64)
                .int("lines_scanned", lin.lines_scanned)
                .int("postings_touched", idx.postings_touched)
                .float("minutes_linear", lin.minutes)
                .float("minutes_indexed", idx.minutes_indexed)
                .build()
        }));
        let summary = JsonObject::new()
            .int("apps", rows.len() as u64)
            .int("lines_scanned_total", lines_total)
            .int("postings_touched_total", postings_total)
            .int("symbols_total", symbols_total)
            .float("median_minutes_linear", lin_med)
            .float("median_minutes_indexed", idx_med)
            .build();
        let doc = JsonObject::new()
            .raw("summary", summary)
            .raw("apps", apps)
            .build();
        std::fs::write(&path, doc).expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }

    // PR-7: the committed machine-independent envelope
    // (`BENCH_search_backend.json`, enforced when `--baseline` is
    // given). Counts, ratios, and model minutes only — the oracle
    // asserts above already pin exact backend equivalence, so the bands
    // track the *work* trajectory: how much linear scanning the index
    // avoids on the fixed corpus.
    let metrics = [
        ("apps", rows.len() as f64),
        ("lines_scanned_total", lines_total as f64),
        ("postings_touched_total", postings_total as f64),
        ("symbols_total", symbols_total as f64),
        (
            "postings_reduction",
            1.0 - postings_total as f64 / lines_total.max(1) as f64,
        ),
        (
            "model_speedup",
            if idx_med > 0.0 {
                lin_med / idx_med
            } else {
                0.0
            },
        ),
    ];
    if !Baseline::enforce_from_args("search_backend_bench", &metrics) {
        std::process::exit(1);
    }
}
