//! Head-to-head over the benchmark corpus: the `LinearScan` oracle vs
//! the `Indexed` posting-list backend.
//!
//! For every generated app this bin runs the full BackDroid pipeline
//! once per backend and then
//!
//! 1. **verifies exact equivalence** — identical vulnerable-sink counts,
//!    sink sites, cache rates, and linear-model work (any divergence
//!    aborts the run, making this a corpus-scale oracle check on top of
//!    the unit/property tests), and
//! 2. **reports both cost models** — the paper-calibrated grep minutes
//!    (`lines_scanned`) next to the indexed minutes
//!    (`postings_touched`), per app and in aggregate.
//!
//! Runs on the parallel corpus driver; stdout and `--json` output are
//! byte-identical for any `--threads` value.

use backdroid_appgen::benchset::bench_app;
use backdroid_bench::harness::{
    json_path_from_args, median, par_map, run_backdroid_with_backend, scale_from_args,
    threads_from_args,
};
use backdroid_bench::json::{array, JsonObject};
use backdroid_core::BackendChoice;

fn main() {
    let scale = scale_from_args();
    let threads = threads_from_args();
    let cfg = scale.config();

    let rows = par_map(cfg.count, threads, |i| {
        let ba = bench_app(i, cfg);
        let lin = run_backdroid_with_backend(&ba.app, BackendChoice::LinearScan);
        let idx = run_backdroid_with_backend(&ba.app, BackendChoice::Indexed);
        // The oracle check: the indexed backend must be indistinguishable
        // in everything but the work measure.
        assert_eq!(
            lin.vulnerable, idx.vulnerable,
            "{}: backend verdict divergence",
            lin.app
        );
        assert_eq!(
            lin.sinks_analyzed, idx.sinks_analyzed,
            "{}: sink-site divergence",
            lin.app
        );
        assert_eq!(
            lin.cache_rate, idx.cache_rate,
            "{}: command-stream divergence",
            lin.app
        );
        assert_eq!(
            lin.lines_scanned, idx.lines_scanned,
            "{}: linear-model accounting divergence",
            lin.app
        );
        (lin, idx)
    });

    println!(
        "Search backend comparison over {} apps (oracle check: all identical)\n",
        rows.len()
    );
    println!(
        "{:<22} {:>8} {:>14} {:>16} {:>9}",
        "app", "sinks", "grep lines", "postings touched", "reduction"
    );
    let mut lin_minutes = Vec::new();
    let mut idx_minutes = Vec::new();
    let mut lines_total = 0u64;
    let mut postings_total = 0u64;
    for (lin, idx) in &rows {
        let reduction =
            100.0 * (1.0 - idx.postings_touched as f64 / lin.lines_scanned.max(1) as f64);
        println!(
            "{:<22} {:>8} {:>14} {:>16} {:>8.1}%",
            lin.app, lin.sinks_analyzed, lin.lines_scanned, idx.postings_touched, reduction
        );
        lin_minutes.push(lin.minutes);
        idx_minutes.push(idx.minutes_indexed);
        lines_total += lin.lines_scanned;
        postings_total += idx.postings_touched;
    }

    let lin_med = median(&lin_minutes);
    let idx_med = median(&idx_minutes);
    println!("\nAggregate:");
    println!("  linear grep lines:        {lines_total}");
    println!("  indexed postings touched: {postings_total}");
    println!(
        "  corpus reduction:         {:.1}% of linear scan work avoided",
        100.0 * (1.0 - postings_total as f64 / lines_total.max(1) as f64)
    );
    println!(
        "  median scaled minutes:    {lin_med:.3} (linear model) vs {idx_med:.3} (indexed model)"
    );
    if idx_med > 0.0 {
        println!("  median model speedup:     {:.1}x", lin_med / idx_med);
    }

    if let Some(path) = json_path_from_args() {
        let apps = array(rows.iter().map(|(lin, idx)| {
            JsonObject::new()
                .str("app", &lin.app)
                .int("sinks_analyzed", lin.sinks_analyzed as u64)
                .int("vulnerable", lin.vulnerable as u64)
                .int("lines_scanned", lin.lines_scanned)
                .int("postings_touched", idx.postings_touched)
                .float("minutes_linear", lin.minutes)
                .float("minutes_indexed", idx.minutes_indexed)
                .build()
        }));
        let summary = JsonObject::new()
            .int("apps", rows.len() as u64)
            .int("lines_scanned_total", lines_total)
            .int("postings_touched_total", postings_total)
            .float("median_minutes_linear", lin_med)
            .float("median_minutes_indexed", idx_med)
            .build();
        let doc = JsonObject::new()
            .raw("summary", summary)
            .raw("apps", apps)
            .build();
        std::fs::write(&path, doc).expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }
}
