//! Regenerates the **§IV-F implementation-enhancement statistics**:
//!
//! * search-command cache rate per app — paper: average 23.39%,
//!   min 2.97%, max 88.95%;
//! * sink API call cache rate — paper: average 13.86%, max 68.18%;
//! * dead method-loop detection — paper: ≥1 loop in 60% of apps,
//!   `CrossBackward` the most common kind.

use backdroid_bench::harness::{benchset_apps, run_backdroid_on, scale_from_args};
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    let apps = benchset_apps(scale);
    let mut total = 0usize;

    let mut cache_rates = Vec::new();
    let mut sink_rates = Vec::new();
    let mut apps_with_loops = 0usize;
    let mut loop_kind_counts: BTreeMap<String, usize> = BTreeMap::new();

    for ba in apps {
        total += 1;
        let run = run_backdroid_on(&ba.app);
        cache_rates.push(run.cache_rate * 100.0);
        sink_rates.push(run.sink_cache_rate * 100.0);
        if run.loops_detected {
            apps_with_loops += 1;
            if let Some(k) = &run.top_loop {
                *loop_kind_counts.entry(k.clone()).or_insert(0) += 1;
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);

    println!(
        "§IV-F implementation-enhancement statistics over {} apps\n",
        total
    );
    println!("Search-command caching:");
    println!(
        "  cache rate: avg {:.2}%  min {:.2}%  max {:.2}%   [paper: avg 23.39, min 2.97, max 88.95]",
        avg(&cache_rates),
        min(&cache_rates),
        max(&cache_rates)
    );
    println!("\nSink API call caching:");
    println!(
        "  cached sink calls: avg {:.2}%  max {:.2}%   [paper: avg 13.86, max 68.18]",
        avg(&sink_rates),
        max(&sink_rates)
    );
    println!("\nMethod-loop detection:");
    println!(
        "  apps with >=1 dead loop detected: {}/{} ({:.0}%)   [paper: 60%]",
        apps_with_loops,
        total,
        100.0 * apps_with_loops as f64 / total as f64
    );
    println!("  most common loop kind per app:");
    for (k, c) in &loop_kind_counts {
        println!("    {k:<16} {c}");
    }
    println!("  [paper: CrossBackward is the most common kind]");
}
