//! Regenerates the **§IV-F implementation-enhancement statistics**:
//!
//! * search-command cache rate per app — paper: average 23.39%,
//!   min 2.97%, max 88.95%;
//! * sink API call cache rate — paper: average 13.86%, max 68.18%;
//! * dead method-loop detection — paper: ≥1 loop in 60% of apps,
//!   `CrossBackward` the most common kind.
//!
//! Apps run on the parallel corpus driver (`--threads N`) with the
//! selected search backend (`--backend linear|indexed`); stdout and the
//! `--json` artifact are byte-identical to a sequential run.

use backdroid_appgen::benchset::bench_app;
use backdroid_bench::harness::{
    backend_from_args, json_path_from_args, par_map, run_backdroid_with_backend, scale_from_args,
    threads_from_args,
};
use backdroid_bench::json::{array, JsonObject};
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    let backend = backend_from_args();
    let threads = threads_from_args();
    let cfg = scale.config();

    let runs = par_map(cfg.count, threads, |i| {
        let ba = bench_app(i, cfg);
        run_backdroid_with_backend(&ba.app, backend)
    });
    let total = runs.len();

    let mut cache_rates = Vec::new();
    let mut sink_rates = Vec::new();
    let mut apps_with_loops = 0usize;
    let mut loop_kind_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines_total = 0u64;
    let mut postings_total = 0u64;

    for run in &runs {
        cache_rates.push(run.cache_rate * 100.0);
        sink_rates.push(run.sink_cache_rate * 100.0);
        lines_total += run.lines_scanned;
        postings_total += run.postings_touched;
        if run.loops_detected {
            apps_with_loops += 1;
            if let Some(k) = &run.top_loop {
                *loop_kind_counts.entry(k.clone()).or_insert(0) += 1;
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);

    println!(
        "§IV-F implementation-enhancement statistics over {} apps ({} search backend)\n",
        total,
        backend.name()
    );
    println!("Search-command caching:");
    println!(
        "  cache rate: avg {:.2}%  min {:.2}%  max {:.2}%   [paper: avg 23.39, min 2.97, max 88.95]",
        avg(&cache_rates),
        min(&cache_rates),
        max(&cache_rates)
    );
    println!("\nSink API call caching:");
    println!(
        "  cached sink calls: avg {:.2}%  max {:.2}%   [paper: avg 13.86, max 68.18]",
        avg(&sink_rates),
        max(&sink_rates)
    );
    println!("\nSearch work (both cost models):");
    println!("  linear-model grep lines:   {lines_total}");
    println!("  indexed postings touched:  {postings_total}");
    if postings_total > 0 && lines_total > 0 {
        println!(
            "  index reduction:           {:.1}% of the linear work avoided",
            100.0 * (1.0 - postings_total as f64 / lines_total as f64)
        );
    }
    println!("\nMethod-loop detection:");
    println!(
        "  apps with >=1 dead loop detected: {}/{} ({:.0}%)   [paper: 60%]",
        apps_with_loops,
        total,
        100.0 * apps_with_loops as f64 / total as f64
    );
    println!("  most common loop kind per app:");
    for (k, c) in &loop_kind_counts {
        println!("    {k:<16} {c}");
    }
    println!("  [paper: CrossBackward is the most common kind]");

    if let Some(path) = json_path_from_args() {
        let summary = JsonObject::new()
            .str("backend", backend.name())
            .int("apps", total as u64)
            .float("cache_rate_avg", avg(&cache_rates))
            .float("cache_rate_min", min(&cache_rates))
            .float("cache_rate_max", max(&cache_rates))
            .float("sink_cache_avg", avg(&sink_rates))
            .float("sink_cache_max", max(&sink_rates))
            .int("lines_scanned_total", lines_total)
            .int("postings_touched_total", postings_total)
            .int("apps_with_loops", apps_with_loops as u64)
            .build();
        let doc = JsonObject::new()
            .raw("summary", summary)
            .raw("apps", array(runs.iter().map(|r| r.to_json())))
            .build();
        std::fs::write(&path, doc).expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }
}
