//! Regenerates **Fig 7** (BackDroid time distribution), **Fig 8**
//! (Amandroid time distribution), and the §VI-B headline: median
//! 2.13 min vs 78.15 min ⇒ 37× speedup, 0% vs 35% timeouts.
//!
//! Paper reference distributions:
//! * Fig 7 (BackDroid): 0–1m:42, 1–5m:47, 5–10m:19, 10–20m:18,
//!   20–30m:12, 30–100m:3, timeout:0
//! * Fig 8 (Amandroid): 1–5m:16, 5–10m:8, 10–30m:27, 30–100m:23,
//!   100–300m:17, timeout:50 (35%)

use backdroid_bench::harness::{
    bucket_label, median, print_histogram, run_benchset, scale_from_args,
};
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    let runs = run_benchset(scale);
    let total = runs.len();

    // ---- Fig 7: BackDroid ----
    let bd_edges = [1.0, 5.0, 10.0, 20.0, 30.0, 100.0];
    let bd_order = [
        "0m-1m", "1m-5m", "5m-10m", "10m-20m", "20m-30m", "30m-100m", ">100m",
    ];
    let mut bd_buckets: BTreeMap<String, usize> = BTreeMap::new();
    let mut bd_minutes = Vec::new();
    let mut bd_wall = Vec::new();
    for r in &runs {
        bd_minutes.push(r.backdroid.minutes);
        bd_wall.push(r.backdroid.wall_ms);
        *bd_buckets
            .entry(bucket_label(&bd_edges, r.backdroid.minutes))
            .or_insert(0) += 1;
    }
    println!("Fig 7: BackDroid analysis time over {total} apps");
    let rows: Vec<(String, usize)> = bd_order
        .iter()
        .map(|o| (o.to_string(), bd_buckets.get(*o).copied().unwrap_or(0)))
        .collect();
    print_histogram("  time buckets (scaled min):", &rows);
    println!("  timeouts: 0/{total} (0%)  [paper: 0]");

    // ---- Fig 8: Amandroid ----
    let am_edges = [5.0, 10.0, 30.0, 100.0, 300.0];
    let am_order = [
        "0m-5m",
        "5m-10m",
        "10m-30m",
        "30m-100m",
        "100m-300m",
        "Timeout",
    ];
    let mut am_buckets: BTreeMap<String, usize> = BTreeMap::new();
    let mut am_minutes = Vec::new();
    let mut am_wall = Vec::new();
    let mut timeouts = 0usize;
    let mut errors = 0usize;
    for r in &runs {
        am_wall.push(r.amandroid.wall_ms);
        if r.amandroid.errored {
            errors += 1;
            continue;
        }
        if r.amandroid.timed_out {
            timeouts += 1;
            *am_buckets.entry("Timeout".into()).or_insert(0) += 1;
            // Timed-out apps consumed the full budget (paper's convention
            // of treating the timeout as the lower-bound analysis time).
            am_minutes.push(300.0);
            continue;
        }
        am_minutes.push(r.amandroid.minutes);
        *am_buckets
            .entry(bucket_label(&am_edges, r.amandroid.minutes))
            .or_insert(0) += 1;
    }
    println!("\nFig 8: Amandroid analysis time over {total} apps (300-min scaled timeout)");
    let rows: Vec<(String, usize)> = am_order
        .iter()
        .map(|o| (o.to_string(), am_buckets.get(*o).copied().unwrap_or(0)))
        .collect();
    print_histogram("  time buckets (scaled min):", &rows);
    println!(
        "  timeouts: {timeouts}/{total} ({:.0}%)  [paper: 50/141 = 35%]; whole-app errors: {errors}",
        100.0 * timeouts as f64 / total as f64
    );

    // ---- §VI-B headline ----
    let bd_med = median(&bd_minutes);
    let am_med = median(&am_minutes);
    println!("\n§VI-B headline:");
    println!(
        "  BackDroid median: {bd_med:.2} scaled min   [paper: 2.13 min]   (wall median {:.0} ms)",
        median(&bd_wall)
    );
    println!(
        "  Amandroid median: {am_med:.2} scaled min   [paper: 78.15 min]  (wall median {:.0} ms)",
        median(&am_wall)
    );
    if bd_med > 0.0 {
        println!("  speedup: {:.1}x   [paper: 37x]", am_med / bd_med);
    }
    let under_1m = bd_minutes.iter().filter(|&&m| m < 1.0).count();
    let under_10m = bd_minutes.iter().filter(|&&m| m < 10.0).count();
    println!(
        "  BackDroid: {:.0}% apps under 1 min [paper 30%], {:.0}% under 10 min [paper 77%]",
        100.0 * under_1m as f64 / total as f64,
        100.0 * under_10m as f64 / total as f64
    );
    let over_30 = bd_minutes.iter().filter(|&&m| m > 30.0).count();
    println!("  BackDroid apps over 30 min: {over_30} [paper: 3]");
}
