//! Regenerates **Fig 7** (BackDroid time distribution), **Fig 8**
//! (Amandroid time distribution), and the §VI-B headline: median
//! 2.13 min vs 78.15 min ⇒ 37× speedup, 0% vs 35% timeouts.
//!
//! Paper reference distributions:
//! * Fig 7 (BackDroid): 0–1m:42, 1–5m:47, 5–10m:19, 10–20m:18,
//!   20–30m:12, 30–100m:3, timeout:0
//! * Fig 8 (Amandroid): 1–5m:16, 5–10m:8, 10–30m:27, 30–100m:23,
//!   100–300m:17, timeout:50 (35%)
//!
//! Apps run on the parallel corpus driver (`--threads N`); the scaled
//! figures fold in app-index order and use the backend-invariant linear
//! cost model, so stdout is byte-identical to a sequential run (wall
//! clock goes to stderr). When the indexed backend ran, the indexed cost
//! model's median is reported alongside.
//!
//! `--json PATH` writes the bucket counts and headline numbers as an
//! artifact; `--baseline PATH` checks them against the committed
//! `BENCH_figures.json` envelope, pinning the reproduced figure *shape*
//! (bucket-by-bucket bands, medians, speedup) in-repo.

use backdroid_bench::baseline::Baseline;
use backdroid_bench::harness::{
    backend_from_args, bucket_label, json_path_from_args, median, print_histogram,
    run_benchset_with, scale_from_args, threads_from_args,
};
use backdroid_bench::json::JsonObject;
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    let backend = backend_from_args();
    let threads = threads_from_args();
    let runs = run_benchset_with(scale, backend, threads);
    let total = runs.len();

    // ---- Fig 7: BackDroid ----
    let bd_edges = [1.0, 5.0, 10.0, 20.0, 30.0, 100.0];
    let bd_order = [
        "0m-1m", "1m-5m", "5m-10m", "10m-20m", "20m-30m", "30m-100m", ">100m",
    ];
    let mut bd_buckets: BTreeMap<String, usize> = BTreeMap::new();
    let mut bd_minutes = Vec::new();
    let mut bd_indexed_minutes = Vec::new();
    let mut bd_wall = Vec::new();
    for r in &runs {
        bd_minutes.push(r.backdroid.minutes);
        bd_indexed_minutes.push(r.backdroid.minutes_indexed);
        bd_wall.push(r.backdroid.wall_ms);
        *bd_buckets
            .entry(bucket_label(&bd_edges, r.backdroid.minutes))
            .or_insert(0) += 1;
    }
    println!("Fig 7: BackDroid analysis time over {total} apps");
    let rows: Vec<(String, usize)> = bd_order
        .iter()
        .map(|o| (o.to_string(), bd_buckets.get(*o).copied().unwrap_or(0)))
        .collect();
    print_histogram("  time buckets (scaled min):", &rows);
    println!("  timeouts: 0/{total} (0%)  [paper: 0]");

    // ---- Fig 8: Amandroid ----
    let am_edges = [5.0, 10.0, 30.0, 100.0, 300.0];
    let am_order = [
        "0m-5m",
        "5m-10m",
        "10m-30m",
        "30m-100m",
        "100m-300m",
        "Timeout",
    ];
    let mut am_buckets: BTreeMap<String, usize> = BTreeMap::new();
    let mut am_minutes = Vec::new();
    let mut am_wall = Vec::new();
    let mut timeouts = 0usize;
    let mut errors = 0usize;
    for r in &runs {
        am_wall.push(r.amandroid.wall_ms);
        if r.amandroid.errored {
            errors += 1;
            continue;
        }
        if r.amandroid.timed_out {
            timeouts += 1;
            *am_buckets.entry("Timeout".into()).or_insert(0) += 1;
            // Timed-out apps consumed the full budget (paper's convention
            // of treating the timeout as the lower-bound analysis time).
            am_minutes.push(300.0);
            continue;
        }
        am_minutes.push(r.amandroid.minutes);
        *am_buckets
            .entry(bucket_label(&am_edges, r.amandroid.minutes))
            .or_insert(0) += 1;
    }
    println!("\nFig 8: Amandroid analysis time over {total} apps (300-min scaled timeout)");
    let rows: Vec<(String, usize)> = am_order
        .iter()
        .map(|o| (o.to_string(), am_buckets.get(*o).copied().unwrap_or(0)))
        .collect();
    print_histogram("  time buckets (scaled min):", &rows);
    println!(
        "  timeouts: {timeouts}/{total} ({:.0}%)  [paper: 50/141 = 35%]; whole-app errors: {errors}",
        100.0 * timeouts as f64 / total as f64
    );

    // ---- §VI-B headline ----
    let bd_med = median(&bd_minutes);
    let am_med = median(&am_minutes);
    println!("\n§VI-B headline:");
    println!("  BackDroid median: {bd_med:.2} scaled min   [paper: 2.13 min]");
    println!("  Amandroid median: {am_med:.2} scaled min   [paper: 78.15 min]");
    if bd_med > 0.0 {
        println!("  speedup: {:.1}x   [paper: 37x]", am_med / bd_med);
    }
    let under_1m = bd_minutes.iter().filter(|&&m| m < 1.0).count();
    let under_10m = bd_minutes.iter().filter(|&&m| m < 10.0).count();
    println!(
        "  BackDroid: {:.0}% apps under 1 min [paper 30%], {:.0}% under 10 min [paper 77%]",
        100.0 * under_1m as f64 / total as f64,
        100.0 * under_10m as f64 / total as f64
    );
    let over_30 = bd_minutes.iter().filter(|&&m| m > 30.0).count();
    println!("  BackDroid apps over 30 min: {over_30} [paper: 3]");

    // Beyond the paper: the indexed backend's own cost model — only
    // meaningful when the indexed backend actually ran (under LinearScan
    // postings_touched is zero and the model would be pure floor).
    if backend == backdroid_core::BackendChoice::Indexed {
        let idx_med = median(&bd_indexed_minutes);
        println!(
            "\nIndexed search backend: median {idx_med:.2} scaled min under the \
             postings-touched cost model ({}x below the paper's grep model)",
            if idx_med > 0.0 {
                format!("{:.0}", bd_med / idx_med)
            } else {
                "inf".into()
            }
        );
    }

    // Wall clock is nondeterministic — stderr only, so stdout stays
    // byte-identical across thread counts.
    eprintln!(
        "wall medians: backdroid {:.0} ms, amandroid {:.0} ms ({} threads)",
        median(&bd_wall),
        median(&am_wall),
        threads
    );

    // The figure shape as machine-independent metrics: per-bucket
    // counts plus the headline medians and speedup, all computed from
    // the deterministic scaled-minute models.
    let speedup = if bd_med > 0.0 { am_med / bd_med } else { 0.0 };
    let mut metrics: Vec<(String, f64)> = vec![
        ("apps".into(), total as f64),
        ("bd_median_minutes".into(), bd_med),
        ("am_median_minutes".into(), am_med),
        ("model_speedup".into(), speedup),
        ("am_timeouts".into(), timeouts as f64),
        ("am_errors".into(), errors as f64),
        ("bd_over_30m".into(), over_30 as f64),
    ];
    for label in bd_order {
        metrics.push((
            format!("fig7_{label}"),
            bd_buckets.get(label).copied().unwrap_or(0) as f64,
        ));
    }
    for label in am_order {
        metrics.push((
            format!("fig8_{label}"),
            am_buckets.get(label).copied().unwrap_or(0) as f64,
        ));
    }

    if let Some(path) = json_path_from_args() {
        let mut obj = JsonObject::new();
        for (name, value) in &metrics {
            obj = obj.float(name, *value);
        }
        std::fs::write(&path, obj.build() + "\n").expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }

    let borrowed: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    if !Baseline::enforce_from_args("fig7_fig8_compare", &borrowed) {
        std::process::exit(1);
    }
}
