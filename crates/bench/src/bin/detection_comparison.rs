//! Regenerates the **§VI-C detection comparison**, both directions:
//!
//! * vulnerabilities Amandroid finds that BackDroid must match — the 7
//!   ECB TPs (all matched), the 17 SSL TPs (15 matched, 2 missed in the
//!   subclassed-sink shape), and the 6 FPs BackDroid avoids;
//! * the 54 additional BackDroid detections Amandroid misses, broken down
//!   into timeouts (28), skipped libraries (8), async/callback handling
//!   (8), and occasional whole-app errors (10);
//! * the §IV-C validation that search-reachable `<clinit>`s are truly
//!   reachable.
//!
//! Apps run on the parallel corpus driver (`--threads N`); results fold
//! in app-index order, so stdout and the `--json` artifact are
//! byte-identical to a sequential (`--threads 1`) run. `--backend
//! linear|indexed` selects the search backend — detection output is
//! provably identical either way.

use backdroid_appgen::benchset::{bench_app, Profile};
use backdroid_bench::harness::{
    backend_from_args, budget_for, intra_threads_from_args, json_path_from_args, par_map,
    run_amandroid_with_budget, run_backdroid_with, scale_from_args, threads_from_args,
    AmandroidRun, BackdroidRun,
};
use backdroid_bench::json::{array, JsonObject};
use backdroid_core::{Backdroid, BackdroidOptions};

/// Everything the §VI-C fold needs from one benchmark app.
struct AppOutcome {
    profile: Profile,
    bd: BackdroidRun,
    am: AmandroidRun,
    truth: usize,
    /// `SslTpSubclassed` only: did the hierarchy-aware initial search
    /// recover the miss?
    fixed_recovered: bool,
}

fn main() {
    let scale = scale_from_args();
    let backend = backend_from_args();
    let threads = threads_from_args();
    let intra_threads = intra_threads_from_args();
    let cfg = scale.config();
    let budget = budget_for(scale);

    let outcomes = par_map(cfg.count, threads, |i| {
        let ba = bench_app(i, cfg);
        let bd = run_backdroid_with(&ba.app, backend, intra_threads);
        let am = run_amandroid_with_budget(&ba.app, budget);
        let fixed_recovered = ba.profile == Profile::SslTpSubclassed && {
            // The §VI-C fix: hierarchy-aware initial search.
            let fixed = Backdroid::with_options(BackdroidOptions {
                hierarchy_initial_search: true,
                backend,
                intra_threads,
                ..BackdroidOptions::default()
            })
            .analyze(&ba.app.program, &ba.app.manifest);
            !fixed.vulnerable_sinks().is_empty()
        };
        AppOutcome {
            profile: ba.profile,
            bd,
            am,
            truth: ba.app.true_vulnerabilities(),
            fixed_recovered,
        }
    });

    let total = outcomes.len();
    let mut ecb_tp_both = 0usize;
    let mut ssl_tp_both = 0usize;
    let mut backdroid_fn = 0usize;
    let mut backdroid_fn_fixed = 0usize;
    let mut amandroid_fp = 0usize;
    let mut backdroid_fp = 0usize;
    let mut extra = [0usize; 4]; // timeout, skipped-lib, async, error
    let mut matched_apps = 0usize;

    for o in &outcomes {
        match o.profile {
            Profile::EcbTp => {
                if o.bd.vulnerable >= 1 && o.am.vulnerable >= 1 {
                    ecb_tp_both += 1;
                }
            }
            Profile::SslTp => {
                if o.bd.vulnerable >= 1 && o.am.vulnerable >= 1 {
                    ssl_tp_both += 1;
                }
            }
            Profile::SslTpSubclassed => {
                if o.bd.vulnerable == 0 && o.am.vulnerable >= 1 {
                    backdroid_fn += 1;
                }
                if o.fixed_recovered {
                    backdroid_fn_fixed += 1;
                }
            }
            Profile::AmandroidFp => {
                // Ground truth says not vulnerable; Amandroid flags it.
                if o.am.vulnerable >= 1 && o.truth == 0 {
                    amandroid_fp += 1;
                }
                if o.bd.vulnerable >= 1 {
                    backdroid_fp += 1;
                }
            }
            Profile::TimeoutVictim => {
                if o.bd.vulnerable >= 1 && o.am.timed_out {
                    extra[0] += 1;
                }
            }
            Profile::SkippedLib => {
                if o.bd.vulnerable >= 1 && o.am.vulnerable == 0 && !o.am.timed_out {
                    extra[1] += 1;
                }
            }
            Profile::AsyncCallback => {
                if o.bd.vulnerable >= 1 && o.am.vulnerable == 0 && !o.am.timed_out {
                    extra[2] += 1;
                }
            }
            Profile::WholeAppError => {
                if o.bd.vulnerable >= 1 && o.am.errored {
                    extra[3] += 1;
                }
            }
            Profile::Normal | Profile::TimeoutNoVuln => {
                if o.bd.vulnerable == o.truth {
                    matched_apps += 1;
                }
            }
        }
    }

    println!(
        "§VI-C detection comparison over {} apps ({} search backend)\n",
        total,
        backend.name()
    );
    println!("Vulnerabilities detected by Amandroid — BackDroid coverage:");
    println!("  ECB true positives matched by both:   {ecb_tp_both}   [paper: 7/7]");
    println!("  SSL true positives matched by both:   {ssl_tp_both}   [paper: 15/17]");
    println!("  BackDroid false negatives (subclassed sinks): {backdroid_fn}   [paper: 2]");
    println!("    …recovered with hierarchy-aware initial search: {backdroid_fn_fixed}");
    println!("  Amandroid false positives (unregistered components): {amandroid_fp}   [paper: 6]");
    println!("  BackDroid false positives on those apps: {backdroid_fp}   [paper: 0]");

    println!("\nVulnerabilities detected by BackDroid but NOT Amandroid:");
    println!(
        "  due to baseline timeouts:        {}   [paper: 28]",
        extra[0]
    );
    println!(
        "  due to skipped libraries:        {}   [paper: 8]",
        extra[1]
    );
    println!(
        "  due to async/callback handling:  {}   [paper: 8]",
        extra[2]
    );
    println!(
        "  due to whole-app errors:         {}   [paper: 10]",
        extra[3]
    );
    println!(
        "  total additional detections:     {}   [paper: 54]",
        extra.iter().sum::<usize>()
    );
    println!("\nClean apps with exact agreement (no spurious findings): {matched_apps}");

    // §IV-C validation: every clinit the recursive search deems reachable
    // is truly reachable from an entry component.
    let (identified, confirmed) = clinit_validation();
    println!(
        "\n§IV-C validation: {identified} reachable <clinit>s identified, {confirmed} confirmed \
         truly reachable   [paper: 37/37]"
    );

    // PR-7 detector classes: per-class precision/recall over dedicated
    // ground-truth apps (positives, negatives, and obfuscated variants).
    let class_scores = new_class_scores(backend, intra_threads, budget);
    println!("\nNew detector classes (registry-defined) — per-class scoring:");
    println!("  class     TP  FP  FN  precision  recall   baseline TP/FP/FN");
    for s in &class_scores {
        println!(
            "  {:<8}  {:>2}  {:>2}  {:>2}  {:>9.2}  {:>6.2}   {}/{}/{}",
            s.class,
            s.tp,
            s.fp,
            s.fn_,
            s.precision(),
            s.recall(),
            s.am_tp,
            s.am_fp,
            s.am_fn,
        );
    }

    if let Some(path) = json_path_from_args() {
        let apps = array(outcomes.iter().map(|o| {
            JsonObject::new()
                .str("profile", &format!("{:?}", o.profile))
                .raw("backdroid", o.bd.to_json())
                .raw("amandroid", o.am.to_json())
                .int("true_vulns", o.truth as u64)
                .bool("fixed_recovered", o.fixed_recovered)
                .build()
        }));
        let classes = array(class_scores.iter().map(|s| {
            JsonObject::new()
                .str("class", s.class)
                .int("tp", s.tp as u64)
                .int("fp", s.fp as u64)
                .int("fn", s.fn_ as u64)
                .float("precision", s.precision())
                .float("recall", s.recall())
                .int("baseline_tp", s.am_tp as u64)
                .int("baseline_fp", s.am_fp as u64)
                .int("baseline_fn", s.am_fn as u64)
                .build()
        }));
        let summary = JsonObject::new()
            .str("backend", backend.name())
            .int("apps", total as u64)
            .int("ecb_tp_both", ecb_tp_both as u64)
            .int("ssl_tp_both", ssl_tp_both as u64)
            .int("backdroid_fn", backdroid_fn as u64)
            .int("backdroid_fn_fixed", backdroid_fn_fixed as u64)
            .int("amandroid_fp", amandroid_fp as u64)
            .int("backdroid_fp", backdroid_fp as u64)
            .int("extra_timeout", extra[0] as u64)
            .int("extra_skipped_lib", extra[1] as u64)
            .int("extra_async", extra[2] as u64)
            .int("extra_error", extra[3] as u64)
            .int("clean_matched", matched_apps as u64)
            .int("clinit_identified", identified as u64)
            .int("clinit_confirmed", confirmed as u64)
            .build();
        let doc = JsonObject::new()
            .raw("summary", summary)
            .raw("classes", classes)
            .raw("apps", apps)
            .build();
        std::fs::write(&path, doc).expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }
}

/// Per-class confusion counts for one PR-7 detector class, for BackDroid
/// and the Amandroid-style baseline side by side.
struct ClassScore {
    class: &'static str,
    tp: usize,
    fp: usize,
    fn_: usize,
    am_tp: usize,
    am_fp: usize,
    am_fn: usize,
}

impl ClassScore {
    fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Scores the three registry-defined detector classes over dedicated
/// ground-truth apps: a direct positive, a direct negative (the secure
/// variant resolves to an unmodeled platform value or a benign command),
/// two obfuscated positives (static-field chain and `<clinit>`-assigned
/// constant), and a dead-code negative the §IV-F reachability pass must
/// prune.
fn new_class_scores(
    backend: backdroid_core::BackendChoice,
    intra_threads: usize,
    budget: u64,
) -> Vec<ClassScore> {
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
    use backdroid_core::DetectorRegistry;
    use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig, Outcome};

    let cases: [(&'static str, SinkKind); 3] = [
        ("webview", SinkKind::WebViewJsInterface),
        ("prng", SinkKind::PrngSeed),
        ("exec", SinkKind::ExecCommand),
    ];
    let shapes: [(Mechanism, bool); 5] = [
        (Mechanism::DirectEntry, true),
        (Mechanism::DirectEntry, false),
        (Mechanism::StaticChain, true),
        (Mechanism::ClinitOffPath, true),
        (Mechanism::DeadCode, true),
    ];
    cases
        .iter()
        .map(|&(class, kind)| {
            let mut score = ClassScore {
                class,
                tp: 0,
                fp: 0,
                fn_: 0,
                am_tp: 0,
                am_fp: 0,
                am_fn: 0,
            };
            for (i, &(mech, insecure)) in shapes.iter().enumerate() {
                let app = AppSpec::named(format!("com.cls.{class}{i}"))
                    .with_seed(i as u64)
                    .with_scenario(Scenario::new(mech, kind, insecure))
                    .with_filler(6 + i, 3, 4)
                    .generate();
                let truth = app.true_vulnerabilities() > 0;
                let bd = Backdroid::with_options(BackdroidOptions {
                    backend,
                    intra_threads,
                    detectors: DetectorRegistry::full(),
                    ..BackdroidOptions::default()
                })
                .analyze(&app.program, &app.manifest);
                let flagged = !bd.vulnerable_sinks().is_empty();
                match (truth, flagged) {
                    (true, true) => score.tp += 1,
                    (false, true) => score.fp += 1,
                    (true, false) => score.fn_ += 1,
                    (false, false) => {}
                }
                let cfg = AmandroidConfig {
                    budget_units: budget,
                    error_injection: false,
                    ..AmandroidConfig::default()
                };
                let am_flagged = match analyze(
                    &app.name,
                    &app.program,
                    &app.manifest,
                    &DetectorRegistry::full(),
                    &cfg,
                ) {
                    Outcome::Done(r) => !r.vulnerable().is_empty(),
                    Outcome::TimedOut { .. } | Outcome::Error { .. } => false,
                };
                match (truth, am_flagged) {
                    (true, true) => score.am_tp += 1,
                    (false, true) => score.am_fp += 1,
                    (true, false) => score.am_fn += 1,
                    (false, false) => {}
                }
            }
            score
        })
        .collect()
}

/// §IV-C: "Among 37 unique static initializers that are identified by our
/// recursive search as reachable, all of them are actually reachable."
fn clinit_validation() -> (usize, usize) {
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
    use backdroid_core::clinit::clinit_reachable;
    use backdroid_core::AppArtifacts;

    let mut identified = 0usize;
    let mut confirmed = 0usize;
    for i in 0..37 {
        let app = AppSpec::named(format!("com.clinit.v{i}"))
            .with_seed(i as u64)
            .with_scenario(Scenario::new(
                Mechanism::ClinitReachable,
                SinkKind::SslVerifier,
                i % 2 == 0,
            ))
            .with_filler(6 + i % 8, 4, 5)
            .generate();
        let artifacts = AppArtifacts::new(app.program.clone(), app.manifest.clone());
        let mut ctx = artifacts.task();
        let class = backdroid_ir::ClassName::new(format!("com.clinit.v{i}.s0.ApiClient"));
        let r = clinit_reachable(&mut ctx, &class);
        if r.reachable {
            identified += 1;
            // Ground truth: the scenario wires the clinit through an entry
            // activity, so reachability is genuine.
            if !r.witness.is_empty()
                && app
                    .manifest
                    .is_entry_component(r.witness.last().expect("non-empty"))
            {
                confirmed += 1;
            }
        }
    }
    (identified, confirmed)
}
