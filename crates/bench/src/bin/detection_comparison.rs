//! Regenerates the **§VI-C detection comparison**, both directions:
//!
//! * vulnerabilities Amandroid finds that BackDroid must match — the 7
//!   ECB TPs (all matched), the 17 SSL TPs (15 matched, 2 missed in the
//!   subclassed-sink shape), and the 6 FPs BackDroid avoids;
//! * the 54 additional BackDroid detections Amandroid misses, broken down
//!   into timeouts (28), skipped libraries (8), async/callback handling
//!   (8), and occasional whole-app errors (10);
//! * the §IV-C validation that search-reachable `<clinit>`s are truly
//!   reachable.

use backdroid_appgen::benchset::Profile;
use backdroid_bench::harness::{
    benchset_apps, budget_for, run_amandroid_with_budget, run_backdroid_on, scale_from_args,
};
use backdroid_core::{Backdroid, BackdroidOptions};

fn main() {
    let scale = scale_from_args();
    let apps = benchset_apps(scale);
    let budget = budget_for(scale);
    let mut total = 0usize;

    let mut ecb_tp_both = 0usize;
    let mut ssl_tp_both = 0usize;
    let mut backdroid_fn = 0usize;
    let mut backdroid_fn_fixed = 0usize;
    let mut amandroid_fp = 0usize;
    let mut backdroid_fp = 0usize;
    let mut extra = [0usize; 4]; // timeout, skipped-lib, async, error
    let mut matched_apps = 0usize;

    for ba in apps {
        total += 1;
        let bd = run_backdroid_on(&ba.app);
        let am = run_amandroid_with_budget(&ba.app, budget);
        let truth = ba.app.true_vulnerabilities();

        match ba.profile {
            Profile::EcbTp => {
                if bd.vulnerable >= 1 && am.vulnerable >= 1 {
                    ecb_tp_both += 1;
                }
            }
            Profile::SslTp => {
                if bd.vulnerable >= 1 && am.vulnerable >= 1 {
                    ssl_tp_both += 1;
                }
            }
            Profile::SslTpSubclassed => {
                if bd.vulnerable == 0 && am.vulnerable >= 1 {
                    backdroid_fn += 1;
                }
                // The §VI-C fix: hierarchy-aware initial search.
                let fixed = Backdroid::with_options(BackdroidOptions {
                    hierarchy_initial_search: true,
                    ..BackdroidOptions::default()
                })
                .analyze(&ba.app.program, &ba.app.manifest);
                if !fixed.vulnerable_sinks().is_empty() {
                    backdroid_fn_fixed += 1;
                }
            }
            Profile::AmandroidFp => {
                // Ground truth says not vulnerable; Amandroid flags it.
                if am.vulnerable >= 1 && truth == 0 {
                    amandroid_fp += 1;
                }
                if bd.vulnerable >= 1 {
                    backdroid_fp += 1;
                }
            }
            Profile::TimeoutVictim => {
                if bd.vulnerable >= 1 && am.timed_out {
                    extra[0] += 1;
                }
            }
            Profile::SkippedLib => {
                if bd.vulnerable >= 1 && am.vulnerable == 0 && !am.timed_out {
                    extra[1] += 1;
                }
            }
            Profile::AsyncCallback => {
                if bd.vulnerable >= 1 && am.vulnerable == 0 && !am.timed_out {
                    extra[2] += 1;
                }
            }
            Profile::WholeAppError => {
                if bd.vulnerable >= 1 && am.errored {
                    extra[3] += 1;
                }
            }
            Profile::Normal | Profile::TimeoutNoVuln => {
                if bd.vulnerable == truth {
                    matched_apps += 1;
                }
            }
        }
    }

    println!("§VI-C detection comparison over {} apps\n", total);
    println!("Vulnerabilities detected by Amandroid — BackDroid coverage:");
    println!("  ECB true positives matched by both:   {ecb_tp_both}   [paper: 7/7]");
    println!("  SSL true positives matched by both:   {ssl_tp_both}   [paper: 15/17]");
    println!("  BackDroid false negatives (subclassed sinks): {backdroid_fn}   [paper: 2]");
    println!("    …recovered with hierarchy-aware initial search: {backdroid_fn_fixed}");
    println!("  Amandroid false positives (unregistered components): {amandroid_fp}   [paper: 6]");
    println!("  BackDroid false positives on those apps: {backdroid_fp}   [paper: 0]");

    println!("\nVulnerabilities detected by BackDroid but NOT Amandroid:");
    println!(
        "  due to baseline timeouts:        {}   [paper: 28]",
        extra[0]
    );
    println!(
        "  due to skipped libraries:        {}   [paper: 8]",
        extra[1]
    );
    println!(
        "  due to async/callback handling:  {}   [paper: 8]",
        extra[2]
    );
    println!(
        "  due to whole-app errors:         {}   [paper: 10]",
        extra[3]
    );
    println!(
        "  total additional detections:     {}   [paper: 54]",
        extra.iter().sum::<usize>()
    );
    println!("\nClean apps with exact agreement (no spurious findings): {matched_apps}");

    // §IV-C validation: every clinit the recursive search deems reachable
    // is truly reachable from an entry component.
    clinit_validation();
}

/// §IV-C: "Among 37 unique static initializers that are identified by our
/// recursive search as reachable, all of them are actually reachable."
fn clinit_validation() {
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
    use backdroid_core::clinit::clinit_reachable;
    use backdroid_core::AnalysisContext;

    let mut identified = 0usize;
    let mut confirmed = 0usize;
    for i in 0..37 {
        let app = AppSpec::named(format!("com.clinit.v{i}"))
            .with_seed(i as u64)
            .with_scenario(Scenario::new(
                Mechanism::ClinitReachable,
                SinkKind::SslVerifier,
                i % 2 == 0,
            ))
            .with_filler(6 + i % 8, 4, 5)
            .generate();
        let mut ctx = AnalysisContext::new(&app.program, &app.manifest);
        let class = backdroid_ir::ClassName::new(format!("com.clinit.v{i}.s0.ApiClient"));
        let r = clinit_reachable(&mut ctx, &class);
        if r.reachable {
            identified += 1;
            // Ground truth: the scenario wires the clinit through an entry
            // activity, so reachability is genuine.
            if !r.witness.is_empty()
                && app
                    .manifest
                    .is_entry_component(r.witness.last().expect("non-empty"))
            {
                confirmed += 1;
            }
        }
    }
    println!(
        "\n§IV-C validation: {identified} reachable <clinit>s identified, {confirmed} confirmed \
         truly reachable   [paper: 37/37]"
    );
}
