//! Regenerates **Table I**: average and median app sizes 2014–2018.
//!
//! Sizes are drawn from per-year log-normal distributions calibrated to
//! the paper's corpus statistics (see `backdroid_appgen::dataset`); a few
//! fully generated apps per year validate that the DEX encoder's size
//! accounting is consistent with the sampled sizes.
//!
//! `--json PATH` writes the deterministic per-year rows (sampled and
//! generated sizes are pure functions of the year statistics, so the
//! artifact is diffable like every other bench artifact).

use backdroid_appgen::dataset::{summarize_mb, year_sizes_bytes, PAPER_TABLE1};
use backdroid_appgen::AppSpec;
use backdroid_bench::harness::json_path_from_args;
use backdroid_bench::json::{array, JsonObject};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let json_path = json_path_from_args();
    let mut rows = Vec::new();
    println!("Table I: average and median app sizes, 2014-2018");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "Year", "Avg (paper)", "Avg (ours)", "Med (paper)", "Med (ours)", "#Samples"
    );
    for stats in PAPER_TABLE1 {
        let n = if small { 201 } else { stats.samples };
        let sizes = year_sizes_bytes(stats, n);
        let (avg, median) = summarize_mb(&sizes);
        println!(
            "{:<6} {:>11.1}M {:>11.1}M {:>11.1}M {:>11.1}M {:>9}",
            stats.year, stats.avg_mb, avg, stats.median_mb, median, n
        );
        if json_path.is_some() {
            rows.push(
                JsonObject::new()
                    .int("year", stats.year as u64)
                    .float("avg_paper_mb", stats.avg_mb)
                    .float("avg_ours_mb", avg)
                    .float("median_paper_mb", stats.median_mb)
                    .float("median_ours_mb", median)
                    .int("samples", n as u64)
                    .build(),
            );
        }
    }

    // Validate the encoder: generate one real app per year sized to the
    // year's median and confirm the APK-size accounting matches.
    let mut generated_rows = Vec::new();
    println!("\nEncoder validation (one generated app per year, median-sized):");
    for stats in PAPER_TABLE1 {
        let target = (stats.median_mb * 1_048_576.0) as u64;
        let classes = (stats.median_mb * 2.0) as usize + 4;
        let app = AppSpec::named(format!("com.corpus.y{}", stats.year))
            .with_filler(classes, 5, 8)
            .with_resources(target)
            .generate();
        let mb = app.apk_size_bytes() as f64 / 1_048_576.0;
        println!(
            "  {}: generated app = {:.1} MB ({} classes, {} methods)",
            stats.year,
            mb,
            app.program.class_count(),
            app.program.method_count()
        );
        if json_path.is_some() {
            generated_rows.push(
                JsonObject::new()
                    .int("year", stats.year as u64)
                    .float("generated_mb", mb)
                    .int("classes", app.program.class_count() as u64)
                    .int("methods", app.program.method_count() as u64)
                    .build(),
            );
        }
    }

    if let Some(path) = json_path {
        let obj = JsonObject::new()
            .raw("years", array(rows))
            .raw("generated", array(generated_rows))
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }
}
