//! Regenerates **Fig 9**: the relationship between the number of sink API
//! calls analyzed in each app and BackDroid's analysis time.
//!
//! Paper reference: most apps sit under a ~30 s/sink line; all but one
//! finish within 40 minutes; the single outlier (Huawei Health, 121 sink
//! calls) takes 81 min — still far below the 300-min baseline timeout.

use backdroid_bench::harness::{
    benchset_apps, intra_threads_from_args, is_timeout_profile, json_path_from_args,
    run_backdroid_with, scale_from_args,
};
use backdroid_bench::json::{array, JsonObject};
use backdroid_core::BackendChoice;

fn main() {
    let scale = scale_from_args();
    let intra_threads = intra_threads_from_args();
    let json_path = json_path_from_args();
    let apps = benchset_apps(scale);

    println!("Fig 9: #sink API calls vs BackDroid analysis time");
    println!(
        "{:>6} {:>14} {:>12} {:>14}  app",
        "sinks", "scaled-min", "wall-ms", "sec/sink"
    );
    let mut points = Vec::new();
    let mut comparable = Vec::new(); // excludes the outsized timeout apps
    let mut wall_total = 0.0f64;
    let mut rows = Vec::new(); // deterministic --json rows (no wall-clock)
    for ba in apps {
        let run = run_backdroid_with(&ba.app, BackendChoice::default(), intra_threads);
        wall_total += run.wall_ms;
        let sec_per_sink = if run.sinks_analyzed > 0 {
            run.minutes * 60.0 / run.sinks_analyzed as f64
        } else {
            0.0
        };
        println!(
            "{:>6} {:>14.2} {:>12.1} {:>14.1}  {}",
            run.sinks_analyzed, run.minutes, run.wall_ms, sec_per_sink, run.app
        );
        if json_path.is_some() {
            rows.push(
                JsonObject::new()
                    .str("app", &run.app)
                    .str("profile", &format!("{:?}", ba.profile))
                    .int("sinks_analyzed", run.sinks_analyzed as u64)
                    .float("minutes", run.minutes)
                    .float("sec_per_sink", sec_per_sink)
                    .build(),
            );
        }
        if !is_timeout_profile(ba.profile) {
            comparable.push((run.sinks_analyzed, run.minutes));
        }
        points.push((run.sinks_analyzed, run.minutes, sec_per_sink));
    }

    let n = points.len() as f64;
    let mean_sinks = points.iter().map(|p| p.0 as f64).sum::<f64>() / n;
    println!("\n  mean sink calls per app: {mean_sinks:.2}  [paper: 20.93]");
    // Linear-trend check: Pearson correlation between sinks and time.
    let mean_t = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_s = 0.0;
    let mut var_t = 0.0;
    for (s, t, _) in &points {
        let ds = *s as f64 - mean_sinks;
        let dt = t - mean_t;
        cov += ds * dt;
        var_s += ds * ds;
        var_t += dt * dt;
    }
    let r = if var_s > 0.0 && var_t > 0.0 {
        cov / (var_s.sqrt() * var_t.sqrt())
    } else {
        0.0
    };
    println!("  correlation(sinks, time), all apps = {r:.2}");
    // The timeout population is deliberately 6-11x oversized in code so
    // the whole-app baseline exceeds its budget; their dump size swamps
    // the per-sink signal. The paper's corpus has no such engineered
    // outliers, so the comparable-size subset is the honest Fig 9 view.
    let n2 = comparable.len() as f64;
    if n2 > 1.0 {
        let ms = comparable.iter().map(|p| p.0 as f64).sum::<f64>() / n2;
        let mt = comparable.iter().map(|p| p.1).sum::<f64>() / n2;
        let (mut cov2, mut vs2, mut vt2) = (0.0, 0.0, 0.0);
        for (s_, t_) in &comparable {
            let ds = *s_ as f64 - ms;
            let dt = t_ - mt;
            cov2 += ds * dt;
            vs2 += ds * ds;
            vt2 += dt * dt;
        }
        let r2 = if vs2 > 0.0 && vt2 > 0.0 {
            cov2 / (vs2.sqrt() * vt2.sqrt())
        } else {
            0.0
        };
        println!(
            "  correlation(sinks, time), comparable-size apps = {r2:.2}  [paper: strong linear trend]"
        );
    }
    let under_line = points
        .iter()
        .filter(|(s, t, _)| *t * 60.0 <= 30.0 * (*s as f64).max(1.0))
        .count();
    println!(
        "  apps under the 30 s/sink line: {under_line}/{}  [paper: all but ~10 dots]",
        points.len()
    );
    if let Some(outlier) = points.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
        println!(
            "  slowest app: {} sinks, {:.1} scaled min  [paper outlier: 121 sinks, 81 min]",
            outlier.0, outlier.1
        );
    }
    if let Some(path) = json_path {
        let obj = JsonObject::new()
            .raw("apps", array(rows))
            .float("mean_sinks", mean_sinks)
            .float("correlation_all", r)
            .int("under_30s_per_sink", under_line as u64)
            .build();
        std::fs::write(&path, obj + "\n").expect("failed to write --json artifact");
        eprintln!("wrote JSON artifact to {}", path.display());
    }
    // Wall-clock goes to stderr: the scaled-minutes figures above are
    // deterministic, real time is not.
    eprintln!(
        "wall-clock total: {wall_total:.0} ms at --intra-threads {intra_threads} \
         (scaled figures identical for any width)"
    );
}
