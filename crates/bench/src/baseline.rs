//! Machine-independent benchmark baselines: committed `BENCH_*.json`
//! files that pin **ratios and counts** — warm/cold tier ratios, restore
//! speedups, postings touched, error counts — never absolute wall-clock
//! times, so the same file holds on a laptop and a loaded CI runner.
//!
//! A baseline file is one JSON object:
//!
//! ```json
//! {"bench":"snapshot_bench",
//!  "bands":{"mismatches":{"max":0},
//!           "wall_restore_speedup":{"min":1.0}}}
//! ```
//!
//! Each band names a metric the bench bin computes and bounds it with an
//! optional `min` and/or `max` (inclusive). The bin calls
//! [`Baseline::check`] with its metrics; any band whose metric is
//! missing or out of bounds is a failure, and the bin exits non-zero —
//! the same contract as its built-in self-checks, but with the expected
//! envelope versioned in-repo instead of hard-coded.

use backdroid_service::proto::{parse_json, Json};
use std::path::{Path, PathBuf};

/// An inclusive tolerance band for one metric. A missing bound is
/// unconstrained on that side; a band with neither bound only asserts
/// the metric exists.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Band {
    /// Inclusive lower bound.
    pub min: Option<f64>,
    /// Inclusive upper bound.
    pub max: Option<f64>,
}

impl Band {
    /// Whether `value` lies inside the band.
    pub fn contains(&self, value: f64) -> bool {
        self.min.is_none_or(|m| value >= m) && self.max.is_none_or(|m| value <= m)
    }
}

/// A parsed baseline: which bench it constrains and its metric bands,
/// in file order.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// The bench bin this baseline belongs to (`"service_throughput"`,
    /// `"snapshot_bench"`); checked so a swapped path fails loudly.
    pub bench: String,
    /// Metric name → tolerance band.
    pub bands: Vec<(String, Band)>,
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

impl Baseline {
    /// Loads and validates a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
    }

    /// Parses baseline JSON (see the module docs for the format).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text.trim())?;
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing \"bench\" name")?
            .to_string();
        let Some(Json::Obj(fields)) = doc.get("bands") else {
            return Err("missing \"bands\" object".into());
        };
        let mut bands = Vec::with_capacity(fields.len());
        for (name, spec) in fields {
            let min = spec.get("min").map(|v| {
                as_f64(v).ok_or_else(|| format!("band {name:?}: \"min\" is not a number"))
            });
            let max = spec.get("max").map(|v| {
                as_f64(v).ok_or_else(|| format!("band {name:?}: \"max\" is not a number"))
            });
            let band = Band {
                min: min.transpose()?,
                max: max.transpose()?,
            };
            if !matches!(spec, Json::Obj(_)) {
                return Err(format!("band {name:?} is not an object"));
            }
            if let (Some(lo), Some(hi)) = (band.min, band.max) {
                if lo > hi {
                    return Err(format!("band {name:?}: min {lo} > max {hi}"));
                }
            }
            bands.push((name.clone(), band));
        }
        Ok(Baseline { bench, bands })
    }

    /// Checks `metrics` against every band. Returns one human-readable
    /// failure line per violated or missing band — empty means the run
    /// is inside the committed envelope. Metrics without a band are
    /// ignored, so bins may report more than the baseline pins.
    pub fn check(&self, metrics: &[(&str, f64)]) -> Vec<String> {
        let mut failures = Vec::new();
        for (name, band) in &self.bands {
            match metrics.iter().find(|(k, _)| k == name) {
                None => failures.push(format!("baseline metric {name:?} was not measured")),
                Some((_, value)) if !band.contains(*value) => failures.push(format!(
                    "{name} = {value:.6} outside baseline band [{}, {}]",
                    band.min.map_or("-inf".into(), |m| format!("{m}")),
                    band.max.map_or("+inf".into(), |m| format!("{m}")),
                )),
                Some(_) => {}
            }
        }
        failures
    }

    /// Loads the baseline named by `--baseline PATH` (if given), verifies
    /// it targets `bench`, runs [`check`](Self::check), and prints the
    /// verdict. Returns `false` — meaning the caller must fail the run —
    /// on any load error or band violation.
    pub fn enforce_from_args(bench: &str, metrics: &[(&str, f64)]) -> bool {
        let Some(path) = baseline_path_from_args() else {
            return true;
        };
        let baseline = match Baseline::load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: {e}");
                return false;
            }
        };
        if baseline.bench != bench {
            eprintln!(
                "FAIL: baseline {} is for {:?}, not {bench:?}",
                path.display(),
                baseline.bench
            );
            return false;
        }
        let failures = baseline.check(metrics);
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if failures.is_empty() {
            eprintln!(
                "baseline OK: {} band(s) from {} hold",
                baseline.bands.len(),
                path.display()
            );
        }
        failures.is_empty()
    }
}

/// The `--baseline PATH` flag shared by the baseline-aware bench bins.
pub fn baseline_path_from_args() -> Option<PathBuf> {
    crate::harness::arg_value("--baseline").map(PathBuf::from)
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over a sample set; `0.0`
/// for an empty set. Sorts a copy — callers keep submission order.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_parse_and_check() {
        let b = Baseline::parse(
            r#"{"bench":"demo","bands":{"errors":{"max":0},"speedup":{"min":1.5,"max":100},"present":{}}}"#,
        )
        .unwrap();
        assert_eq!(b.bench, "demo");
        assert_eq!(b.bands.len(), 3);
        let ok = b.check(&[("errors", 0.0), ("speedup", 3.0), ("present", -7.0)]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = b.check(&[("errors", 1.0), ("speedup", 1.2)]);
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad[2].contains("not measured"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"bench":"x"}"#).is_err());
        assert!(Baseline::parse(r#"{"bench":"x","bands":{"m":{"min":"no"}}}"#).is_err());
        assert!(Baseline::parse(r#"{"bench":"x","bands":{"m":{"min":2,"max":1}}}"#).is_err());
        assert!(Baseline::parse(r#"{"bench":"x","bands":{"m":3}}"#).is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Unsorted input is handled; input order is preserved.
        let scrambled = vec![3.0, 1.0, 2.0];
        assert_eq!(percentile(&scrambled, 100.0), 3.0);
        assert_eq!(scrambled, vec![3.0, 1.0, 2.0]);
    }
}
