//! Benchmarks SSG construction (backward slicing with search-driven
//! backtracking) across scenario shapes.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{locate_sinks, slice_sink, AppArtifacts, DetectorRegistry, SlicerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssg_slicing");
    for (name, mech) in [
        ("private_chain", Mechanism::PrivateChain),
        ("interface_runnable", Mechanism::InterfaceRunnable),
        ("clinit_off_path", Mechanism::ClinitOffPath),
        ("lifecycle_chain", Mechanism::LifecycleChain),
    ] {
        let app = AppSpec::named(format!("com.bench.slice.{name}"))
            .with_scenario(Scenario::new(mech, SinkKind::Cipher, true))
            .with_filler(40, 5, 8)
            .generate();
        let dump = app.dump();
        let registry = DetectorRegistry::paper().sink_registry();
        group.bench_with_input(BenchmarkId::new("slice", name), &app, |b, app| {
            b.iter_batched(
                || {
                    // Fresh artifacts per batch: every timed run slices
                    // against a cold search cache.
                    let artifacts =
                        AppArtifacts::from_dump(app.program.clone(), app.manifest.clone(), &dump);
                    let sites = locate_sinks(&mut artifacts.task(), &registry, false);
                    (artifacts, sites)
                },
                |(artifacts, sites)| {
                    let mut ctx = artifacts.task();
                    for site in &sites {
                        let spec = &registry.sinks()[site.spec_idx];
                        let _ = slice_sink(
                            &mut ctx,
                            SlicerConfig::default(),
                            &site.method,
                            site.stmt_idx,
                            spec,
                        );
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slicing);
criterion_main!(benches);
