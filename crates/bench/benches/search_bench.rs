//! Micro-benchmarks for the on-the-fly bytecode search engine: cold
//! signature searches (under both backends) vs cached replays, at two
//! app sizes.

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_ir::{MethodSig, Type};
use backdroid_search::{BackendChoice, BytecodeText, SearchCmd, SearchEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn app_dump(classes: usize) -> String {
    AppSpec::named(format!("com.bench.search{classes}"))
        .with_scenario(Scenario::new(
            Mechanism::PrivateChain,
            SinkKind::Cipher,
            true,
        ))
        .with_filler(classes, 5, 8)
        .generate()
        .dump()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bytecode_search");
    for classes in [50usize, 300] {
        let dump = app_dump(classes);
        let sink = MethodSig::new(
            "javax.crypto.Cipher",
            "getInstance",
            vec![Type::string()],
            Type::object("javax.crypto.Cipher"),
        );
        group.bench_with_input(BenchmarkId::new("index", classes), &dump, |b, dump| {
            b.iter(|| BytecodeText::index(dump));
        });
        group.bench_with_input(
            BenchmarkId::new("cold_invoke_search", classes),
            &dump,
            |b, dump| {
                b.iter_batched(
                    || SearchEngine::new(BytecodeText::index(dump)),
                    |engine| engine.run(&SearchCmd::InvokeOf(sink.clone())),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cold_invoke_search_linear", classes),
            &dump,
            |b, dump| {
                b.iter_batched(
                    || {
                        SearchEngine::with_backend(
                            BytecodeText::index(dump),
                            BackendChoice::LinearScan,
                        )
                    },
                    |engine| engine.run(&SearchCmd::InvokeOf(sink.clone())),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_invoke_search", classes),
            &dump,
            |b, dump| {
                let engine = SearchEngine::new(BytecodeText::index(dump));
                engine.run(&SearchCmd::InvokeOf(sink.clone()));
                b.iter(|| engine.run(&SearchCmd::InvokeOf(sink.clone())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
