//! Benchmarks the forward constant/points-to propagation over generated
//! SSGs (paper §V-B).

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{
    locate_sinks, slice_sink, AppArtifacts, DetectorRegistry, ForwardAnalysis, SlicerConfig, Ssg,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ssg_for(mech: Mechanism) -> (backdroid_appgen::AndroidApp, Vec<Ssg>) {
    let app = AppSpec::named(format!("com.bench.fwd.{mech:?}").to_lowercase())
        .with_scenario(Scenario::new(mech, SinkKind::Cipher, true))
        .with_filler(30, 5, 8)
        .generate();
    let registry = DetectorRegistry::paper().sink_registry();
    let artifacts = AppArtifacts::new(app.program.clone(), app.manifest.clone());
    let mut ctx = artifacts.task();
    let sites = locate_sinks(&mut ctx, &registry, false);
    let ssgs = sites
        .iter()
        .map(|site| {
            let spec = &registry.sinks()[site.spec_idx];
            slice_sink(
                &mut ctx,
                SlicerConfig::default(),
                &site.method,
                site.stmt_idx,
                spec,
            )
            .ssg
        })
        .collect();
    drop(ctx);
    (app, ssgs)
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_propagation");
    let registry = DetectorRegistry::paper().sink_registry();
    let cipher_spec = registry.sinks()[0].clone();
    for mech in [
        Mechanism::PrivateChain,
        Mechanism::ClinitOffPath,
        Mechanism::InterfaceRunnable,
    ] {
        let (app, ssgs) = ssg_for(mech);
        group.bench_with_input(
            BenchmarkId::new("propagate", format!("{mech:?}")),
            &(app, ssgs),
            |b, (app, ssgs)| {
                b.iter(|| {
                    for ssg in ssgs {
                        let mut fwd = ForwardAnalysis::new(&app.program);
                        let _ = fwd.run(ssg, &cipher_spec);
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
