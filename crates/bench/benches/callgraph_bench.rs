//! Benchmarks whole-app call-graph construction: CHA vs SPARK-like RTA vs
//! the context-sensitive geomPTA-like variant, across app sizes — the
//! cost asymmetry behind Fig 1.

use backdroid_appgen::AppSpec;
use backdroid_wholeapp::{build, CgAlgorithm, CgOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_callgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_app_callgraph");
    group.sample_size(20);
    for classes in [50usize, 200] {
        let app = AppSpec::named(format!("com.bench.cg{classes}"))
            .with_filler(classes, 6, 8)
            .generate();
        for (name, algo) in [
            ("cha", CgAlgorithm::Cha),
            ("spark", CgAlgorithm::Spark),
            ("geompta", CgAlgorithm::GeomPta),
        ] {
            group.bench_with_input(BenchmarkId::new(name, classes), &app, |b, app| {
                let opts = CgOptions {
                    algorithm: algo,
                    ..CgOptions::default()
                };
                b.iter(|| build(&app.program, &app.manifest, &opts).expect("no budget"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_callgraph);
criterion_main!(benches);
