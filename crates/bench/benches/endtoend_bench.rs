//! End-to-end comparison: BackDroid's full pipeline vs the Amandroid-style
//! whole-app baseline, at growing app sizes. The gap widening with size is
//! the paper's central performance claim (§VI-B).

use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
use backdroid_core::{Backdroid, DetectorRegistry};
use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_endtoend(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend");
    group.sample_size(10);
    for classes in [30usize, 120, 360] {
        let app = AppSpec::named(format!("com.bench.e2e{classes}"))
            .with_scenario(Scenario::new(
                Mechanism::PrivateChain,
                SinkKind::Cipher,
                true,
            ))
            .with_scenario(Scenario::new(
                Mechanism::StaticChain,
                SinkKind::SslVerifier,
                true,
            ))
            .with_filler(classes, 6, 8)
            .generate();
        group.bench_with_input(BenchmarkId::new("backdroid", classes), &app, |b, app| {
            let tool = Backdroid::new();
            b.iter(|| tool.analyze(&app.program, &app.manifest));
        });
        group.bench_with_input(BenchmarkId::new("amandroid", classes), &app, |b, app| {
            let cfg = AmandroidConfig {
                error_injection: false,
                budget_units: u64::MAX,
                ..AmandroidConfig::default()
            };
            let registry = DetectorRegistry::paper();
            b.iter(|| analyze(&app.name, &app.program, &app.manifest, &registry, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
