//! The inverted search index: posting lists over the bytecode plaintext.
//!
//! BackDroid's thesis is that analysis cost should scale with the
//! sink-relevant code, not the app size — yet a grep answers every search
//! command by scanning every dump line. [`SearchIndex`] removes that last
//! linear factor: one tokenization pass over the lines
//! [`BytecodeText::index`] indexed (run lazily, on the first indexed
//! query) builds posting lists keyed by exactly the tokens
//! [`SearchCmd::canonical`](crate::SearchCmd::canonical) already defines
//! (method-ref invokes, class descriptors for `new-instance` /
//! `const-class`, `const-string` literals, field references, and bare
//! method-name calls), so the [`Indexed`](crate::Indexed) backend touches
//! only candidate lines instead of the whole dump.
//!
//! The index is deliberately a *superset* structure: tokenization is
//! purely lexical over every line (every `L…;` descriptor occurrence,
//! every `;.name:(` member reference, every quote-delimited literal), and
//! the backend re-verifies each candidate with the same needle + opcode
//! guard the linear grep uses. That is what makes the
//! [`LinearScan`](crate::LinearScan) oracle and the indexed backend
//! hit-for-hit identical.
//!
//! [`BytecodeText::index`]: crate::BytecodeText::index

use crate::engine::SearchCmd;
use backdroid_dex::{class_descriptor, field_ref_string, method_ref_string};
use backdroid_ir::wire::{self, WireError, WireReader, WireWriter};
use backdroid_ir::{ClassName, Type};
use std::collections::HashMap;

/// Sentinel for "line is outside any class section".
const NO_OWNER: u32 = u32::MAX;

/// Posting lists over one dump: token → ascending line indices.
#[derive(Debug, Default)]
pub struct SearchIndex {
    /// Namespaced token (`i:` invoke ref, `n:` method name, `c:` class
    /// descriptor, `s:` string literal, `f:` field ref) → ascending,
    /// deduplicated line indices.
    postings: HashMap<String, Vec<u32>>,
    /// Classes seen in `Class descriptor` header lines, in dump order.
    classes: Vec<ClassName>,
    /// For each line, index into `classes` of the section owning it
    /// (`NO_OWNER` before the first class header).
    owners: Vec<u32>,
}

impl SearchIndex {
    /// Tokenizes the dump lines into posting lists. One pass, O(total
    /// text); built once per [`BytecodeText`](crate::BytecodeText), on
    /// the first indexed query.
    pub fn build(lines: &[String]) -> SearchIndex {
        let mut idx = SearchIndex {
            postings: HashMap::new(),
            classes: Vec::new(),
            owners: Vec::with_capacity(lines.len()),
        };
        let mut current_owner = NO_OWNER;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.trim_start().strip_prefix("Class descriptor  : '") {
                if let Some(desc) = rest.strip_suffix('\'') {
                    if let Some(Type::Object(c)) = Type::from_descriptor(desc) {
                        idx.classes.push(c);
                        current_owner = (idx.classes.len() - 1) as u32;
                    }
                }
            }
            idx.owners.push(current_owner);
            idx.tokenize_line(i as u32, line);
        }
        idx
    }

    fn add(&mut self, key: String, line: u32) {
        let list = self.postings.entry(key).or_default();
        if list.last() != Some(&line) {
            list.push(line);
        }
    }

    /// Extracts every lexical token occurrence from one line.
    fn tokenize_line(&mut self, i: u32, line: &str) {
        // Quote-delimited literals: enumerate every quote pair so any
        // needle of the form `"…"` present in the line has its content
        // keyed (dump lines carry at most one literal, so this stays
        // quadratic only in theory).
        let quotes: Vec<usize> = line
            .char_indices()
            .filter(|&(_, c)| c == '"')
            .map(|(p, _)| p)
            .collect();
        for (a, &qa) in quotes.iter().enumerate() {
            for &qb in &quotes[a + 1..] {
                self.add(format!("s:{}", &line[qa + 1..qb]), i);
            }
        }

        // Bare method-name calls: every `;.name:(` occurrence, parsed
        // lexically so even refs the descriptor scan below cannot parse
        // still land in the name posting list.
        let mut p = 0;
        while let Some(off) = line[p..].find(";.") {
            let start = p + off + 2;
            if let Some(colon) = line[start..].find(':') {
                let name = &line[start..start + colon];
                if !name.is_empty() && line[start + colon + 1..].starts_with('(') {
                    self.add(format!("n:{name}"), i);
                }
            }
            p = start;
        }

        // Class descriptors and member references: try a descriptor parse
        // at every `L` byte, mirroring how the linear grep's needles can
        // match at any position.
        for (p, _) in line.char_indices().filter(|&(_, c)| c == 'L') {
            let Some(desc_len) = object_descriptor_len(&line[p..]) else {
                continue;
            };
            self.add(format!("c:{}", &line[p..p + desc_len]), i);
            let rest = &line[p + desc_len..];
            let Some(member) = rest.strip_prefix('.') else {
                continue;
            };
            let Some(colon) = member.find(':') else {
                continue;
            };
            let name = &member[..colon];
            if name.is_empty() {
                continue;
            }
            let after = &member[colon + 1..];
            if after.starts_with('(') {
                // Method reference: `Lc;.name:(params)ret`.
                if let Some(proto_len) = proto_prefix_len(after) {
                    let end = p + desc_len + 1 + colon + 1 + proto_len;
                    self.add(format!("i:{}", &line[p..end]), i);
                }
            } else if let Some((_, rem)) = Type::parse_descriptor_prefix(after) {
                // Field reference: `Lc;.name:type`.
                let end = p + desc_len + 1 + colon + 1 + (after.len() - rem.len());
                self.add(format!("f:{}", &line[p..end]), i);
            }
        }
    }

    /// Candidate lines for a search command — a superset of the lines the
    /// linear grep would match, in ascending order. The caller must
    /// re-verify each candidate against the command's needle and guard.
    pub fn candidates(&self, cmd: &SearchCmd) -> &[u32] {
        let key = match cmd {
            SearchCmd::InvokeOf(m) => format!("i:{}", method_ref_string(m)),
            SearchCmd::MethodNameCall(n) => format!("n:{n}"),
            SearchCmd::NewInstanceOf(c) | SearchCmd::ConstClass(c) => {
                format!("c:{}", class_descriptor(c))
            }
            SearchCmd::ConstString(s) => format!("s:{s}"),
            SearchCmd::FieldAccess(f) | SearchCmd::StaticFieldAccess(f) => {
                format!("f:{}", field_ref_string(f))
            }
        };
        self.postings.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Candidate lines containing a class descriptor anywhere (code
    /// operands, `Superclass` / `Interfaces` headers, field headers) —
    /// the posting list behind the class-level "invoked by" search.
    pub fn class_candidates(&self, descriptor: &str) -> &[u32] {
        self.postings
            .get(&format!("c:{descriptor}"))
            .map_or(&[], Vec::as_slice)
    }

    /// The class whose dump section contains line `i` (tracked from
    /// `Class descriptor` headers), if any.
    pub fn owner_class_of(&self, i: usize) -> Option<&ClassName> {
        let owner = *self.owners.get(i)?;
        if owner == NO_OWNER {
            None
        } else {
            self.classes.get(owner as usize)
        }
    }

    /// Wire-encodes the posting lists. Tokens are written in sorted
    /// order (the in-memory map is hash-ordered) and line indices as
    /// deltas, so equal indexes produce byte-identical, compact
    /// encodings — the determinism the snapshot format requires.
    pub fn write_wire(&self, w: &mut WireWriter) {
        let mut keys: Vec<&String> = self.postings.keys().collect();
        keys.sort();
        w.put_len(keys.len());
        for key in keys {
            w.put_str(key);
            let lines = &self.postings[key];
            w.put_len(lines.len());
            let mut prev = 0u32;
            for (i, &line) in lines.iter().enumerate() {
                let delta = if i == 0 { line } else { line - prev };
                w.put_uvarint(delta as u64);
                prev = line;
            }
        }
        w.put_len(self.classes.len());
        for c in &self.classes {
            wire::write_class_name(w, c);
        }
        w.put_len(self.owners.len());
        for &o in &self.owners {
            // NO_OWNER compresses to one byte instead of a 5-byte varint.
            w.put_uvarint(if o == NO_OWNER { 0 } else { o as u64 + 1 });
        }
    }

    /// Decodes posting lists written by [`SearchIndex::write_wire`],
    /// validating every structural invariant the query paths rely on:
    /// strictly ascending deduplicated postings, line indices inside the
    /// `line_count`-line dump, one owner entry per line, and owner
    /// references inside the class table.
    pub fn read_wire(r: &mut WireReader<'_>, line_count: usize) -> Result<SearchIndex, WireError> {
        let malformed = |m: &str| WireError::Malformed(m.to_string());
        let n_tokens = r.get_len(1)?;
        let mut postings = HashMap::with_capacity(n_tokens);
        let mut prev_key: Option<String> = None;
        for _ in 0..n_tokens {
            let key = r.get_str()?.to_string();
            if prev_key.as_deref().is_some_and(|p| p >= key.as_str()) {
                return Err(malformed("posting tokens out of order"));
            }
            let n_lines = r.get_len(1)?;
            let mut lines = Vec::with_capacity(n_lines);
            let mut acc = 0u64;
            for i in 0..n_lines {
                let delta = r.get_uvarint()?;
                if i > 0 && delta == 0 {
                    return Err(malformed("posting line repeated"));
                }
                acc = if i == 0 {
                    delta
                } else {
                    acc.checked_add(delta)
                        .ok_or_else(|| malformed("posting delta overflows"))?
                };
                if acc >= line_count as u64 {
                    return Err(malformed("posting line outside the dump"));
                }
                lines.push(acc as u32);
            }
            prev_key = Some(key.clone());
            postings.insert(key, lines);
        }
        let n_classes = r.get_len(1)?;
        let mut classes = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            classes.push(wire::read_class_name(r)?);
        }
        let n_owners = r.get_len(1)?;
        if n_owners != line_count {
            return Err(malformed("owner table does not cover every line"));
        }
        let mut owners = Vec::with_capacity(n_owners);
        for _ in 0..n_owners {
            let v = r.get_uvarint()?;
            let owner = if v == 0 {
                NO_OWNER
            } else {
                let idx = v - 1;
                if idx >= classes.len() as u64 {
                    return Err(malformed("owner references a missing class"));
                }
                idx as u32
            };
            owners.push(owner);
        }
        Ok(SearchIndex {
            postings,
            classes,
            owners,
        })
    }

    /// Number of distinct tokens indexed.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }

    /// Total postings stored across all tokens.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }
}

/// Length of the `Lpkg/Cls;` object descriptor at the start of `s`, if
/// one is present. Mirrors the `L` branch of
/// [`Type::parse_descriptor_prefix`]: any non-empty run of characters up
/// to the first `;`.
fn object_descriptor_len(s: &str) -> Option<usize> {
    if !s.starts_with('L') {
        return None;
    }
    let end = s.find(';')?;
    if end < 2 {
        return None;
    }
    Some(end + 1)
}

/// Length of the `(params)ret` proto at the start of `s`, if one parses.
fn proto_prefix_len(s: &str) -> Option<usize> {
    let mut cur = s.strip_prefix('(')?;
    loop {
        if let Some(after_paren) = cur.strip_prefix(')') {
            let (_, rem) = Type::parse_descriptor_prefix(after_paren)?;
            return Some(s.len() - rem.len());
        }
        let (_, rem) = Type::parse_descriptor_prefix(cur)?;
        cur = rem;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::MethodSig;

    fn lines(src: &[&str]) -> Vec<String> {
        src.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn invoke_refs_are_keyed_exactly() {
        let idx = SearchIndex::build(&lines(&[
            "0000: invoke-virtual {v1}, Lcom/a/Server;.start:()V // method@0001",
            "0002: nop // spacer",
            "0004: invoke-static {}, Lcom/a/Util;.go:(ILjava/lang/String;)[B // method@0002",
        ]));
        let m = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
        assert_eq!(idx.candidates(&SearchCmd::InvokeOf(m)), &[0]);
        let g = MethodSig::new(
            "com.a.Util",
            "go",
            vec![Type::Int, Type::string()],
            Type::array(Type::Byte),
        );
        assert_eq!(idx.candidates(&SearchCmd::InvokeOf(g)), &[2]);
        assert_eq!(
            idx.candidates(&SearchCmd::MethodNameCall("go".into())),
            &[2]
        );
    }

    #[test]
    fn string_literal_pairs_cover_substring_needles() {
        let idx = SearchIndex::build(&lines(&[
            "0000: const-string v0, \"AES/ECB/PKCS5Padding\" // string@0001",
        ]));
        assert_eq!(
            idx.candidates(&SearchCmd::ConstString("AES/ECB/PKCS5Padding".into())),
            &[0]
        );
        // Partial content is not a full quote-pair token.
        assert!(idx
            .candidates(&SearchCmd::ConstString("AES/ECB".into()))
            .is_empty());
    }

    #[test]
    fn class_descriptor_occurrences_index_headers_and_owners() {
        let idx = SearchIndex::build(&lines(&[
            "Class #0            -",
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "  Superclass        : 'Lcom/a/Base;'",
            "0000: new-instance v0, Lcom/a/Base; // type@0002",
        ]));
        let base = ClassName::new("com.a.Base");
        assert_eq!(idx.class_candidates("Lcom/a/Base;"), &[2, 3]);
        assert_eq!(idx.candidates(&SearchCmd::NewInstanceOf(base)), &[2, 3]);
        assert!(idx.owner_class_of(0).is_none());
        assert_eq!(idx.owner_class_of(2).unwrap().as_str(), "com.a.Sub");
        assert_eq!(idx.owner_class_of(3).unwrap().as_str(), "com.a.Sub");
    }

    #[test]
    fn field_refs_distinguish_type_suffix() {
        let idx = SearchIndex::build(&lines(&[
            "0000: sget v0, Lcom/a/Server;.PORT:I // field@0000",
            "0001: iget-object v1, v2, Lcom/a/Server;.host:Ljava/lang/String; // field@0001",
        ]));
        let port = backdroid_ir::FieldSig::new("com.a.Server", "PORT", Type::Int);
        assert_eq!(idx.candidates(&SearchCmd::FieldAccess(port.clone())), &[0]);
        assert_eq!(idx.candidates(&SearchCmd::StaticFieldAccess(port)), &[0]);
        let host = backdroid_ir::FieldSig::new("com.a.Server", "host", Type::string());
        assert_eq!(idx.candidates(&SearchCmd::FieldAccess(host)), &[1]);
    }

    #[test]
    fn prefix_parsers_reject_garbage() {
        assert_eq!(object_descriptor_len("not a descriptor"), None);
        assert_eq!(object_descriptor_len("L;"), None);
        assert_eq!(object_descriptor_len("Lcom/a/B; trailing"), Some(9));
        assert_eq!(proto_prefix_len("()V"), Some(3));
        assert_eq!(proto_prefix_len("(ILjava/lang/String;)[B rest"), Some(23));
        assert_eq!(proto_prefix_len("(Q)V"), None);
        assert_eq!(proto_prefix_len("no parens"), None);
    }
}
