//! The inverted search index: posting lists over the bytecode plaintext.
//!
//! BackDroid's thesis is that analysis cost should scale with the
//! sink-relevant code, not the app size — yet a grep answers every search
//! command by scanning every dump line. [`SearchIndex`] removes that last
//! linear factor: one tokenization pass over the lines
//! [`BytecodeText::index`] indexed (run lazily, on the first indexed
//! query) builds posting lists keyed by exactly the tokens
//! [`SearchCmd::canonical`](crate::SearchCmd::canonical) already defines
//! (method-ref invokes, class descriptors for `new-instance` /
//! `const-class`, `const-string` literals, field references, and bare
//! method-name calls), so the [`Indexed`](crate::Indexed) backend touches
//! only candidate lines instead of the whole dump.
//!
//! # Interned, flattened layout
//!
//! Tokens are interned into a [`SymbolTable`] at build time — each
//! distinct token is a dense `u32` [`Sym`] — and the posting lists are
//! flattened into **one** `Vec<u32>` of ascending line indices addressed
//! by a per-symbol prefix-offset table. A query probes the symbol table
//! with the needle split into borrowed `(namespace, payload)` parts
//! (see [`SymbolTable::lookup`]), then slices its posting range by id:
//! no key formatting, no per-probe allocation, no string compares
//! beyond the single hash-matched arena slice.
//!
//! The index is deliberately a *superset* structure: tokenization is
//! purely lexical over every line (every `L…;` descriptor occurrence,
//! every `;.name:(` member reference, every quote-delimited literal), and
//! the backend re-verifies each candidate with the same needle + opcode
//! guard the linear grep uses. That is what makes the
//! [`LinearScan`](crate::LinearScan) oracle and the indexed backend
//! hit-for-hit identical.
//!
//! [`BytecodeText::index`]: crate::BytecodeText::index

use crate::engine::SearchCmd;
use crate::symbol::{Sym, SymbolTable};
use backdroid_dex::{class_descriptor, field_ref_string, method_ref_string};
use backdroid_ir::wire::{self, WireError, WireReader, WireWriter};
use backdroid_ir::{ClassName, Type};

/// Sentinel for "line is outside any class section".
const NO_OWNER: u32 = u32::MAX;

/// Posting lists over one dump: interned token → ascending line indices.
#[derive(Debug, Default)]
pub struct SearchIndex {
    /// Interned tokens (`i:` invoke ref, `n:` method name, `c:` class
    /// descriptor, `s:` string literal, `f:` field ref), ids in
    /// first-encounter order.
    symbols: SymbolTable,
    /// Prefix offsets into `lines`: symbol `k`'s postings are
    /// `lines[offsets[k]..offsets[k + 1]]`. Length `symbols.len() + 1`.
    offsets: Vec<u32>,
    /// All posting lists flattened: ascending, deduplicated line
    /// indices per symbol range.
    lines: Vec<u32>,
    /// Classes seen in `Class descriptor` header lines, in dump order.
    classes: Vec<ClassName>,
    /// For each line, index into `classes` of the section owning it
    /// (`NO_OWNER` before the first class header).
    owners: Vec<u32>,
}

/// One class block's cached token scan, positioned relative to the
/// block's first line. Everything [`SearchIndex::build`] derives from a
/// class's dump lines is a pure function of the class IR (pool-index
/// comments, absolute offsets, and class-index banners never produce
/// tokens), so a scan cached under the class's content-hash chunk key
/// can be replayed into any later dump of the same class — the
/// incremental re-index path of a version update.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClassTokens {
    /// Number of dump lines in the block.
    line_count: u32,
    /// Owner registrations (`Class descriptor` header lines) at their
    /// local line, in scan order. Normally exactly one per block, but
    /// string constants containing embedded newlines can fabricate
    /// extra header-shaped lines — recording them all keeps the replay
    /// faithful to a fresh scan even then.
    regs: Vec<(u32, ClassName)>,
    /// Token emissions in scan order: (local line, namespaced token).
    events: Vec<(u32, String)>,
}

impl ClassTokens {
    /// Approximate resident bytes, for cache budgeting.
    pub fn resident_bytes(&self) -> u64 {
        let ev: usize = self.events.iter().map(|(_, t)| t.len() + 28).sum();
        let regs: usize = self.regs.iter().map(|(_, c)| c.as_str().len() + 28).sum();
        (ev + regs + 16) as u64
    }
}

/// Cached class scans keyed by content-hash chunk key. Entries are
/// `Arc`-shared so a warm entry carries across versions without copying.
pub type TokenCache = std::collections::HashMap<u64, std::sync::Arc<ClassTokens>>;

/// One class block inside a dump, with the content key its cached scan
/// is filed under: lines `[start, end)` (see
/// [`backdroid_dex::dump_image_with_marks`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassSegment {
    /// Content-hash chunk key of the class (its wire-encoded IR).
    pub key: u64,
    /// First line of the block (inclusive).
    pub start: u32,
    /// One past the last line of the block (exclusive).
    pub end: u32,
}

/// The single scan/accumulate path shared by the fresh build and the
/// cache-replay build — one code path so the two cannot drift apart.
struct Builder {
    symbols: SymbolTable,
    lists: Vec<Vec<u32>>,
    classes: Vec<ClassName>,
    owners: Vec<u32>,
    current_owner: u32,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            symbols: SymbolTable::new(),
            lists: Vec::new(),
            classes: Vec::new(),
            owners: Vec::new(),
            current_owner: NO_OWNER,
        }
    }

    /// Posts one token occurrence at `line` (global index), interning
    /// the concatenation of `parts`.
    fn post(&mut self, parts: &[&str], line: u32) {
        let sym = self.symbols.intern(parts) as usize;
        if sym == self.lists.len() {
            self.lists.push(Vec::new());
        }
        let list = &mut self.lists[sym];
        if list.last() != Some(&line) {
            list.push(line);
        }
    }

    /// Registers a class section owner.
    fn register(&mut self, c: ClassName) {
        self.classes.push(c);
        self.current_owner = (self.classes.len() - 1) as u32;
    }

    /// Scans one line exactly as the fresh build does, optionally
    /// recording the scan (registrations + token events at local line
    /// `rec.1`) for the token cache.
    fn scan_line(&mut self, line: &str, global: u32, mut rec: Option<(&mut ClassTokens, u32)>) {
        if let Some(rest) = line.trim_start().strip_prefix("Class descriptor  : '") {
            if let Some(desc) = rest.strip_suffix('\'') {
                if let Some(Type::Object(c)) = Type::from_descriptor(desc) {
                    if let Some((tok, local)) = rec.as_mut() {
                        tok.regs.push((*local, c.clone()));
                    }
                    self.register(c);
                }
            }
        }
        self.owners.push(self.current_owner);
        match rec {
            Some((tok, local)) => scan_tokens(line, &mut |prefix, payload| {
                self.post(&[prefix, payload], global);
                let mut t = String::with_capacity(prefix.len() + payload.len());
                t.push_str(prefix);
                t.push_str(payload);
                tok.events.push((local, t));
            }),
            None => scan_tokens(line, &mut |prefix, payload| {
                self.post(&[prefix, payload], global);
            }),
        }
    }

    /// Replays a cached class scan whose block starts at global line
    /// `base`: registrations and per-line owners first, then the token
    /// events in their original order. Token posting order across the
    /// whole build equals the fresh build's (segments are replayed in
    /// dump order and events are line-major), so interned symbol ids —
    /// and therefore the serialized index — come out byte-identical.
    fn replay(&mut self, tok: &ClassTokens, base: u32) {
        let mut regs = tok.regs.iter().peekable();
        for local in 0..tok.line_count {
            while regs.peek().is_some_and(|(l, _)| *l == local) {
                let (_, c) = regs.next().expect("peeked");
                self.register(c.clone());
            }
            self.owners.push(self.current_owner);
        }
        for (local, token) in &tok.events {
            self.post(&[token], base + local);
        }
    }

    /// Flattens the per-symbol lists into the contiguous index layout.
    fn finish(self) -> SearchIndex {
        let mut offsets = Vec::with_capacity(self.lists.len() + 1);
        let mut flat = Vec::with_capacity(self.lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in &self.lists {
            flat.extend_from_slice(list);
            offsets.push(flat.len() as u32);
        }
        SearchIndex {
            symbols: self.symbols,
            offsets,
            lines: flat,
            classes: self.classes,
            owners: self.owners,
        }
    }
}

impl SearchIndex {
    /// Tokenizes the dump lines into posting lists. One pass, O(total
    /// text); built once per [`BytecodeText`](crate::BytecodeText), on
    /// the first indexed query. Every token occurrence is interned, so
    /// the pass allocates only for first-seen tokens.
    pub fn build<'a, I>(lines: I) -> SearchIndex
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut b = Builder::new();
        for (i, line) in lines.into_iter().enumerate() {
            b.scan_line(line, i as u32, None);
        }
        b.finish()
    }

    /// Builds the index incrementally: class blocks listed in
    /// `segments` (ordered, disjoint, in range) whose chunk key is
    /// warm in `cache` are replayed from their cached scan instead of
    /// re-tokenized; everything else — gap lines between segments
    /// (multidex headers, preamble) and cache-miss blocks — is scanned
    /// fresh, and fresh class scans are recorded.
    ///
    /// Returns the index, the next cache (an entry per segment, warm
    /// entries shared), and how many segments were reused. The index is
    /// **byte-identical** to `SearchIndex::build(lines)` — the
    /// incremental path changes cost, never content (enforced by the
    /// `delta_equivalence` suite).
    pub fn build_with_cache(
        lines: &[&str],
        segments: &[ClassSegment],
        cache: &TokenCache,
    ) -> (SearchIndex, TokenCache, usize) {
        use std::sync::Arc;
        let mut b = Builder::new();
        let mut next = TokenCache::with_capacity(segments.len());
        let mut reused = 0usize;
        let mut cursor = 0usize;
        for seg in segments {
            let (start, end) = (seg.start as usize, seg.end as usize);
            assert!(
                cursor <= start && start <= end && end <= lines.len(),
                "class segments must be ordered, disjoint, and in range"
            );
            for (i, line) in lines.iter().enumerate().take(start).skip(cursor) {
                b.scan_line(line, i as u32, None);
            }
            let extent = (end - start) as u32;
            match cache.get(&seg.key).filter(|t| t.line_count == extent) {
                Some(tok) => {
                    b.replay(tok, start as u32);
                    next.insert(seg.key, Arc::clone(tok));
                    reused += 1;
                }
                None => {
                    let mut tok = ClassTokens {
                        line_count: extent,
                        regs: Vec::new(),
                        events: Vec::new(),
                    };
                    for (i, line) in lines.iter().enumerate().take(end).skip(start) {
                        b.scan_line(line, i as u32, Some((&mut tok, (i - start) as u32)));
                    }
                    next.insert(seg.key, Arc::new(tok));
                }
            }
            cursor = end;
        }
        for (i, line) in lines.iter().enumerate().skip(cursor) {
            b.scan_line(line, i as u32, None);
        }
        (b.finish(), next, reused)
    }

    /// The posting range of symbol `sym`.
    fn list(&self, sym: Sym) -> &[u32] {
        let start = self.offsets[sym as usize] as usize;
        let end = self.offsets[sym as usize + 1] as usize;
        &self.lines[start..end]
    }

    /// Probes for the token `{prefix}{payload}` and returns its posting
    /// range — the allocation-free hot path.
    fn lookup_list(&self, prefix: &str, payload: &str) -> &[u32] {
        match self.symbols.lookup(&[prefix, payload]) {
            Some(sym) => self.list(sym),
            None => &[],
        }
    }

    /// Candidate lines for a search command — a superset of the lines the
    /// linear grep would match, in ascending order. The caller must
    /// re-verify each candidate against the command's needle and guard.
    pub fn candidates(&self, cmd: &SearchCmd) -> &[u32] {
        match cmd {
            SearchCmd::InvokeOf(m) => self.lookup_list("i:", &method_ref_string(m)),
            SearchCmd::MethodNameCall(n) => self.lookup_list("n:", n),
            SearchCmd::NewInstanceOf(c) | SearchCmd::ConstClass(c) => {
                self.lookup_list("c:", &class_descriptor(c))
            }
            SearchCmd::ConstString(s) => self.lookup_list("s:", s),
            SearchCmd::FieldAccess(f) | SearchCmd::StaticFieldAccess(f) => {
                self.lookup_list("f:", &field_ref_string(f))
            }
        }
    }

    /// Candidate lines containing a class descriptor anywhere (code
    /// operands, `Superclass` / `Interfaces` headers, field headers) —
    /// the posting list behind the class-level "invoked by" search.
    pub fn class_candidates(&self, descriptor: &str) -> &[u32] {
        self.lookup_list("c:", descriptor)
    }

    /// The class whose dump section contains line `i` (tracked from
    /// `Class descriptor` headers), if any.
    pub fn owner_class_of(&self, i: usize) -> Option<&ClassName> {
        let owner = *self.owners.get(i)?;
        if owner == NO_OWNER {
            None
        } else {
            self.classes.get(owner as usize)
        }
    }

    /// All posting lists as `(token, lines)` pairs in symbol-id order.
    pub fn iter_postings(&self) -> impl Iterator<Item = (&str, &[u32])> {
        (0..self.symbols.len() as u32).map(move |sym| (self.symbols.resolve(sym), self.list(sym)))
    }

    /// Wire-encodes the symbol table section: the interned strings in
    /// id order (see [`SymbolTable::write_wire`]).
    pub fn write_symbols(&self, w: &mut WireWriter) {
        self.symbols.write_wire(w);
    }

    /// Wire-encodes the postings section: one delta-encoded line list
    /// per symbol in id order (ids are implicit — list `k` belongs to
    /// symbol `k`), then the class table and the per-line owner map.
    /// Deterministic: equal indexes produce byte-identical encodings —
    /// the determinism the snapshot format requires.
    pub fn write_postings(&self, w: &mut WireWriter) {
        w.put_len(self.symbols.len());
        for sym in 0..self.symbols.len() as u32 {
            let lines = self.list(sym);
            w.put_len(lines.len());
            let mut prev = 0u32;
            for (i, &line) in lines.iter().enumerate() {
                let delta = if i == 0 { line } else { line - prev };
                w.put_uvarint(delta as u64);
                prev = line;
            }
        }
        w.put_len(self.classes.len());
        for c in &self.classes {
            wire::write_class_name(w, c);
        }
        w.put_len(self.owners.len());
        for &o in &self.owners {
            // NO_OWNER compresses to one byte instead of a 5-byte varint.
            w.put_uvarint(if o == NO_OWNER { 0 } else { o as u64 + 1 });
        }
    }

    /// Wire-encodes both index sections back to back (symbols, then
    /// postings) — the single-blob form used outside the sectioned
    /// snapshot container.
    pub fn write_wire(&self, w: &mut WireWriter) {
        self.write_symbols(w);
        self.write_postings(w);
    }

    /// Decodes a postings section written by
    /// [`SearchIndex::write_postings`] against an already-decoded
    /// symbol table, validating every structural invariant the query
    /// paths rely on: one list per symbol, strictly ascending
    /// deduplicated postings, line indices inside the
    /// `line_count`-line dump, one owner entry per line, and owner
    /// references inside the class table.
    pub fn read_postings(
        r: &mut WireReader<'_>,
        line_count: usize,
        symbols: SymbolTable,
    ) -> Result<SearchIndex, WireError> {
        let malformed = |m: &str| WireError::Malformed(m.to_string());
        let n_lists = r.get_len(1)?;
        if n_lists != symbols.len() {
            return Err(malformed("posting list count does not match symbols"));
        }
        let mut offsets = Vec::with_capacity(n_lists + 1);
        let mut flat: Vec<u32> = Vec::new();
        offsets.push(0);
        for _ in 0..n_lists {
            let n_lines = r.get_len(1)?;
            let mut acc = 0u64;
            for i in 0..n_lines {
                let delta = r.get_uvarint()?;
                if i > 0 && delta == 0 {
                    return Err(malformed("posting line repeated"));
                }
                acc = if i == 0 {
                    delta
                } else {
                    acc.checked_add(delta)
                        .ok_or_else(|| malformed("posting delta overflows"))?
                };
                if acc >= line_count as u64 {
                    return Err(malformed("posting line outside the dump"));
                }
                flat.push(acc as u32);
            }
            offsets.push(flat.len() as u32);
        }
        let n_classes = r.get_len(1)?;
        let mut classes = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            classes.push(wire::read_class_name(r)?);
        }
        let n_owners = r.get_len(1)?;
        if n_owners != line_count {
            return Err(malformed("owner table does not cover every line"));
        }
        let mut owners = Vec::with_capacity(n_owners);
        for _ in 0..n_owners {
            let v = r.get_uvarint()?;
            let owner = if v == 0 {
                NO_OWNER
            } else {
                let idx = v - 1;
                if idx >= classes.len() as u64 {
                    return Err(malformed("owner references a missing class"));
                }
                idx as u32
            };
            owners.push(owner);
        }
        Ok(SearchIndex {
            symbols,
            offsets,
            lines: flat,
            classes,
            owners,
        })
    }

    /// Decodes both index sections written by
    /// [`SearchIndex::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>, line_count: usize) -> Result<SearchIndex, WireError> {
        let symbols = SymbolTable::read_wire(r)?;
        SearchIndex::read_postings(r, line_count, symbols)
    }

    /// Structurally validates an encoded postings section (as checked
    /// by [`SearchIndex::read_postings`]) without building the index —
    /// the eager half of the lazy snapshot restore. `sym_count` is the
    /// symbol count reported by
    /// [`SymbolTable::validate_wire`](crate::SymbolTable::validate_wire).
    pub fn validate_postings(
        bytes: &[u8],
        line_count: usize,
        sym_count: usize,
    ) -> Result<(), WireError> {
        let malformed = |m: &str| WireError::Malformed(m.to_string());
        let mut r = WireReader::new(bytes);
        let n_lists = r.get_len(1)?;
        if n_lists != sym_count {
            return Err(malformed("posting list count does not match symbols"));
        }
        for _ in 0..n_lists {
            let n_lines = r.get_len(1)?;
            let mut acc = 0u64;
            for i in 0..n_lines {
                let delta = r.get_uvarint()?;
                if i > 0 && delta == 0 {
                    return Err(malformed("posting line repeated"));
                }
                acc = if i == 0 {
                    delta
                } else {
                    acc.checked_add(delta)
                        .ok_or_else(|| malformed("posting delta overflows"))?
                };
                if acc >= line_count as u64 {
                    return Err(malformed("posting line outside the dump"));
                }
            }
        }
        let n_classes = r.get_len(1)?;
        for _ in 0..n_classes {
            wire::read_class_name(&mut r)?;
        }
        let n_owners = r.get_len(1)?;
        if n_owners != line_count {
            return Err(malformed("owner table does not cover every line"));
        }
        for _ in 0..n_owners {
            // Owner entries are class index + 1, 0 meaning "no owner".
            let v = r.get_uvarint()?;
            if v > n_classes as u64 {
                return Err(malformed("owner references a missing class"));
            }
        }
        if !r.is_empty() {
            return Err(malformed("trailing bytes after postings"));
        }
        Ok(())
    }

    /// Number of distinct tokens indexed.
    pub fn token_count(&self) -> usize {
        self.symbols.len()
    }

    /// Total postings stored across all tokens.
    pub fn posting_count(&self) -> usize {
        self.lines.len()
    }
}

/// Extracts every lexical token occurrence from one line, calling
/// `emit(namespace_prefix, payload)` per occurrence. Shared between the
/// interned build and the string-keyed reference build so both see
/// exactly the same token stream.
fn scan_tokens(line: &str, emit: &mut impl FnMut(&str, &str)) {
    // Quote-delimited literals: enumerate every quote pair so any
    // needle of the form `"…"` present in the line has its content
    // keyed (dump lines carry at most one literal, so this stays
    // quadratic only in theory).
    let quotes: Vec<usize> = line
        .char_indices()
        .filter(|&(_, c)| c == '"')
        .map(|(p, _)| p)
        .collect();
    for (a, &qa) in quotes.iter().enumerate() {
        for &qb in &quotes[a + 1..] {
            emit("s:", &line[qa + 1..qb]);
        }
    }

    // Bare method-name calls: every `;.name:(` occurrence, parsed
    // lexically so even refs the descriptor scan below cannot parse
    // still land in the name posting list.
    let mut p = 0;
    while let Some(off) = line[p..].find(";.") {
        let start = p + off + 2;
        if let Some(colon) = line[start..].find(':') {
            let name = &line[start..start + colon];
            if !name.is_empty() && line[start + colon + 1..].starts_with('(') {
                emit("n:", name);
            }
        }
        p = start;
    }

    // Class descriptors and member references: try a descriptor parse
    // at every `L` byte, mirroring how the linear grep's needles can
    // match at any position.
    for (p, _) in line.char_indices().filter(|&(_, c)| c == 'L') {
        let Some(desc_len) = object_descriptor_len(&line[p..]) else {
            continue;
        };
        emit("c:", &line[p..p + desc_len]);
        let rest = &line[p + desc_len..];
        let Some(member) = rest.strip_prefix('.') else {
            continue;
        };
        let Some(colon) = member.find(':') else {
            continue;
        };
        let name = &member[..colon];
        if name.is_empty() {
            continue;
        }
        let after = &member[colon + 1..];
        if after.starts_with('(') {
            // Method reference: `Lc;.name:(params)ret`.
            if let Some(proto_len) = proto_prefix_len(after) {
                let end = p + desc_len + 1 + colon + 1 + proto_len;
                emit("i:", &line[p..end]);
            }
        } else if let Some((_, rem)) = Type::parse_descriptor_prefix(after) {
            // Field reference: `Lc;.name:type`.
            let end = p + desc_len + 1 + colon + 1 + (after.len() - rem.len());
            emit("f:", &line[p..end]);
        }
    }
}

/// Builds the posting lists as plain `String`-keyed maps via the same
/// tokenizer the interned build uses — the reference implementation the
/// interning layer is property-tested against. Not a public API.
#[doc(hidden)]
pub fn string_keyed_postings<'a, I>(lines: I) -> std::collections::BTreeMap<String, Vec<u32>>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut postings: std::collections::BTreeMap<String, Vec<u32>> = Default::default();
    for (i, line) in lines.into_iter().enumerate() {
        let i = i as u32;
        scan_tokens(line, &mut |prefix, payload| {
            let list = postings.entry(format!("{prefix}{payload}")).or_default();
            if list.last() != Some(&i) {
                list.push(i);
            }
        });
    }
    postings
}

/// Length of the `Lpkg/Cls;` object descriptor at the start of `s`, if
/// one is present. Mirrors the `L` branch of
/// [`Type::parse_descriptor_prefix`]: any non-empty run of characters up
/// to the first `;`.
fn object_descriptor_len(s: &str) -> Option<usize> {
    if !s.starts_with('L') {
        return None;
    }
    let end = s.find(';')?;
    if end < 2 {
        return None;
    }
    Some(end + 1)
}

/// Length of the `(params)ret` proto at the start of `s`, if one parses.
fn proto_prefix_len(s: &str) -> Option<usize> {
    let mut cur = s.strip_prefix('(')?;
    loop {
        if let Some(after_paren) = cur.strip_prefix(')') {
            let (_, rem) = Type::parse_descriptor_prefix(after_paren)?;
            return Some(s.len() - rem.len());
        }
        let (_, rem) = Type::parse_descriptor_prefix(cur)?;
        cur = rem;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::MethodSig;

    fn build(src: &[&str]) -> SearchIndex {
        SearchIndex::build(src.iter().copied())
    }

    #[test]
    fn invoke_refs_are_keyed_exactly() {
        let idx = build(&[
            "0000: invoke-virtual {v1}, Lcom/a/Server;.start:()V // method@0001",
            "0002: nop // spacer",
            "0004: invoke-static {}, Lcom/a/Util;.go:(ILjava/lang/String;)[B // method@0002",
        ]);
        let m = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
        assert_eq!(idx.candidates(&SearchCmd::InvokeOf(m)), &[0]);
        let g = MethodSig::new(
            "com.a.Util",
            "go",
            vec![Type::Int, Type::string()],
            Type::array(Type::Byte),
        );
        assert_eq!(idx.candidates(&SearchCmd::InvokeOf(g)), &[2]);
        assert_eq!(
            idx.candidates(&SearchCmd::MethodNameCall("go".into())),
            &[2]
        );
    }

    #[test]
    fn string_literal_pairs_cover_substring_needles() {
        let idx = build(&["0000: const-string v0, \"AES/ECB/PKCS5Padding\" // string@0001"]);
        assert_eq!(
            idx.candidates(&SearchCmd::ConstString("AES/ECB/PKCS5Padding".into())),
            &[0]
        );
        // Partial content is not a full quote-pair token.
        assert!(idx
            .candidates(&SearchCmd::ConstString("AES/ECB".into()))
            .is_empty());
    }

    #[test]
    fn class_descriptor_occurrences_index_headers_and_owners() {
        let idx = build(&[
            "Class #0            -",
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "  Superclass        : 'Lcom/a/Base;'",
            "0000: new-instance v0, Lcom/a/Base; // type@0002",
        ]);
        let base = ClassName::new("com.a.Base");
        assert_eq!(idx.class_candidates("Lcom/a/Base;"), &[2, 3]);
        assert_eq!(idx.candidates(&SearchCmd::NewInstanceOf(base)), &[2, 3]);
        assert!(idx.owner_class_of(0).is_none());
        assert_eq!(idx.owner_class_of(2).unwrap().as_str(), "com.a.Sub");
        assert_eq!(idx.owner_class_of(3).unwrap().as_str(), "com.a.Sub");
    }

    #[test]
    fn field_refs_distinguish_type_suffix() {
        let idx = build(&[
            "0000: sget v0, Lcom/a/Server;.PORT:I // field@0000",
            "0001: iget-object v1, v2, Lcom/a/Server;.host:Ljava/lang/String; // field@0001",
        ]);
        let port = backdroid_ir::FieldSig::new("com.a.Server", "PORT", Type::Int);
        assert_eq!(idx.candidates(&SearchCmd::FieldAccess(port.clone())), &[0]);
        assert_eq!(idx.candidates(&SearchCmd::StaticFieldAccess(port)), &[0]);
        let host = backdroid_ir::FieldSig::new("com.a.Server", "host", Type::string());
        assert_eq!(idx.candidates(&SearchCmd::FieldAccess(host)), &[1]);
    }

    #[test]
    fn interned_build_matches_string_keyed_reference() {
        let src = [
            "Class #0            -",
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "0000: invoke-virtual {v1}, Lcom/a/Server;.start:()V // method@0001",
            "0001: const-string v0, \"AES\" // string@0000",
            "0001: const-string v0, \"AES\" // string@0000",
            "0002: sget v0, Lcom/a/Server;.PORT:I // field@0000",
        ];
        let idx = build(&src);
        let reference = string_keyed_postings(src.iter().copied());
        let mut interned: Vec<(String, Vec<u32>)> = idx
            .iter_postings()
            .map(|(tok, lines)| (tok.to_string(), lines.to_vec()))
            .collect();
        interned.sort();
        let flattened: Vec<(String, Vec<u32>)> = reference.into_iter().collect();
        assert_eq!(interned, flattened);
        assert_eq!(
            idx.posting_count(),
            idx.iter_postings().map(|(_, l)| l.len()).sum()
        );
    }

    #[test]
    fn wire_round_trip_is_byte_identical() {
        let idx = build(&[
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "0000: invoke-virtual {v1}, Lcom/a/Server;.start:()V // method@0001",
            "0001: const-string v0, \"AES\" // string@0000",
        ]);
        let mut w = WireWriter::new();
        idx.write_wire(&mut w);
        let bytes = w.into_bytes();
        let back = SearchIndex::read_wire(&mut WireReader::new(&bytes), 3).unwrap();
        assert_eq!(back.token_count(), idx.token_count());
        assert_eq!(back.posting_count(), idx.posting_count());
        let mut w2 = WireWriter::new();
        back.write_wire(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        // The sectioned validators accept exactly the split encoding.
        let mut ws = WireWriter::new();
        idx.write_symbols(&mut ws);
        let sym_bytes = ws.into_bytes();
        let mut wp = WireWriter::new();
        idx.write_postings(&mut wp);
        let post_bytes = wp.into_bytes();
        let n = SymbolTable::validate_wire(&sym_bytes).unwrap();
        assert_eq!(n, idx.token_count());
        SearchIndex::validate_postings(&post_bytes, 3, n).unwrap();
        // Truncations of the postings section are rejected.
        for cut in 0..post_bytes.len() {
            assert!(SearchIndex::validate_postings(&post_bytes[..cut], 3, n).is_err());
        }
    }

    #[test]
    fn prefix_parsers_reject_garbage() {
        assert_eq!(object_descriptor_len("not a descriptor"), None);
        assert_eq!(object_descriptor_len("L;"), None);
        assert_eq!(object_descriptor_len("Lcom/a/B; trailing"), Some(9));
        assert_eq!(proto_prefix_len("()V"), Some(3));
        assert_eq!(proto_prefix_len("(ILjava/lang/String;)[B rest"), Some(23));
        assert_eq!(proto_prefix_len("(Q)V"), None);
        assert_eq!(proto_prefix_len("no parens"), None);
    }
}
