//! The indexed bytecode plaintext.
//!
//! [`BytecodeText`] wraps one merged dexdump output and pre-computes the
//! line → containing-method map that turns a grep hit into a caller
//! method (paper §IV-A step 2: "identify the corresponding method that
//! contains the invocation found in the bytecode plaintext").

use crate::index::SearchIndex;
use backdroid_ir::wire::{self, WireError, WireReader, WireWriter};
use backdroid_ir::{ClassName, MethodSig, Type};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Estimated heap overhead per stored line / descriptor (String header,
/// allocator slack, and the `line_to_span` slot) used by
/// [`BytecodeText::resident_bytes`].
const PER_LINE_OVERHEAD: u64 = 32;

/// Estimated bytes per [`MethodSpan`] (signature plus indices) used by
/// [`BytecodeText::resident_bytes`].
const PER_SPAN_OVERHEAD: u64 = 96;

/// One method's span inside the dump.
#[derive(Clone, Debug)]
pub struct MethodSpan {
    /// The method defined over this span.
    pub sig: MethodSig,
    /// First line index of the span (the `#k : (in L...;)` header).
    pub start_line: usize,
    /// One past the last line of the span.
    pub end_line: usize,
}

/// The disassembled bytecode plaintext, line-indexed.
#[derive(Debug)]
pub struct BytecodeText {
    lines: Vec<String>,
    spans: Vec<MethodSpan>,
    /// For each line, the index into `spans` of the containing method.
    line_to_span: Vec<Option<usize>>,
    /// All class descriptors seen (`Lcom/a/B;`), used for `$`-restoration.
    descriptors: BTreeSet<String>,
    /// Posting lists over the lines, built once on first use so the
    /// [`Indexed`](crate::Indexed) backend answers commands without
    /// scanning the dump — and the [`LinearScan`](crate::LinearScan)
    /// oracle never pays the tokenization pass.
    index: OnceLock<SearchIndex>,
}

impl BytecodeText {
    /// Indexes a dexdump plaintext.
    pub fn index(dump: &str) -> BytecodeText {
        let lines: Vec<String> = dump.lines().map(str::to_string).collect();
        let mut spans: Vec<MethodSpan> = Vec::new();
        let mut line_to_span: Vec<Option<usize>> = vec![None; lines.len()];
        let mut descriptors = BTreeSet::new();

        // Streaming parse state.
        let mut pending_class: Option<ClassName> = None; // from "(in L...;)"
        let mut pending_name: Option<String> = None;
        let mut current_span: Option<usize> = None;

        for (i, line) in lines.iter().enumerate() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("Class descriptor  : '") {
                if let Some(desc) = rest.strip_suffix('\'') {
                    descriptors.insert(desc.to_string());
                }
                current_span = None;
                continue;
            }
            // Method header: `#0              : (in Lcom/a/B;)`
            if trimmed.starts_with('#') && trimmed.contains(": (in L") {
                if let Some(start) = trimmed.find("(in ") {
                    let desc = trimmed[start + 4..].trim_end_matches(')');
                    if let Some(Type::Object(c)) = Type::from_descriptor(desc) {
                        // Close any open span at this header.
                        if let Some(s) = current_span {
                            spans[s].end_line = i;
                        }
                        current_span = None;
                        pending_class = Some(c);
                        pending_name = None;
                        descriptors.insert(desc.to_string());
                    }
                }
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("name          : '") {
                if pending_class.is_some() {
                    pending_name = rest.strip_suffix('\'').map(str::to_string);
                }
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("type          : '") {
                if let (Some(class), Some(name)) = (pending_class.clone(), pending_name.clone()) {
                    if let Some(proto) = rest.strip_suffix('\'') {
                        if let Some((params, ret)) = parse_proto(proto) {
                            let sig = MethodSig::new(class, name, params, ret);
                            spans.push(MethodSpan {
                                sig,
                                start_line: i,
                                end_line: lines.len(),
                            });
                            current_span = Some(spans.len() - 1);
                            pending_class = None;
                            pending_name = None;
                        }
                    }
                }
                continue;
            }
            if let Some(s) = current_span {
                line_to_span[i] = Some(s);
            }
        }
        BytecodeText {
            lines,
            spans,
            line_to_span,
            descriptors,
            index: OnceLock::new(),
        }
    }

    /// The raw lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// A deterministic estimate of this text's resident memory footprint
    /// in bytes: the line contents plus per-line bookkeeping, the method
    /// spans, and the descriptor set. Deliberately *excludes* the lazily
    /// built posting-list index so the estimate is a pure function of the
    /// dump — the serving layer's byte-budgeted app store needs the same
    /// number whether or not an indexed query ran yet.
    pub fn resident_bytes(&self) -> u64 {
        let line_bytes: u64 = self
            .lines
            .iter()
            .map(|l| l.len() as u64 + PER_LINE_OVERHEAD)
            .sum();
        let span_bytes = self.spans.len() as u64 * PER_SPAN_OVERHEAD;
        let desc_bytes: u64 = self
            .descriptors
            .iter()
            .map(|d| d.len() as u64 + PER_LINE_OVERHEAD)
            .sum();
        line_bytes + span_bytes + desc_bytes
    }

    /// All method spans in dump order.
    pub fn spans(&self) -> &[MethodSpan] {
        &self.spans
    }

    /// The method containing line `i`, if the line is inside a code item.
    pub fn method_at_line(&self, i: usize) -> Option<&MethodSig> {
        let span = self.line_to_span.get(i).copied().flatten()?;
        Some(&self.spans[span].sig)
    }

    /// All class descriptors in the dump.
    pub fn descriptors(&self) -> &BTreeSet<String> {
        &self.descriptors
    }

    /// The posting lists over this dump, consumed by the
    /// [`Indexed`](crate::Indexed) backend. Built by one tokenization
    /// pass on first access and cached for the text's lifetime.
    pub fn search_index(&self) -> &SearchIndex {
        self.index.get_or_init(|| SearchIndex::build(&self.lines))
    }

    /// Wire-encodes the indexed text: lines, method spans, the
    /// line → method map, the descriptor set, **and** the posting-list
    /// index (built now if no indexed query ran yet) — so a restored
    /// text never pays the §III parse or the tokenization pass again.
    /// Deterministic: equal texts encode byte-identically.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.lines.len());
        for line in &self.lines {
            w.put_str(line);
        }
        w.put_len(self.spans.len());
        for s in &self.spans {
            wire::write_method_sig(w, &s.sig);
            w.put_len(s.start_line);
            w.put_len(s.end_line);
        }
        w.put_len(self.line_to_span.len());
        for slot in &self.line_to_span {
            // `None` compresses to one byte; `Some(i)` is `i + 1`.
            w.put_uvarint(match slot {
                None => 0,
                Some(i) => *i as u64 + 1,
            });
        }
        w.put_len(self.descriptors.len());
        for d in &self.descriptors {
            w.put_str(d);
        }
        self.search_index().write_wire(w);
    }

    /// Decodes a text written by [`BytecodeText::write_wire`],
    /// validating the structural invariants the query paths index by
    /// (span bounds inside the dump, line map entries inside the span
    /// table, a map entry per line) and pre-populating the posting-list
    /// index from the snapshot instead of re-tokenizing.
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<BytecodeText, WireError> {
        let malformed = |m: &str| WireError::Malformed(m.to_string());
        let n_lines = r.get_len(1)?;
        let mut lines = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            lines.push(r.get_str()?.to_string());
        }
        let n_spans = r.get_len(1)?;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let sig = wire::read_method_sig(r)?;
            let start_line = r.get_uvarint()? as usize;
            let end_line = r.get_uvarint()? as usize;
            if start_line > end_line || end_line > lines.len() {
                return Err(malformed("method span outside the dump"));
            }
            spans.push(MethodSpan {
                sig,
                start_line,
                end_line,
            });
        }
        let n_map = r.get_len(1)?;
        if n_map != lines.len() {
            return Err(malformed("line map does not cover every line"));
        }
        let mut line_to_span = Vec::with_capacity(n_map);
        for _ in 0..n_map {
            let v = r.get_uvarint()?;
            let slot = if v == 0 {
                None
            } else {
                let idx = v - 1;
                if idx >= spans.len() as u64 {
                    return Err(malformed("line map references a missing span"));
                }
                Some(idx as usize)
            };
            line_to_span.push(slot);
        }
        let n_desc = r.get_len(1)?;
        let mut descriptors = BTreeSet::new();
        for _ in 0..n_desc {
            descriptors.insert(r.get_str()?.to_string());
        }
        let index = SearchIndex::read_wire(r, lines.len())?;
        let cell = OnceLock::new();
        let _ = cell.set(index);
        Ok(BytecodeText {
            lines,
            spans,
            line_to_span,
            descriptors,
            index: cell,
        })
    }

    /// Restores a dotted banner name printed by dexdump
    /// (`com.a.Outer.1.run:()V`, inner-class `$` flattened to `.`) to the
    /// real method signature, by testing candidate `$` placements against
    /// the class descriptors present in the dump (paper §IV-A step 2:
    /// "an inner class needs to add back the symbol `$`").
    pub fn restore_banner(&self, banner: &str) -> Option<MethodSig> {
        let (dotted_and_name, proto) = banner.rsplit_once(':')?;
        let (dotted_class, name) = dotted_and_name.rsplit_once('.')?;
        let (params, ret) = parse_proto(proto)?;
        // Try every split of the dotted class into package + class parts:
        // the class part joins with `$`, the package part with `.`.
        let segments: Vec<&str> = dotted_class.split('.').collect();
        for split in (0..segments.len()).rev() {
            let pkg = segments[..split].join(".");
            let cls = segments[split..].join("$");
            let candidate = if pkg.is_empty() {
                cls
            } else {
                format!("{pkg}.{cls}")
            };
            let desc = format!("L{};", candidate.replace('.', "/"));
            if self.descriptors.contains(&desc) {
                return Some(MethodSig::new(candidate, name, params, ret));
            }
        }
        None
    }
}

/// Parses a proto string `(I[BLjava/lang/String;)V` into parameter types
/// and return type.
pub fn parse_proto(proto: &str) -> Option<(Vec<Type>, Type)> {
    let rest = proto.strip_prefix('(')?;
    let (params_str, ret_str) = rest.split_once(')')?;
    let mut params = Vec::new();
    let mut cur = params_str;
    while !cur.is_empty() {
        let (ty, next) = Type::parse_descriptor_prefix(cur)?;
        params.push(ty);
        cur = next;
    }
    let ret = Type::from_descriptor(ret_str)?;
    Some((params, ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_dex::{dump_image, DexImage};
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Program};

    fn sample_program() -> Program {
        let outer = ClassName::new("com.a.Outer");
        let inner = ClassName::new("com.a.Outer$1");
        let mut run = MethodBuilder::public(&inner, "run", vec![], Type::Void);
        let this = run.this();
        run.invoke(InvokeExpr::call_virtual(
            MethodSig::new("com.a.Server", "start", vec![], Type::Void),
            this,
            vec![],
        ));
        let mut go = MethodBuilder::public_static(&outer, "go", vec![Type::Int], Type::Int);
        go.ret(backdroid_ir::Value::int(0));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new(inner.as_str())
                .method(run.build())
                .build(),
        );
        p.add_class(ClassBuilder::new(outer.as_str()).method(go.build()).build());
        let mut start =
            MethodBuilder::public(&ClassName::new("com.a.Server"), "start", vec![], Type::Void);
        start.ret_void();
        p.add_class(
            ClassBuilder::new("com.a.Server")
                .method(start.build())
                .build(),
        );
        p
    }

    fn indexed() -> BytecodeText {
        let p = sample_program();
        let text = dump_image(&DexImage::encode(&p));
        BytecodeText::index(&text)
    }

    #[test]
    fn spans_cover_all_methods() {
        let t = indexed();
        let names: Vec<String> = t.spans().iter().map(|s| s.sig.to_string()).collect();
        assert!(names.contains(&"<com.a.Outer$1: void run()>".to_string()));
        assert!(names.contains(&"<com.a.Outer: int go(int)>".to_string()));
        assert!(names.contains(&"<com.a.Server: void start()>".to_string()));
    }

    #[test]
    fn hit_lines_map_to_containing_method() {
        let t = indexed();
        let needle = "Lcom/a/Server;.start:()V";
        let hit_line = t
            .lines()
            .iter()
            .position(|l| l.contains("invoke-virtual") && l.contains(needle))
            .expect("invoke line present");
        let m = t.method_at_line(hit_line).expect("line inside a method");
        assert_eq!(m.to_string(), "<com.a.Outer$1: void run()>");
    }

    #[test]
    fn header_lines_have_no_method() {
        let t = indexed();
        let header = t
            .lines()
            .iter()
            .position(|l| l.contains("Class descriptor"))
            .unwrap();
        assert!(t.method_at_line(header).is_none());
    }

    #[test]
    fn banner_restoration_adds_back_dollar() {
        let t = indexed();
        let sig = t
            .restore_banner("com.a.Outer.1.run:()V")
            .expect("restorable banner");
        assert_eq!(sig.class().as_str(), "com.a.Outer$1");
        assert_eq!(sig.name(), "run");
        // Non-inner class restores too.
        let sig = t.restore_banner("com.a.Outer.go:(I)I").unwrap();
        assert_eq!(sig.class().as_str(), "com.a.Outer");
        // Unknown class yields None.
        assert!(t.restore_banner("com.b.Missing.run:()V").is_none());
    }

    #[test]
    fn resident_bytes_is_deterministic_and_tracks_content() {
        let t = indexed();
        let estimate = t.resident_bytes();
        assert!(
            estimate > t.lines().iter().map(|l| l.len() as u64).sum::<u64>(),
            "estimate must cover at least the line contents"
        );
        // A pure function of the dump: re-indexing the same text gives the
        // same number, and touching the lazy posting index must not move it.
        let p = sample_program();
        let again = BytecodeText::index(&dump_image(&DexImage::encode(&p)));
        assert_eq!(again.resident_bytes(), estimate);
        let _ = again.search_index();
        assert_eq!(again.resident_bytes(), estimate);
    }

    #[test]
    fn wire_round_trip_preserves_queries_and_bytes() {
        let t = indexed();
        let _ = t.search_index(); // force the lazy index before encoding
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        let back = BytecodeText::read_wire(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back.lines(), t.lines());
        assert_eq!(back.descriptors(), t.descriptors());
        assert_eq!(back.spans().len(), t.spans().len());
        for i in 0..t.lines().len() {
            assert_eq!(back.method_at_line(i), t.method_at_line(i), "line {i}");
        }
        assert_eq!(
            back.search_index().posting_count(),
            t.search_index().posting_count()
        );
        assert_eq!(
            back.search_index().token_count(),
            t.search_index().token_count()
        );
        assert_eq!(
            back.restore_banner("com.a.Outer.1.run:()V"),
            t.restore_banner("com.a.Outer.1.run:()V")
        );
        // Re-encoding the decoded text is byte-identical.
        let mut w2 = WireWriter::new();
        back.write_wire(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        // A restored text never re-tokenizes: its resident estimate still
        // matches a fresh parse (the index is excluded by design).
        assert_eq!(back.resident_bytes(), t.resident_bytes());
    }

    #[test]
    fn wire_truncations_fail_cleanly() {
        let t = indexed();
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                BytecodeText::read_wire(&mut WireReader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn proto_parsing() {
        let (params, ret) = parse_proto("(I[BLjava/lang/String;)V").unwrap();
        assert_eq!(params.len(), 3);
        assert_eq!(ret, Type::Void);
        assert!(parse_proto("no-parens").is_none());
        assert!(parse_proto("(Q)V").is_none());
    }
}
