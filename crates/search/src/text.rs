//! The indexed bytecode plaintext, arena-backed and lazily restorable.
//!
//! [`BytecodeText`] wraps one merged dexdump output and pre-computes the
//! line → containing-method map that turns a grep hit into a caller
//! method (paper §IV-A step 2: "identify the corresponding method that
//! contains the invocation found in the bytecode plaintext").
//!
//! # Arena layout
//!
//! Lines are not stored as a `Vec<String>`: the whole dump lives in
//! **one** contiguous text arena (`String`) addressed by a
//! `Vec<(u32, u32)>` offset/len table, so a line is a borrowed `&str`
//! slice — one allocation for the entire dump instead of one per line,
//! and [`BytecodeText::resident_bytes`] is computed from exactly that
//! layout (arena bytes + fixed per-line table overhead + spans +
//! descriptors).
//!
//! # Lazy sectioned restore
//!
//! The text serializes as four independent wire sections — text arena,
//! method spans, symbol table, postings (see the `write_*_section`
//! methods) — and [`BytecodeText::from_sections`] rebuilds it from
//! those blobs *without decoding them*: each section is structurally
//! validated up front (so a malformed snapshot is rejected eagerly, as
//! a full decode would), then parked behind a `OnceLock` and
//! materialized on first touch. A restored app that only answers
//! manifest-level questions never pays the arena copy or the
//! posting-list build; the first search command materializes exactly
//! what it reads.

use crate::index::SearchIndex;
use crate::symbol::SymbolTable;
use backdroid_ir::wire::{self, WireError, WireReader, WireWriter};
use backdroid_ir::{ClassName, MethodSig, Type};
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Fixed per-line bookkeeping counted by
/// [`BytecodeText::resident_bytes`]: the 8-byte offset/len table entry
/// plus the 4-byte line → span map slot.
const PER_LINE_OVERHEAD: u64 = 12;

/// Estimated bytes per [`MethodSpan`] (signature plus indices) used by
/// [`BytecodeText::resident_bytes`].
const PER_SPAN_OVERHEAD: u64 = 96;

/// Estimated heap overhead per stored descriptor string.
const PER_DESC_OVERHEAD: u64 = 32;

/// Sentinel in the line → span map for "line is outside any method".
const NO_SPAN: u32 = u32::MAX;

/// One method's span inside the dump.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodSpan {
    /// The method defined over this span.
    pub sig: MethodSig,
    /// First line index of the span (the `#k : (in L...;)` header).
    pub start_line: usize,
    /// One past the last line of the span.
    pub end_line: usize,
}

/// The eagerly-usable half of a text: arena, line table, spans,
/// descriptors. Everything [`BytecodeText`] answers from except the
/// posting-list index.
#[derive(Debug, Default)]
struct TextBody {
    /// Every dump line concatenated back to back (no separators).
    arena: String,
    /// Per-line `(offset, len)` into `arena`.
    table: Vec<(u32, u32)>,
    spans: Vec<MethodSpan>,
    /// For each line, the index into `spans` of the containing method
    /// (`NO_SPAN` outside any method).
    line_to_span: Vec<u32>,
    /// All class descriptors seen (`Lcom/a/B;`), used for `$`-restoration.
    descriptors: BTreeSet<String>,
}

impl TextBody {
    fn line(&self, i: usize) -> &str {
        let (off, len) = self.table[i];
        &self.arena[off as usize..(off + len) as usize]
    }

    fn lines(&self) -> impl Iterator<Item = &str> {
        self.table
            .iter()
            .map(|&(off, len)| &self.arena[off as usize..(off + len) as usize])
    }
}

/// A value that is either already built or parked as validated wire
/// bytes, materialized on first touch. The `OnceLock` carries the
/// built value; the mutex serializes the one decode so concurrent
/// first readers do the work exactly once (the same single-flight
/// shape as the engine's command cache).
#[derive(Debug)]
struct Lazy<T> {
    cell: OnceLock<T>,
    pending: Mutex<Option<(Vec<u8>, Vec<u8>)>>,
}

impl<T> Lazy<T> {
    /// Already materialized.
    fn ready(value: T) -> Lazy<T> {
        let cell = OnceLock::new();
        let _ = cell.set(value);
        Lazy {
            cell,
            pending: Mutex::new(None),
        }
    }

    /// Not materialized, no parked bytes — `force`'s fallback builds it.
    fn absent() -> Lazy<T> {
        Lazy {
            cell: OnceLock::new(),
            pending: Mutex::new(None),
        }
    }

    /// Parked as two validated section blobs.
    fn deferred(a: Vec<u8>, b: Vec<u8>) -> Lazy<T> {
        Lazy {
            cell: OnceLock::new(),
            pending: Mutex::new(Some((a, b))),
        }
    }

    fn is_materialized(&self) -> bool {
        self.cell.get().is_some()
    }

    /// Returns the value, materializing it via `init` on first touch.
    /// `init` receives the parked bytes, if any; they are dropped after
    /// materialization.
    fn force(&self, init: impl FnOnce(Option<(Vec<u8>, Vec<u8>)>) -> T) -> &T {
        if let Some(v) = self.cell.get() {
            return v;
        }
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if self.cell.get().is_none() {
            let taken = pending.take();
            let _ = self.cell.set(init(taken));
        }
        drop(pending);
        self.cell.get().expect("lazy cell just initialized")
    }
}

/// The disassembled bytecode plaintext, line-indexed.
///
/// Line count and resident-size estimate are stored eagerly, so the
/// serving layer's byte budgeting and the engine's `lines_scanned`
/// accounting never force a lazily restored text to materialize.
#[derive(Debug)]
pub struct BytecodeText {
    line_count: usize,
    resident: u64,
    body: Lazy<TextBody>,
    /// Posting lists over the lines, built (or decoded) once on first
    /// use so the [`Indexed`](crate::Indexed) backend answers commands
    /// without scanning the dump — and the
    /// [`LinearScan`](crate::LinearScan) oracle never pays the
    /// tokenization pass.
    index: Lazy<SearchIndex>,
}

impl BytecodeText {
    /// Indexes a dexdump plaintext.
    pub fn index(dump: &str) -> BytecodeText {
        let body = parse_body(dump);
        let line_count = body.table.len();
        let resident = resident_of(&body);
        BytecodeText {
            line_count,
            resident,
            body: Lazy::ready(body),
            index: Lazy::absent(),
        }
    }

    /// Indexes a dexdump plaintext, building the posting-list index
    /// **eagerly and incrementally**: class blocks (per `segments`)
    /// whose content key is warm in `cache` replay their cached token
    /// scan instead of re-tokenizing — the re-index path of a version
    /// update, where only changed classes pay the scan. The resulting
    /// text answers every query identically to [`BytecodeText::index`]
    /// (see [`SearchIndex::build_with_cache`]). Returns the text, the
    /// next token cache, and the number of class blocks reused.
    pub fn index_with_token_cache(
        dump: &str,
        segments: &[crate::index::ClassSegment],
        cache: &crate::index::TokenCache,
    ) -> (BytecodeText, crate::index::TokenCache, usize) {
        let body = parse_body(dump);
        let lines: Vec<&str> = body.lines().collect();
        let (index, next, reused) = SearchIndex::build_with_cache(&lines, segments, cache);
        drop(lines);
        let line_count = body.table.len();
        let resident = resident_of(&body);
        (
            BytecodeText {
                line_count,
                resident,
                body: Lazy::ready(body),
                index: Lazy::ready(index),
            },
            next,
            reused,
        )
    }
}

/// The §III streaming parse shared by both indexing constructors:
/// arena, line table, method spans, descriptors.
fn parse_body(dump: &str) -> TextBody {
    {
        let mut body = TextBody::default();

        // Streaming parse state.
        let mut pending_class: Option<ClassName> = None; // from "(in L...;)"
        let mut pending_name: Option<String> = None;
        let mut current_span: Option<usize> = None;
        // Spans left open at end of input close at the line count; mark
        // them with a placeholder fixed up after the loop.
        const OPEN: usize = usize::MAX;

        for line in dump.lines() {
            let i = body.table.len();
            let off = body.arena.len();
            body.arena.push_str(line);
            body.table.push((off as u32, line.len() as u32));
            body.line_to_span.push(NO_SPAN);
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("Class descriptor  : '") {
                if let Some(desc) = rest.strip_suffix('\'') {
                    body.descriptors.insert(desc.to_string());
                }
                current_span = None;
                continue;
            }
            // Method header: `#0              : (in Lcom/a/B;)`
            if trimmed.starts_with('#') && trimmed.contains(": (in L") {
                if let Some(start) = trimmed.find("(in ") {
                    let desc = trimmed[start + 4..].trim_end_matches(')');
                    if let Some(Type::Object(c)) = Type::from_descriptor(desc) {
                        // Close any open span at this header.
                        if let Some(s) = current_span {
                            body.spans[s].end_line = i;
                        }
                        current_span = None;
                        pending_class = Some(c);
                        pending_name = None;
                        body.descriptors.insert(desc.to_string());
                    }
                }
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("name          : '") {
                if pending_class.is_some() {
                    pending_name = rest.strip_suffix('\'').map(str::to_string);
                }
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("type          : '") {
                if let (Some(class), Some(name)) = (pending_class.clone(), pending_name.clone()) {
                    if let Some(proto) = rest.strip_suffix('\'') {
                        if let Some((params, ret)) = parse_proto(proto) {
                            let sig = MethodSig::new(class, name, params, ret);
                            body.spans.push(MethodSpan {
                                sig,
                                start_line: i,
                                end_line: OPEN,
                            });
                            current_span = Some(body.spans.len() - 1);
                            pending_class = None;
                            pending_name = None;
                        }
                    }
                }
                continue;
            }
            if let Some(s) = current_span {
                body.line_to_span[i] = s as u32;
            }
        }
        let line_count = body.table.len();
        assert!(
            body.arena.len() <= u32::MAX as usize,
            "dump exceeds the 4 GiB arena limit"
        );
        for s in &mut body.spans {
            if s.end_line == OPEN {
                s.end_line = line_count;
            }
        }
        body
    }
}

impl BytecodeText {
    /// The eager half, materialized from parked sections on first touch.
    fn body(&self) -> &TextBody {
        self.body.force(|pending| match pending {
            Some((text, spans)) => decode_body(&text, &spans).unwrap_or_default(),
            // Unreachable: a fresh parse starts `ready`.
            None => TextBody::default(),
        })
    }

    /// Number of lines in the dump. Never materializes a lazy text.
    pub fn line_count(&self) -> usize {
        self.line_count
    }

    /// Line `i` of the dump. Panics if `i >= line_count()`.
    pub fn line(&self, i: usize) -> &str {
        self.body().line(i)
    }

    /// All lines in order, as borrowed slices of the text arena.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.body().lines()
    }

    /// A deterministic estimate of this text's resident memory footprint
    /// in bytes: the arena contents plus fixed per-line bookkeeping
    /// (offset/len table and line → span map), the method spans, and the
    /// descriptor set. Deliberately *excludes* the lazily built
    /// posting-list index so the estimate is a pure function of the
    /// dump — the serving layer's byte-budgeted app store needs the same
    /// number whether or not an indexed query ran yet, and (computed
    /// from the validated section headers) it never materializes a
    /// lazily restored text.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// All method spans in dump order.
    pub fn spans(&self) -> &[MethodSpan] {
        &self.body().spans
    }

    /// The method containing line `i`, if the line is inside a code item.
    pub fn method_at_line(&self, i: usize) -> Option<&MethodSig> {
        let body = self.body();
        let span = *body.line_to_span.get(i)?;
        if span == NO_SPAN {
            None
        } else {
            Some(&body.spans[span as usize].sig)
        }
    }

    /// All class descriptors in the dump.
    pub fn descriptors(&self) -> &BTreeSet<String> {
        &self.body().descriptors
    }

    /// The posting lists over this dump, consumed by the
    /// [`Indexed`](crate::Indexed) backend. Built by one tokenization
    /// pass (or decoded from parked snapshot sections) on first access
    /// and cached for the text's lifetime.
    pub fn search_index(&self) -> &SearchIndex {
        self.index.force(|pending| match pending {
            Some((symbols, postings)) => {
                decode_index(&symbols, &postings, self.line_count).unwrap_or_default()
            }
            None => SearchIndex::build(self.body().lines()),
        })
    }

    /// Whether the text arena / spans half has been materialized.
    /// Diagnostic hook for the lazy-restore tests and benches.
    pub fn is_body_materialized(&self) -> bool {
        self.body.is_materialized()
    }

    /// Whether the posting-list index has been materialized (built or
    /// decoded). Diagnostic hook for the lazy-restore tests and benches.
    pub fn is_index_materialized(&self) -> bool {
        self.index.is_materialized()
    }

    /// How many of this text's lazy sections (body arena, posting-list
    /// index) are currently materialized, `0..=2`. The observability
    /// layer counts these — together with the program section — as
    /// `lazy_sections_materialized`, the banded measure that
    /// manifest-only restores stay parked.
    pub fn materialized_sections(&self) -> u64 {
        self.is_body_materialized() as u64 + self.is_index_materialized() as u64
    }

    /// Wire-encodes the text-arena section: the arena, the per-line
    /// length table (offsets are implicit prefix sums), and the
    /// descriptor set in ascending order.
    pub fn write_text_section(&self, w: &mut WireWriter) {
        let body = self.body();
        w.put_str(&body.arena);
        w.put_len(body.table.len());
        for &(_, len) in &body.table {
            w.put_uvarint(len as u64);
        }
        w.put_len(body.descriptors.len());
        for d in &body.descriptors {
            w.put_str(d);
        }
    }

    /// Wire-encodes the method-span section: spans (signature + bounds)
    /// and the line → span map.
    pub fn write_spans_section(&self, w: &mut WireWriter) {
        let body = self.body();
        w.put_len(body.spans.len());
        for s in &body.spans {
            wire::write_method_sig(w, &s.sig);
            w.put_len(s.start_line);
            w.put_len(s.end_line);
        }
        w.put_len(body.line_to_span.len());
        for &slot in &body.line_to_span {
            // `NO_SPAN` compresses to one byte; span `i` is `i + 1`.
            w.put_uvarint(if slot == NO_SPAN { 0 } else { slot as u64 + 1 });
        }
    }

    /// Wire-encodes the symbol-table section of the posting-list index
    /// (built now if no indexed query ran yet).
    pub fn write_symbols_section(&self, w: &mut WireWriter) {
        self.search_index().write_symbols(w);
    }

    /// Wire-encodes the postings section of the posting-list index.
    pub fn write_postings_section(&self, w: &mut WireWriter) {
        self.search_index().write_postings(w);
    }

    /// Wire-encodes the indexed text as all four sections back to back
    /// (text, spans, symbols, postings) — so a restored text never pays
    /// the §III parse or the tokenization pass again. Deterministic:
    /// equal texts encode byte-identically.
    pub fn write_wire(&self, w: &mut WireWriter) {
        self.write_text_section(w);
        self.write_spans_section(w);
        self.write_symbols_section(w);
        self.write_postings_section(w);
    }

    /// Decodes a text written by [`BytecodeText::write_wire`] eagerly,
    /// validating the structural invariants the query paths index by
    /// (line table covering the arena, span bounds inside the dump,
    /// line map entries inside the span table, a map entry per line)
    /// and pre-populating the posting-list index from the snapshot
    /// instead of re-tokenizing.
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<BytecodeText, WireError> {
        let view = read_text_view(r)?;
        let line_count = view.line_bounds.len() - 1;
        let body_rest = view.to_body();
        let (spans, line_to_span) = read_spans_part(r, line_count)?;
        let index = SearchIndex::read_wire(r, line_count)?;
        let body = TextBody {
            arena: body_rest.arena,
            table: body_rest.table,
            spans,
            line_to_span,
            descriptors: body_rest.descriptors,
        };
        let resident = resident_of(&body);
        Ok(BytecodeText {
            line_count,
            resident,
            body: Lazy::ready(body),
            index: Lazy::ready(index),
        })
    }

    /// Rebuilds a text from its four section blobs **without decoding
    /// them**: each section is structurally validated (rejecting
    /// exactly what the eager decoders reject), cross-checked against
    /// its siblings (line counts, symbol counts), and parked for
    /// materialization on first touch. Only the validated headers are
    /// read eagerly — `line_count()` and `resident_bytes()` are
    /// available immediately, the arena copy and index build are not
    /// paid until something reads them.
    pub fn from_sections(
        text: Vec<u8>,
        spans: Vec<u8>,
        symbols: Vec<u8>,
        postings: Vec<u8>,
    ) -> Result<BytecodeText, WireError> {
        let info = validate_text_section(&text)?;
        let span_count = validate_spans_section(&spans, info.line_count)?;
        let sym_count = SymbolTable::validate_wire(&symbols)?;
        SearchIndex::validate_postings(&postings, info.line_count, sym_count)?;
        let resident = info.arena_len
            + info.line_count as u64 * PER_LINE_OVERHEAD
            + span_count as u64 * PER_SPAN_OVERHEAD
            + info.desc_bytes;
        Ok(BytecodeText {
            line_count: info.line_count,
            resident,
            body: Lazy::deferred(text, spans),
            index: Lazy::deferred(symbols, postings),
        })
    }

    /// Restores a dotted banner name printed by dexdump
    /// (`com.a.Outer.1.run:()V`, inner-class `$` flattened to `.`) to the
    /// real method signature, by testing candidate `$` placements against
    /// the class descriptors present in the dump (paper §IV-A step 2:
    /// "an inner class needs to add back the symbol `$`").
    pub fn restore_banner(&self, banner: &str) -> Option<MethodSig> {
        let descriptors = self.descriptors();
        let (dotted_and_name, proto) = banner.rsplit_once(':')?;
        let (dotted_class, name) = dotted_and_name.rsplit_once('.')?;
        let (params, ret) = parse_proto(proto)?;
        // Try every split of the dotted class into package + class parts:
        // the class part joins with `$`, the package part with `.`.
        let segments: Vec<&str> = dotted_class.split('.').collect();
        for split in (0..segments.len()).rev() {
            let pkg = segments[..split].join(".");
            let cls = segments[split..].join("$");
            let candidate = if pkg.is_empty() {
                cls
            } else {
                format!("{pkg}.{cls}")
            };
            let desc = format!("L{};", candidate.replace('.', "/"));
            if descriptors.contains(&desc) {
                return Some(MethodSig::new(candidate, name, params, ret));
            }
        }
        None
    }
}

/// The resident estimate for a materialized body — must agree with the
/// header-only computation in [`BytecodeText::from_sections`].
fn resident_of(body: &TextBody) -> u64 {
    let desc_bytes: u64 = body
        .descriptors
        .iter()
        .map(|d| d.len() as u64 + PER_DESC_OVERHEAD)
        .sum();
    body.arena.len() as u64
        + body.table.len() as u64 * PER_LINE_OVERHEAD
        + body.spans.len() as u64 * PER_SPAN_OVERHEAD
        + desc_bytes
}

/// Aggregates [`validate_text_section`] reports for the header-only
/// resident computation.
struct TextInfo {
    line_count: usize,
    arena_len: u64,
    /// Descriptor contents plus per-descriptor overhead.
    desc_bytes: u64,
}

/// A borrowed, fully validated view of one text section.
struct TextView<'a> {
    arena: &'a str,
    /// Prefix line boundaries into `arena`; length `line_count + 1`.
    line_bounds: Vec<u32>,
    /// Descriptors in strictly ascending order.
    descriptors: Vec<&'a str>,
}

struct BodyParts {
    arena: String,
    table: Vec<(u32, u32)>,
    descriptors: BTreeSet<String>,
}

impl TextView<'_> {
    fn to_body(&self) -> BodyParts {
        let table = self
            .line_bounds
            .windows(2)
            .map(|w| (w[0], w[1] - w[0]))
            .collect();
        BodyParts {
            arena: self.arena.to_string(),
            table,
            descriptors: self.descriptors.iter().map(|d| d.to_string()).collect(),
        }
    }
}

/// Reads and validates one text section from `r` without copying the
/// arena — the shared walk behind both the eager decode and the lazy
/// validator.
fn read_text_view<'a>(r: &mut WireReader<'a>) -> Result<TextView<'a>, WireError> {
    let malformed = |m: &str| WireError::Malformed(m.to_string());
    let arena = r.get_str()?;
    if arena.len() > u32::MAX as usize {
        return Err(malformed("text arena exceeds the 4 GiB limit"));
    }
    let n_lines = r.get_len(1)?;
    let mut line_bounds = Vec::with_capacity(n_lines + 1);
    line_bounds.push(0u32);
    let mut off = 0u64;
    for _ in 0..n_lines {
        off += r.get_uvarint()?;
        if off > arena.len() as u64 || !arena.is_char_boundary(off as usize) {
            return Err(malformed("line table outside the arena"));
        }
        line_bounds.push(off as u32);
    }
    if off != arena.len() as u64 {
        return Err(malformed("line table does not cover the arena"));
    }
    let n_desc = r.get_len(1)?;
    let mut descriptors = Vec::with_capacity(n_desc);
    for _ in 0..n_desc {
        let d = r.get_str()?;
        if descriptors.last().is_some_and(|&p| p >= d) {
            return Err(malformed("descriptors out of order"));
        }
        descriptors.push(d);
    }
    Ok(TextView {
        arena,
        line_bounds,
        descriptors,
    })
}

/// Validates one standalone text-section blob, returning the
/// aggregates the resident estimate needs.
fn validate_text_section(bytes: &[u8]) -> Result<TextInfo, WireError> {
    let mut r = WireReader::new(bytes);
    let view = read_text_view(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed(
            "trailing bytes after text section".into(),
        ));
    }
    let desc_bytes = view
        .descriptors
        .iter()
        .map(|d| d.len() as u64 + PER_DESC_OVERHEAD)
        .sum();
    Ok(TextInfo {
        line_count: view.line_bounds.len() - 1,
        arena_len: view.arena.len() as u64,
        desc_bytes,
    })
}

/// Reads and validates one spans section from `r`.
fn read_spans_part(
    r: &mut WireReader<'_>,
    line_count: usize,
) -> Result<(Vec<MethodSpan>, Vec<u32>), WireError> {
    let malformed = |m: &str| WireError::Malformed(m.to_string());
    let n_spans = r.get_len(1)?;
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        let sig = wire::read_method_sig(r)?;
        let start_line = r.get_uvarint()? as usize;
        let end_line = r.get_uvarint()? as usize;
        if start_line > end_line || end_line > line_count {
            return Err(malformed("method span outside the dump"));
        }
        spans.push(MethodSpan {
            sig,
            start_line,
            end_line,
        });
    }
    let n_map = r.get_len(1)?;
    if n_map != line_count {
        return Err(malformed("line map does not cover every line"));
    }
    let mut line_to_span = Vec::with_capacity(n_map);
    for _ in 0..n_map {
        let v = r.get_uvarint()?;
        let slot = if v == 0 {
            NO_SPAN
        } else {
            let idx = v - 1;
            if idx >= spans.len() as u64 {
                return Err(malformed("line map references a missing span"));
            }
            idx as u32
        };
        line_to_span.push(slot);
    }
    Ok((spans, line_to_span))
}

/// Validates one standalone spans-section blob, returning the span
/// count. (Span signatures are decoded and dropped — the section is
/// small next to the arena and postings.)
fn validate_spans_section(bytes: &[u8], line_count: usize) -> Result<usize, WireError> {
    let mut r = WireReader::new(bytes);
    let (spans, _) = read_spans_part(&mut r, line_count)?;
    if !r.is_empty() {
        return Err(WireError::Malformed(
            "trailing bytes after spans section".into(),
        ));
    }
    Ok(spans.len())
}

/// Materializes a parked body from its validated section blobs.
fn decode_body(text: &[u8], spans: &[u8]) -> Result<TextBody, WireError> {
    let mut r = WireReader::new(text);
    let view = read_text_view(&mut r)?;
    let line_count = view.line_bounds.len() - 1;
    let parts = view.to_body();
    let mut r = WireReader::new(spans);
    let (spans, line_to_span) = read_spans_part(&mut r, line_count)?;
    Ok(TextBody {
        arena: parts.arena,
        table: parts.table,
        spans,
        line_to_span,
        descriptors: parts.descriptors,
    })
}

/// Materializes a parked index from its validated section blobs.
fn decode_index(
    symbols: &[u8],
    postings: &[u8],
    line_count: usize,
) -> Result<SearchIndex, WireError> {
    let symbols = SymbolTable::read_wire(&mut WireReader::new(symbols))?;
    SearchIndex::read_postings(&mut WireReader::new(postings), line_count, symbols)
}

/// Parses a proto string `(I[BLjava/lang/String;)V` into parameter types
/// and return type.
pub fn parse_proto(proto: &str) -> Option<(Vec<Type>, Type)> {
    let rest = proto.strip_prefix('(')?;
    let (params_str, ret_str) = rest.split_once(')')?;
    let mut params = Vec::new();
    let mut cur = params_str;
    while !cur.is_empty() {
        let (ty, next) = Type::parse_descriptor_prefix(cur)?;
        params.push(ty);
        cur = next;
    }
    let ret = Type::from_descriptor(ret_str)?;
    Some((params, ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_dex::{dump_image, DexImage};
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Program};

    fn sample_program() -> Program {
        let outer = ClassName::new("com.a.Outer");
        let inner = ClassName::new("com.a.Outer$1");
        let mut run = MethodBuilder::public(&inner, "run", vec![], Type::Void);
        let this = run.this();
        run.invoke(InvokeExpr::call_virtual(
            MethodSig::new("com.a.Server", "start", vec![], Type::Void),
            this,
            vec![],
        ));
        let mut go = MethodBuilder::public_static(&outer, "go", vec![Type::Int], Type::Int);
        go.ret(backdroid_ir::Value::int(0));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new(inner.as_str())
                .method(run.build())
                .build(),
        );
        p.add_class(ClassBuilder::new(outer.as_str()).method(go.build()).build());
        let mut start =
            MethodBuilder::public(&ClassName::new("com.a.Server"), "start", vec![], Type::Void);
        start.ret_void();
        p.add_class(
            ClassBuilder::new("com.a.Server")
                .method(start.build())
                .build(),
        );
        p
    }

    fn indexed() -> BytecodeText {
        let p = sample_program();
        let text = dump_image(&DexImage::encode(&p));
        BytecodeText::index(&text)
    }

    fn all_lines(t: &BytecodeText) -> Vec<String> {
        t.lines().map(str::to_string).collect()
    }

    #[test]
    fn arena_lines_match_the_dump() {
        let p = sample_program();
        let dump = dump_image(&DexImage::encode(&p));
        let t = BytecodeText::index(&dump);
        let expected: Vec<&str> = dump.lines().collect();
        assert_eq!(t.line_count(), expected.len());
        for (i, line) in expected.iter().enumerate() {
            assert_eq!(t.line(i), *line, "line {i}");
        }
        assert_eq!(all_lines(&t), expected);
    }

    #[test]
    fn spans_cover_all_methods() {
        let t = indexed();
        let names: Vec<String> = t.spans().iter().map(|s| s.sig.to_string()).collect();
        assert!(names.contains(&"<com.a.Outer$1: void run()>".to_string()));
        assert!(names.contains(&"<com.a.Outer: int go(int)>".to_string()));
        assert!(names.contains(&"<com.a.Server: void start()>".to_string()));
    }

    #[test]
    fn hit_lines_map_to_containing_method() {
        let t = indexed();
        let needle = "Lcom/a/Server;.start:()V";
        let hit_line = t
            .lines()
            .position(|l| l.contains("invoke-virtual") && l.contains(needle))
            .expect("invoke line present");
        let m = t.method_at_line(hit_line).expect("line inside a method");
        assert_eq!(m.to_string(), "<com.a.Outer$1: void run()>");
    }

    #[test]
    fn header_lines_have_no_method() {
        let t = indexed();
        let header = t
            .lines()
            .position(|l| l.contains("Class descriptor"))
            .unwrap();
        assert!(t.method_at_line(header).is_none());
    }

    #[test]
    fn banner_restoration_adds_back_dollar() {
        let t = indexed();
        let sig = t
            .restore_banner("com.a.Outer.1.run:()V")
            .expect("restorable banner");
        assert_eq!(sig.class().as_str(), "com.a.Outer$1");
        assert_eq!(sig.name(), "run");
        // Non-inner class restores too.
        let sig = t.restore_banner("com.a.Outer.go:(I)I").unwrap();
        assert_eq!(sig.class().as_str(), "com.a.Outer");
        // Unknown class yields None.
        assert!(t.restore_banner("com.b.Missing.run:()V").is_none());
    }

    #[test]
    fn resident_bytes_is_deterministic_and_tracks_content() {
        let t = indexed();
        let estimate = t.resident_bytes();
        assert!(
            estimate > t.lines().map(|l| l.len() as u64).sum::<u64>(),
            "estimate must cover at least the line contents"
        );
        // A pure function of the dump: re-indexing the same text gives the
        // same number, and touching the lazy posting index must not move it.
        let p = sample_program();
        let again = BytecodeText::index(&dump_image(&DexImage::encode(&p)));
        assert_eq!(again.resident_bytes(), estimate);
        let _ = again.search_index();
        assert_eq!(again.resident_bytes(), estimate);
    }

    #[test]
    fn wire_round_trip_preserves_queries_and_bytes() {
        let t = indexed();
        let _ = t.search_index(); // force the lazy index before encoding
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        let back = BytecodeText::read_wire(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(all_lines(&back), all_lines(&t));
        assert_eq!(back.descriptors(), t.descriptors());
        assert_eq!(back.spans(), t.spans());
        for i in 0..t.line_count() {
            assert_eq!(back.method_at_line(i), t.method_at_line(i), "line {i}");
        }
        assert_eq!(
            back.search_index().posting_count(),
            t.search_index().posting_count()
        );
        assert_eq!(
            back.search_index().token_count(),
            t.search_index().token_count()
        );
        assert_eq!(
            back.restore_banner("com.a.Outer.1.run:()V"),
            t.restore_banner("com.a.Outer.1.run:()V")
        );
        // Re-encoding the decoded text is byte-identical.
        let mut w2 = WireWriter::new();
        back.write_wire(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        // A restored text never re-tokenizes: its resident estimate still
        // matches a fresh parse (the index is excluded by design).
        assert_eq!(back.resident_bytes(), t.resident_bytes());
    }

    #[test]
    fn sectioned_restore_is_lazy_and_answers_identically() {
        let t = indexed();
        let mut sections: Vec<Vec<u8>> = Vec::new();
        let writers: [fn(&BytecodeText, &mut WireWriter); 4] = [
            BytecodeText::write_text_section,
            BytecodeText::write_spans_section,
            BytecodeText::write_symbols_section,
            BytecodeText::write_postings_section,
        ];
        for write in writers {
            let mut w = WireWriter::new();
            write(&t, &mut w);
            sections.push(w.into_bytes());
        }
        let [text, spans, symbols, postings] = sections.try_into().unwrap();
        let back =
            BytecodeText::from_sections(text.clone(), spans.clone(), symbols, postings).unwrap();
        // Header-only facts are available without materializing anything.
        assert_eq!(back.line_count(), t.line_count());
        assert_eq!(back.resident_bytes(), t.resident_bytes());
        assert!(!back.is_body_materialized());
        assert!(!back.is_index_materialized());
        // The first index probe materializes the index, not the body.
        assert_eq!(
            back.search_index().token_count(),
            t.search_index().token_count()
        );
        assert!(back.is_index_materialized());
        assert!(!back.is_body_materialized());
        // Touching a line materializes the body; answers are identical.
        assert_eq!(all_lines(&back), all_lines(&t));
        assert!(back.is_body_materialized());
        assert_eq!(back.spans(), t.spans());
        for i in 0..t.line_count() {
            assert_eq!(back.method_at_line(i), t.method_at_line(i), "line {i}");
        }
        // Malformed sections are rejected eagerly, before any touch.
        let mut bad_spans = spans.clone();
        bad_spans.push(0);
        assert!(BytecodeText::from_sections(
            text.clone(),
            bad_spans,
            {
                let mut w = WireWriter::new();
                t.write_symbols_section(&mut w);
                w.into_bytes()
            },
            {
                let mut w = WireWriter::new();
                t.write_postings_section(&mut w);
                w.into_bytes()
            }
        )
        .is_err());
    }

    #[test]
    fn wire_truncations_fail_cleanly() {
        let t = indexed();
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                BytecodeText::read_wire(&mut WireReader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn proto_parsing() {
        let (params, ret) = parse_proto("(I[BLjava/lang/String;)V").unwrap();
        assert_eq!(params.len(), 3);
        assert_eq!(ret, Type::Void);
        assert!(parse_proto("no-parens").is_none());
        assert!(parse_proto("(Q)V").is_none());
    }
}
